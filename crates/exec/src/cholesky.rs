//! Threaded distributed right-looking Cholesky factorization
//! (`A = L L^T`, lower triangle): the [`hetgrid_plan::cholesky_plan`]
//! step stream interpreted over real threads. (QR lives in
//! [`crate::qr`], with its own fan-in/fan-out plan; LU in
//! [`crate::lu`].)
//!
//! Step `k`: the owner of the diagonal block factors it and sends the
//! factor down the panel (the plan's `diag_dests`); panel owners
//! right-solve their blocks and broadcast them along the plan's
//! per-block destination lists to the trailing lower-triangle owners
//! (each block `L(bi, k)` serves both as the left factor for row `bi`
//! and, transposed, as the right factor for column `bi`); the trailing
//! lower-triangle blocks are then updated. Under the lookahead driver
//! the factor/solve actions are critical and each trailing block is an
//! independent action, column `k + 1` first, so the next panel starts
//! while this step's updates drain.

use crate::pool::PoolClone;
use crate::step::{
    check_weights, run_grid, run_steps, Action, Courier, ExecConfig, Journal, Op, StepInterp,
    WorkClock,
};
use crate::store::{BlockStore, CheckpointLog, DistributedMatrix, ExecReport};
use crate::transport::{ChannelTransport, Closed, ExecError, Transport};
use hetgrid_dist::BlockDist;
use hetgrid_linalg::cholesky::cholesky;
use hetgrid_linalg::gemm::gemm;
use hetgrid_linalg::tri::solve_lower;
use hetgrid_linalg::Matrix;
use hetgrid_plan::{Plan, Step};
use std::time::Instant;

/// Message tags: the diagonal Cholesky factor, solved panel blocks.
const TAG_DIAG: u8 = 0;
const TAG_L: u8 = 1;

/// Factors the SPD matrix `a` over the distribution; returns the
/// gathered lower factor `L` (upper triangle zero) and the execution
/// report, or a typed [`ExecError`] if a worker dropped out mid-run.
/// Only the lower triangle of `a` participates; the strict
/// upper-triangle blocks of the result are zeroed.
///
/// # Panics
/// Panics on size mismatch or if a diagonal block is not positive
/// definite.
pub fn run_cholesky(
    a: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> Result<(Matrix, ExecReport), ExecError> {
    run_cholesky_on(&ChannelTransport, a, dist, nb, r, weights)
}

/// [`run_cholesky`] over an explicit [`Transport`] (the harness injects
/// its fault-injecting virtual transport here).
///
/// # Panics
/// Panics like [`run_cholesky`].
pub fn run_cholesky_on(
    transport: &impl Transport,
    a: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> Result<(Matrix, ExecReport), ExecError> {
    run_cholesky_on_cfg(transport, a, dist, nb, r, weights, ExecConfig::default())
}

/// [`run_cholesky_on`] with explicit executor tuning (lookahead depth).
///
/// # Panics
/// Panics like [`run_cholesky`].
pub fn run_cholesky_on_cfg(
    transport: &impl Transport,
    a: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
    cfg: ExecConfig,
) -> Result<(Matrix, ExecReport), ExecError> {
    let da = DistributedMatrix::scatter(a, dist, nb, r);
    let (stores, report) = cholesky_seg(transport, &da, dist, weights, cfg, 0, None)?;
    Ok((gather_cholesky(stores, nb, r), report))
}

/// The resumable core of [`run_cholesky_on_cfg`]: interprets the
/// Cholesky plan over an already-scattered matrix from plan step
/// `start` (with `da` holding the consistent state of that retirement
/// frontier), journaling block writes into `journal` when given.
/// Returns the raw per-processor stores; [`gather_cholesky`] folds them.
pub(crate) fn cholesky_seg(
    transport: &impl Transport,
    da: &DistributedMatrix,
    dist: &(dyn BlockDist + Sync),
    weights: &[Vec<u64>],
    cfg: ExecConfig,
    start: usize,
    journal: Option<&CheckpointLog>,
) -> Result<(Vec<BlockStore>, ExecReport), ExecError> {
    let (p, q) = dist.grid();
    check_weights(weights, (p, q), "run_cholesky");
    let (nb, r) = (da.nb_rows, da.r);
    let plan = hetgrid_plan::cholesky_plan(dist, nb);
    let owned: Vec<Vec<(usize, usize)>> = da
        .stores
        .iter()
        .map(|s| {
            let mut v: Vec<(usize, usize)> = s.keys().copied().collect();
            v.sort_unstable();
            v
        })
        .collect();

    run_grid(transport, (p, q), weights, |me, courier, clock| {
        let mut interp = ChInterp {
            plan: &plan,
            my: (me / q, me % q),
            owned: &owned[me],
            blocks: da.stores[me].clone(),
            scratch: Matrix::zeros(r, r),
            block_bytes: (r * r * std::mem::size_of::<f64>()) as u64,
        };
        let j = journal.map(|log| Journal { log, me });
        run_steps(
            &mut interp,
            courier,
            clock,
            cfg.lookahead,
            start,
            j.as_ref(),
        )?;
        Ok(interp.blocks)
    })
}

/// Folds worker stores into the lower factor `L`: keeps the lower block
/// triangle and zeroes the strict upper triangle of the diagonal
/// blocks (the in-place factorization leaves the original upper content
/// there).
pub(crate) fn gather_cholesky(stores: Vec<BlockStore>, nb: usize, r: usize) -> Matrix {
    let mut l = Matrix::zeros(nb * r, nb * r);
    let mut blocks_seen = 0usize;
    for store in stores {
        for ((bi, bj), block) in store {
            // Keep only the lower block triangle.
            if bj <= bi {
                l.set_block(bi * r, bj * r, &block);
            }
            blocks_seen += 1;
        }
    }
    assert_eq!(blocks_seen, nb * nb, "run_cholesky: missing result blocks");
    // Zero the strict upper triangle of the diagonal blocks.
    let n = nb * r;
    for i in 0..n {
        for j in i + 1..n {
            l[(i, j)] = 0.0;
        }
    }
    l
}

/// One processor's Cholesky actions for `step`, in program order:
/// diagonal factorization, panel right-solves (critical), then one
/// update action per owned trailing lower-triangle block with column
/// `k + 1` first.
pub(crate) fn cholesky_actions(
    step: &Step,
    my: (usize, usize),
    owned: &[(usize, usize)],
) -> Vec<Action> {
    let Step::Cholesky {
        k,
        diag,
        panel_bcasts,
        ..
    } = step
    else {
        panic!("run_cholesky: non-Cholesky step in plan")
    };
    let k = *k;
    let is_mine = |blk: (usize, usize)| owned.binary_search(&blk).is_ok();
    let mut out = Vec::new();
    if *diag == my {
        out.push(Action {
            step: k,
            op: Op::ChFactor,
            blk: (k, k),
            crit: true,
            needs: vec![],
            reads: vec![],
            writes: vec![(0, k, k)],
        });
    }
    for bc in panel_bcasts {
        if bc.src != my {
            continue;
        }
        let (mut needs, mut reads) = (vec![], vec![]);
        if *diag == my {
            reads.push((0, k, k));
        } else {
            needs.push((k, TAG_DIAG, (k, k)));
        }
        out.push(Action {
            step: k,
            op: Op::ChSolve,
            blk: bc.block,
            crit: true,
            needs,
            reads,
            writes: vec![(0, bc.block.0, k)],
        });
    }
    let mut trailing: Vec<(usize, usize)> = owned
        .iter()
        .copied()
        .filter(|&(bi, bj)| bi > k && bj > k && bj <= bi)
        .collect();
    // Column k+1 feeds step k+1's panel: update it first.
    trailing.sort_unstable_by_key(|&(bi, bj)| (usize::from(bj != k + 1), bi, bj));
    for (bi, bj) in trailing {
        let (mut needs, mut reads) = (vec![], vec![]);
        for b in [bi, bj] {
            if is_mine((b, k)) {
                if !reads.contains(&(0, b, k)) {
                    reads.push((0, b, k));
                }
            } else if !needs.contains(&(k, TAG_L, (b, k))) {
                needs.push((k, TAG_L, (b, k)));
            }
        }
        out.push(Action {
            step: k,
            op: Op::ChUpdate,
            blk: (bi, bj),
            crit: false,
            needs,
            reads,
            writes: vec![(0, bi, bj)],
        });
    }
    out
}

struct ChInterp<'a> {
    plan: &'a Plan,
    my: (usize, usize),
    owned: &'a [(usize, usize)],
    blocks: BlockStore,
    scratch: Matrix,
    block_bytes: u64,
}

impl StepInterp for ChInterp<'_> {
    type P = Matrix;

    fn n_steps(&self) -> usize {
        self.plan.steps.len()
    }

    fn emit(&self, k: usize, out: &mut Vec<Action>) {
        out.extend(cholesky_actions(&self.plan.steps[k], self.my, self.owned));
    }

    fn peek(&self, blk: (usize, usize)) -> Option<&Matrix> {
        self.blocks.get(&blk)
    }

    fn execute(
        &mut self,
        a: &Action,
        courier: &mut Courier<Matrix>,
        clock: &mut WorkClock,
    ) -> Result<(), Closed> {
        let Step::Cholesky {
            k,
            diag,
            diag_dests,
            panel_bcasts,
            ..
        } = &self.plan.steps[a.step]
        else {
            unreachable!("emit checked the step kind")
        };
        let k = *k;
        match a.op {
            // Diagonal factorization and send to panel owners.
            Op::ChFactor => {
                let _span = courier.span_with(|| format!("factor {k}"));
                let lkk = clock.run(
                    1,
                    || cholesky(&self.blocks[&(k, k)]).expect("diagonal block not SPD"),
                    || {
                        cholesky(&self.blocks[&(k, k)]).expect("diagonal block not SPD");
                    },
                );
                if let Some(old) = self.blocks.insert((k, k), lkk) {
                    old.reclaim(courier.pool_mut());
                }
                courier.bcast(
                    diag_dests,
                    k,
                    TAG_DIAG,
                    (k, k),
                    &self.blocks[&(k, k)],
                    self.block_bytes,
                )?;
            }
            // Panel right-solve: A_ik := A_ik * L_kk^{-T}.
            Op::ChSolve => {
                let _span = courier.span_with(|| format!("panel {k}"));
                let solved = {
                    let lkk: &Matrix = if *diag == self.my {
                        &self.blocks[&(k, k)]
                    } else {
                        courier.obtain(k, TAG_DIAG, (k, k))?
                    };
                    // X * L^T = A  <=>  L * X^T = A^T.
                    clock.run(
                        1,
                        || solve_lower(lkk, &self.blocks[&a.blk].transpose(), false).transpose(),
                        || {
                            solve_lower(lkk, &self.blocks[&a.blk].transpose(), false).transpose();
                        },
                    )
                };
                if let Some(old) = self.blocks.insert(a.blk, solved) {
                    old.reclaim(courier.pool_mut());
                }
                let bc = panel_bcasts
                    .iter()
                    .find(|bc| bc.block == a.blk)
                    .expect("solve action without a plan bcast");
                courier.bcast(
                    &bc.dests,
                    k,
                    TAG_L,
                    a.blk,
                    &self.blocks[&a.blk],
                    self.block_bytes,
                )?;
            }
            // Symmetric trailing update of one owned lower block:
            // A_ij -= L_ik * L_jk^T.
            Op::ChUpdate => {
                let (bi, bj) = a.blk;
                let mut c = self.blocks.remove(&a.blk).expect("trailing block missing");
                let t0 = Instant::now();
                let rt = {
                    let right: &Matrix = match self.blocks.get(&(bj, k)) {
                        Some(m) => m,
                        None => courier.get(k, TAG_L, (bj, k)),
                    };
                    right.transpose()
                };
                {
                    let left: &Matrix = match self.blocks.get(&(bi, k)) {
                        Some(m) => m,
                        None => courier.get(k, TAG_L, (bi, k)),
                    };
                    gemm(-1.0, left, &rt, 1.0, &mut c);
                    for _ in 1..clock.weight() {
                        gemm(-1.0, left, &rt, 0.0, &mut self.scratch);
                    }
                }
                clock.add_busy(t0.elapsed().as_secs_f64());
                clock.charge(1);
                courier.step_done(t0.elapsed().as_secs_f64());
                self.blocks.insert(a.blk, c);
                rt.reclaim(courier.pool_mut());
            }
            op => unreachable!("non-Cholesky action {op:?} in Cholesky plan"),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_core::{exact, Arrangement};
    use hetgrid_dist::{BlockCyclic, PanelDist, PanelOrdering};
    use hetgrid_linalg::gemm::matmul;

    fn spd_matrix(n: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let b = Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        let mut a = matmul(&b.transpose(), &b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    fn check(a: &Matrix, l: &Matrix, tol: f64) {
        let llt = matmul(l, &l.transpose());
        assert!(
            llt.approx_eq(a, tol),
            "A != L L^T, max err {}",
            llt.sub(a).max_abs()
        );
    }

    #[test]
    fn cholesky_cyclic_reconstructs() {
        let nb = 4;
        let r = 3;
        let a = spd_matrix(nb * r, 0xC0);
        let dist = BlockCyclic::new(2, 2);
        let (l, _) = run_cholesky(&a, &dist, nb, r, &vec![vec![1; 2]; 2]).unwrap();
        check(&a, &l, 1e-8);
    }

    #[test]
    fn cholesky_panel_with_weights() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let dist = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
        let nb = 8;
        let r = 2;
        let a = spd_matrix(nb * r, 0xC1);
        let w = crate::store::slowdown_weights(&arr);
        let (l, report) = run_cholesky(&a, &dist, nb, r, &w).unwrap();
        check(&a, &l, 1e-8);
        assert!(report.work_units.iter().flatten().sum::<u64>() > 0);
    }

    #[test]
    fn cholesky_matches_sequential() {
        let nb = 3;
        let r = 4;
        let a = spd_matrix(nb * r, 0xC2);
        let dist = BlockCyclic::new(1, 2);
        let (l, _) = run_cholesky(&a, &dist, nb, r, &[vec![1; 2]]).unwrap();
        let seq = hetgrid_linalg::cholesky::cholesky_blocked(&a, r).unwrap();
        assert!(l.approx_eq(&seq, 1e-8));
    }

    #[test]
    fn lookahead_is_bit_exact_with_in_order() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let dist = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
        let nb = 8;
        let r = 2;
        let a = spd_matrix(nb * r, 0xC4);
        let w = crate::store::slowdown_weights(&arr);
        let t = ChannelTransport;
        let run = |lookahead| {
            run_cholesky_on_cfg(&t, &a, &dist, nb, r, &w, ExecConfig { lookahead })
                .unwrap()
                .0
        };
        let inorder = run(0);
        for depth in [1, 3] {
            assert!(
                run(depth).approx_eq(&inorder, 0.0),
                "depth {depth} diverged from in-order"
            );
        }
    }

    #[test]
    fn single_processor_cholesky() {
        let a = spd_matrix(8, 0xC3);
        let dist = BlockCyclic::new(1, 1);
        let (l, _) = run_cholesky(&a, &dist, 4, 2, &[vec![1]]).unwrap();
        check(&a, &l, 1e-9);
    }
}
