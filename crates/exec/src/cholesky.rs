//! Threaded distributed right-looking Cholesky factorization
//! (`A = L L^T`, lower triangle): the [`hetgrid_plan::cholesky_plan`]
//! step stream interpreted over real threads. (QR lives in
//! [`crate::qr`], with its own fan-in/fan-out plan; LU in
//! [`crate::lu`].)
//!
//! Step `k`: the owner of the diagonal block factors it and sends the
//! factor down the panel (the plan's `diag_dests`); panel owners
//! right-solve their blocks and broadcast them along the plan's
//! per-block destination lists to the trailing lower-triangle owners
//! (each block `L(bi, k)` serves both as the left factor for row `bi`
//! and, transposed, as the right factor for column `bi`); the trailing
//! lower-triangle blocks are then updated.

use crate::step::{check_weights, run_grid, Courier, WorkClock};
use crate::store::{BlockStore, DistributedMatrix, ExecReport};
use crate::transport::{ChannelTransport, Closed, ExecError, Transport};
use hetgrid_dist::BlockDist;
use hetgrid_linalg::cholesky::cholesky;
use hetgrid_linalg::gemm::gemm;
use hetgrid_linalg::tri::solve_lower;
use hetgrid_linalg::Matrix;
use hetgrid_plan::{Plan, Step};
use std::time::Instant;

/// Message tags: the diagonal Cholesky factor, solved panel blocks.
const TAG_DIAG: u8 = 0;
const TAG_L: u8 = 1;

/// Factors the SPD matrix `a` over the distribution; returns the
/// gathered lower factor `L` (upper triangle zero) and the execution
/// report, or a typed [`ExecError`] if a worker dropped out mid-run.
/// Only the lower triangle of `a` participates; the strict
/// upper-triangle blocks of the result are zeroed.
///
/// # Panics
/// Panics on size mismatch or if a diagonal block is not positive
/// definite.
pub fn run_cholesky(
    a: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> Result<(Matrix, ExecReport), ExecError> {
    run_cholesky_on(&ChannelTransport, a, dist, nb, r, weights)
}

/// [`run_cholesky`] over an explicit [`Transport`] (the harness injects
/// its fault-injecting virtual transport here).
///
/// # Panics
/// Panics like [`run_cholesky`].
pub fn run_cholesky_on(
    transport: &impl Transport,
    a: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> Result<(Matrix, ExecReport), ExecError> {
    let (p, q) = dist.grid();
    check_weights(weights, (p, q), "run_cholesky");
    let da = DistributedMatrix::scatter(a, dist, nb, r);
    let plan = hetgrid_plan::cholesky_plan(dist, nb);

    let (stores, report) = run_grid(transport, (p, q), weights, |me, courier, clock| {
        worker(&plan, r, me, da.stores[me].clone(), courier, clock)
    })?;

    let mut l = Matrix::zeros(nb * r, nb * r);
    let mut blocks_seen = 0usize;
    for store in stores {
        for ((bi, bj), block) in store {
            // Keep only the lower block triangle.
            if bj <= bi {
                l.set_block(bi * r, bj * r, &block);
            }
            blocks_seen += 1;
        }
    }
    assert_eq!(blocks_seen, nb * nb, "run_cholesky: missing result blocks");
    // Zero the strict upper triangle of the diagonal blocks.
    let n = nb * r;
    for i in 0..n {
        for j in i + 1..n {
            l[(i, j)] = 0.0;
        }
    }
    Ok((l, report))
}

fn worker(
    plan: &Plan,
    r: usize,
    me: usize,
    mut blocks: BlockStore,
    courier: &mut Courier<Matrix>,
    clock: &mut WorkClock,
) -> Result<BlockStore, Closed> {
    let (_, q) = plan.grid;
    let my = (me / q, me % q);
    let nb = plan.steps.len();
    let mut scratch = Matrix::zeros(r, r);
    let block_bytes = (r * r * std::mem::size_of::<f64>()) as u64;

    for step in &plan.steps {
        let Step::Cholesky {
            k,
            diag,
            diag_dests,
            panel_bcasts,
            ..
        } = step
        else {
            panic!("run_cholesky: non-Cholesky step in plan")
        };
        let k = *k;

        // --- 1. Diagonal factorization and send to panel owners.
        if *diag == my {
            let _factor_span = courier.span(format!("factor {k}"));
            let lkk = clock.run(
                1,
                || cholesky(&blocks[&(k, k)]).expect("diagonal block not SPD"),
                || {
                    cholesky(&blocks[&(k, k)]).expect("diagonal block not SPD");
                },
            );
            blocks.insert((k, k), lkk.clone());
            courier.bcast(diag_dests, k, TAG_DIAG, (k, k), &lkk, block_bytes)?;
        }
        if k + 1 == nb {
            continue;
        }

        // --- 2. Panel right-solves: A_ik := A_ik * L_kk^{-T}.
        let i_own_panel = panel_bcasts.iter().any(|bc| bc.src == my);
        if i_own_panel {
            let _panel_span = courier.span(format!("panel {k}"));
            let lkk = if *diag == my {
                blocks[&(k, k)].clone()
            } else {
                courier.obtain(k, TAG_DIAG, (k, k))?.clone()
            };
            for bc in panel_bcasts {
                if bc.src != my {
                    continue;
                }
                // X * L^T = A  <=>  L * X^T = A^T.
                let solved = clock.run(
                    1,
                    || solve_lower(&lkk, &blocks[&bc.block].transpose(), false).transpose(),
                    || {
                        solve_lower(&lkk, &blocks[&bc.block].transpose(), false).transpose();
                    },
                );
                blocks.insert(bc.block, solved.clone());
                courier.bcast(&bc.dests, k, TAG_L, bc.block, &solved, block_bytes)?;
            }
        }

        // --- 3. Trailing symmetric update of my lower-triangle blocks.
        let mut trailing: Vec<(usize, usize)> = blocks
            .keys()
            .copied()
            .filter(|&(bi, bj)| bi > k && bj > k && bj <= bi)
            .collect();
        trailing.sort_unstable();
        if !trailing.is_empty() {
            {
                let _wait_span = courier.span(format!("wait {k}"));
                let mut need: Vec<usize> = Vec::new();
                for &(bi, bj) in &trailing {
                    for b in [bi, bj] {
                        if !blocks.contains_key(&(b, k)) && !need.contains(&b) {
                            need.push(b);
                        }
                    }
                }
                courier.wait_all(need.into_iter().map(|b| (k, TAG_L, (b, k))))?;
            }
            let mut update_span = courier.span(format!("update {k}"));
            let units_before = clock.units;
            let t_update = Instant::now();
            for &(bi, bj) in &trailing {
                let left = match blocks.get(&(bi, k)) {
                    Some(m) => m.clone(),
                    None => courier.get(k, TAG_L, (bi, k)).clone(),
                };
                let right = match blocks.get(&(bj, k)) {
                    Some(m) => m.clone(),
                    None => courier.get(k, TAG_L, (bj, k)).clone(),
                };
                let rt = right.transpose();
                clock.run(
                    1,
                    || {
                        let c = blocks.get_mut(&(bi, bj)).expect("trailing block missing");
                        gemm(-1.0, &left, &rt, 1.0, c);
                    },
                    || gemm(-1.0, &left, &rt, 0.0, &mut scratch),
                );
            }
            courier.step_done(t_update.elapsed().as_secs_f64());
            if let Some(g) = update_span.as_mut() {
                g.arg_u64("units", clock.units - units_before);
            }
        }
        courier.end_step(k);
    }

    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_core::{exact, Arrangement};
    use hetgrid_dist::{BlockCyclic, PanelDist, PanelOrdering};
    use hetgrid_linalg::gemm::matmul;

    fn spd_matrix(n: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let b = Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        let mut a = matmul(&b.transpose(), &b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    fn check(a: &Matrix, l: &Matrix, tol: f64) {
        let llt = matmul(l, &l.transpose());
        assert!(
            llt.approx_eq(a, tol),
            "A != L L^T, max err {}",
            llt.sub(a).max_abs()
        );
    }

    #[test]
    fn cholesky_cyclic_reconstructs() {
        let nb = 4;
        let r = 3;
        let a = spd_matrix(nb * r, 0xC0);
        let dist = BlockCyclic::new(2, 2);
        let (l, _) = run_cholesky(&a, &dist, nb, r, &vec![vec![1; 2]; 2]).unwrap();
        check(&a, &l, 1e-8);
    }

    #[test]
    fn cholesky_panel_with_weights() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let dist = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
        let nb = 8;
        let r = 2;
        let a = spd_matrix(nb * r, 0xC1);
        let w = crate::store::slowdown_weights(&arr);
        let (l, report) = run_cholesky(&a, &dist, nb, r, &w).unwrap();
        check(&a, &l, 1e-8);
        assert!(report.work_units.iter().flatten().sum::<u64>() > 0);
    }

    #[test]
    fn cholesky_matches_sequential() {
        let nb = 3;
        let r = 4;
        let a = spd_matrix(nb * r, 0xC2);
        let dist = BlockCyclic::new(1, 2);
        let (l, _) = run_cholesky(&a, &dist, nb, r, &[vec![1; 2]]).unwrap();
        let seq = hetgrid_linalg::cholesky::cholesky_blocked(&a, r).unwrap();
        assert!(l.approx_eq(&seq, 1e-8));
    }

    #[test]
    fn single_processor_cholesky() {
        let a = spd_matrix(8, 0xC3);
        let dist = BlockCyclic::new(1, 1);
        let (l, _) = run_cholesky(&a, &dist, 4, 2, &[vec![1]]).unwrap();
        check(&a, &l, 1e-9);
    }
}
