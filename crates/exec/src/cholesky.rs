//! Threaded distributed right-looking Cholesky factorization
//! (`A = L L^T`, lower triangle), completing the ScaLAPACK kernel triple
//! (LU, QR, Cholesky — the paper's reference \[8]) in the executor.
//!
//! Step `k`: the owner of the diagonal block factors it and broadcasts
//! the factor down the panel; panel owners right-solve their blocks and
//! broadcast them to the trailing lower-triangle owners (each block
//! `L(bi, k)` serves both as the left factor for row `bi` and,
//! transposed, as the right factor for column `bi`); the trailing
//! lower-triangle blocks are then updated.

use crate::channel::{unbounded, Sender};
use crate::probe::Probe;
use crate::store::{BlockStore, DistributedMatrix, ExecReport};
use crate::transport::{ChannelTransport, Endpoint, Transport};
use hetgrid_dist::BlockDist;
use hetgrid_linalg::cholesky::cholesky;
use hetgrid_linalg::gemm::gemm;
use hetgrid_linalg::tri::solve_lower;
use hetgrid_linalg::Matrix;
use std::collections::HashMap;
use std::time::Instant;

#[derive(Clone, Debug)]
enum Msg {
    /// Cholesky factor of the diagonal block of step `k`.
    Diag { step: usize, data: Matrix },
    /// Solved panel block `(bi, k)` of step `k`.
    L {
        step: usize,
        bi: usize,
        data: Matrix,
    },
}

/// Factors the SPD matrix `a` over the distribution; returns the
/// gathered lower factor `L` (upper triangle zero) and the execution
/// report. Only the lower triangle of `a` participates; the strict
/// upper-triangle blocks of the result are zeroed.
///
/// # Panics
/// Panics on size mismatch or if a diagonal block is not positive
/// definite.
pub fn run_cholesky(
    a: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> (Matrix, ExecReport) {
    run_cholesky_on(&ChannelTransport, a, dist, nb, r, weights)
}

/// [`run_cholesky`] over an explicit [`Transport`] (the harness injects
/// its fault-injecting virtual transport here).
///
/// # Panics
/// Panics like [`run_cholesky`].
pub fn run_cholesky_on(
    transport: &impl Transport,
    a: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> (Matrix, ExecReport) {
    let (p, q) = dist.grid();
    assert_eq!(weights.len(), p, "run_cholesky: weights rows mismatch");
    assert!(
        weights.iter().all(|row| row.len() == q),
        "run_cholesky: weights cols mismatch"
    );
    let da = DistributedMatrix::scatter(a, dist, nb, r);

    let n_procs = p * q;
    let endpoints = transport.connect::<Msg>(n_procs);
    let (done_tx, done_rx) = unbounded::<(usize, BlockStore, f64, u64, u64)>();

    let wall_start = Instant::now();
    std::thread::scope(|scope| {
        for (me, ep) in endpoints.into_iter().enumerate() {
            let (i, j) = (me / q, me % q);
            let my_blocks = da.stores[me].clone();
            let done = done_tx.clone();
            let w = weights[i][j];
            scope.spawn(move || {
                worker(dist, nb, r, (i, j), my_blocks, w, ep, done);
            });
        }
    });
    drop(done_tx);

    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let mut l = Matrix::zeros(nb * r, nb * r);
    let mut busy = vec![vec![0.0f64; q]; p];
    let mut work = vec![vec![0u64; q]; p];
    let mut msgs = vec![vec![0u64; q]; p];
    let mut blocks_seen = 0usize;
    while let Ok((me, store, busy_s, units, sent)) = done_rx.recv() {
        let (i, j) = (me / q, me % q);
        busy[i][j] = busy_s;
        work[i][j] = units;
        msgs[i][j] = sent;
        for ((bi, bj), block) in store {
            // Keep only the lower block triangle.
            if bj <= bi {
                l.set_block(bi * r, bj * r, &block);
            }
            blocks_seen += 1;
        }
    }
    assert_eq!(blocks_seen, nb * nb, "run_cholesky: missing result blocks");
    // Zero the strict upper triangle of the diagonal blocks.
    let n = nb * r;
    for i in 0..n {
        for j in i + 1..n {
            l[(i, j)] = 0.0;
        }
    }
    (
        l,
        ExecReport {
            wall_seconds,
            busy_seconds: busy,
            work_units: work,
            messages_sent: msgs,
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn worker(
    dist: &dyn BlockDist,
    nb: usize,
    r: usize,
    (i, j): (usize, usize),
    mut blocks: BlockStore,
    weight: u64,
    ep: Box<dyn Endpoint<Msg>>,
    done: Sender<(usize, BlockStore, f64, u64, u64)>,
) {
    let (p, q) = dist.grid();
    let me = i * q + j;
    let mut probe = Probe::new((i, j), (p, q));
    let block_bytes = (r * r * std::mem::size_of::<f64>()) as u64;
    let owner_id = |bi: usize, bj: usize| {
        let (oi, oj) = dist.owner(bi, bj);
        oi * q + oj
    };

    let mut diag_pending: HashMap<usize, Matrix> = HashMap::new();
    let mut l_pending: HashMap<(usize, usize), Matrix> = HashMap::new();
    let mut busy = 0.0f64;
    let mut units = 0u64;
    let mut sent = 0u64;

    for k in 0..nb {
        let diag_owner = owner_id(k, k);

        // --- 1. Diagonal factorization and broadcast to panel owners.
        if diag_owner == me {
            let _factor_span = probe.as_ref().map(|pr| pr.span(format!("factor {k}")));
            let lkk = {
                let blk = blocks.get(&(k, k)).expect("diag block missing");
                let t0 = Instant::now();
                let mut lkk = cholesky(blk).expect("diagonal block not SPD");
                for _ in 1..weight {
                    lkk = cholesky(blk).expect("diagonal block not SPD");
                }
                busy += t0.elapsed().as_secs_f64();
                units += weight;
                lkk
            };
            blocks.insert((k, k), lkk.clone());
            let mut dests: Vec<usize> = Vec::new();
            for bi in k + 1..nb {
                let d = owner_id(bi, k);
                if d != me && !dests.contains(&d) {
                    dests.push(d);
                }
            }
            for d in dests {
                ep.send(
                    d,
                    Msg::Diag {
                        step: k,
                        data: lkk.clone(),
                    },
                )
                .expect("receiver hung up");
                sent += 1;
                if let Some(pr) = probe.as_mut() {
                    pr.sent(d, k, block_bytes);
                }
            }
        }
        if k + 1 == nb {
            continue;
        }

        // --- 2. Panel right-solves: A_ik := A_ik * L_kk^{-T}.
        let i_own_panel = (k + 1..nb).any(|bi| owner_id(bi, k) == me);
        if i_own_panel {
            let _panel_span = probe.as_ref().map(|pr| pr.span(format!("panel {k}")));
            let lkk = if diag_owner == me {
                blocks[&(k, k)].clone()
            } else {
                if !diag_pending.contains_key(&k) {
                    pump(ep.as_ref(), &mut diag_pending, &mut l_pending, |d, _| {
                        d.contains_key(&k)
                    });
                }
                diag_pending[&k].clone()
            };
            for bi in k + 1..nb {
                if owner_id(bi, k) != me {
                    continue;
                }
                // X * L^T = A  <=>  L * X^T = A^T.
                let solved = {
                    let blk = blocks.get(&(bi, k)).expect("panel block missing");
                    let t0 = Instant::now();
                    let mut s = solve_lower(&lkk, &blk.transpose(), false).transpose();
                    for _ in 1..weight {
                        s = solve_lower(&lkk, &blk.transpose(), false).transpose();
                    }
                    busy += t0.elapsed().as_secs_f64();
                    units += weight;
                    s
                };
                blocks.insert((bi, k), solved.clone());
                // Broadcast to the trailing lower-triangle owners that
                // need this block: row bi (left factor) and column bi
                // (right factor).
                let mut dests: Vec<usize> = Vec::new();
                for bj in k + 1..=bi {
                    let d = owner_id(bi, bj);
                    if d != me && !dests.contains(&d) {
                        dests.push(d);
                    }
                }
                for bi2 in bi..nb {
                    let d = owner_id(bi2, bi);
                    if d != me && !dests.contains(&d) {
                        dests.push(d);
                    }
                }
                for d in dests {
                    ep.send(
                        d,
                        Msg::L {
                            step: k,
                            bi,
                            data: solved.clone(),
                        },
                    )
                    .expect("receiver hung up");
                    sent += 1;
                    if let Some(pr) = probe.as_mut() {
                        pr.sent(d, k, block_bytes);
                    }
                }
            }
        }

        // --- 3. Trailing symmetric update of my lower-triangle blocks.
        let trailing: Vec<(usize, usize)> = (k + 1..nb)
            .flat_map(|bi| (k + 1..=bi).map(move |bj| (bi, bj)))
            .filter(|&(bi, bj)| owner_id(bi, bj) == me)
            .collect();
        if !trailing.is_empty() {
            let mut need: Vec<usize> = Vec::new();
            for &(bi, bj) in &trailing {
                for b in [bi, bj] {
                    if owner_id(b, k) != me && !need.contains(&b) {
                        need.push(b);
                    }
                }
            }
            need.retain(|&b| !l_pending.contains_key(&(k, b)));
            if !need.is_empty() {
                let _wait_span = probe.as_ref().map(|pr| pr.span(format!("wait {k}")));
                pump(ep.as_ref(), &mut diag_pending, &mut l_pending, |_, l| {
                    need.iter().all(|&b| l.contains_key(&(k, b)))
                });
            }
            let mut update_span = probe.as_ref().map(|pr| pr.span(format!("update {k}")));
            let units_before = units;
            let t_update = Instant::now();
            let mut scratch = Matrix::zeros(r, r);
            for &(bi, bj) in &trailing {
                let left = if owner_id(bi, k) == me {
                    blocks[&(bi, k)].clone()
                } else {
                    l_pending[&(k, bi)].clone()
                };
                let right = if owner_id(bj, k) == me {
                    blocks[&(bj, k)].clone()
                } else {
                    l_pending[&(k, bj)].clone()
                };
                let rt = right.transpose();
                let t0 = Instant::now();
                {
                    let c = blocks.get_mut(&(bi, bj)).expect("trailing block missing");
                    gemm(-1.0, &left, &rt, 1.0, c);
                }
                for _ in 1..weight {
                    gemm(-1.0, &left, &rt, 0.0, &mut scratch);
                }
                busy += t0.elapsed().as_secs_f64();
                units += weight;
            }
            if let Some(pr) = &probe {
                pr.step_done(t_update.elapsed().as_secs_f64());
            }
            if let Some(g) = update_span.as_mut() {
                g.arg_u64("units", units - units_before);
            }
        }
        diag_pending.remove(&k);
        l_pending.retain(|&(s, _), _| s > k);
    }

    if let Some(pr) = &probe {
        pr.finish(units);
    }
    done.send((me, blocks, busy, units, sent))
        .expect("main hung up");
}

fn pump(
    ep: &dyn Endpoint<Msg>,
    diag: &mut HashMap<usize, Matrix>,
    l: &mut HashMap<(usize, usize), Matrix>,
    ready: impl Fn(&HashMap<usize, Matrix>, &HashMap<(usize, usize), Matrix>) -> bool,
) {
    while !ready(diag, l) {
        match ep.recv().expect("sender hung up") {
            Msg::Diag { step, data } => {
                diag.insert(step, data);
            }
            Msg::L { step, bi, data } => {
                l.insert((step, bi), data);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_core::{exact, Arrangement};
    use hetgrid_dist::{BlockCyclic, PanelDist, PanelOrdering};
    use hetgrid_linalg::gemm::matmul;

    fn spd_matrix(n: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let b = Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        let mut a = matmul(&b.transpose(), &b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    fn check(a: &Matrix, l: &Matrix, tol: f64) {
        let llt = matmul(l, &l.transpose());
        assert!(
            llt.approx_eq(a, tol),
            "A != L L^T, max err {}",
            llt.sub(a).max_abs()
        );
    }

    #[test]
    fn cholesky_cyclic_reconstructs() {
        let nb = 4;
        let r = 3;
        let a = spd_matrix(nb * r, 0xC0);
        let dist = BlockCyclic::new(2, 2);
        let (l, _) = run_cholesky(&a, &dist, nb, r, &vec![vec![1; 2]; 2]);
        check(&a, &l, 1e-8);
    }

    #[test]
    fn cholesky_panel_with_weights() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let dist = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
        let nb = 8;
        let r = 2;
        let a = spd_matrix(nb * r, 0xC1);
        let w = crate::store::slowdown_weights(&arr);
        let (l, report) = run_cholesky(&a, &dist, nb, r, &w);
        check(&a, &l, 1e-8);
        assert!(report.work_units.iter().flatten().sum::<u64>() > 0);
    }

    #[test]
    fn cholesky_matches_sequential() {
        let nb = 3;
        let r = 4;
        let a = spd_matrix(nb * r, 0xC2);
        let dist = BlockCyclic::new(1, 2);
        let (l, _) = run_cholesky(&a, &dist, nb, r, &[vec![1; 2]]);
        let seq = hetgrid_linalg::cholesky::cholesky_blocked(&a, r).unwrap();
        assert!(l.approx_eq(&seq, 1e-8));
    }

    #[test]
    fn single_processor_cholesky() {
        let a = spd_matrix(8, 0xC3);
        let dist = BlockCyclic::new(1, 1);
        let (l, _) = run_cholesky(&a, &dist, 4, 2, &[vec![1]]);
        check(&a, &l, 1e-9);
    }
}
