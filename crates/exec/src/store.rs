//! Distributed block storage: scattering a global matrix over a
//! [`BlockDist`] and gathering it back — the executor-side equivalent of
//! ScaLAPACK's local array layout.

use hetgrid_dist::BlockDist;
use hetgrid_linalg::Matrix;
use std::collections::HashMap;
use std::sync::Mutex;

/// The blocks of one processor, keyed by global block coordinates.
pub type BlockStore = HashMap<(usize, usize), Matrix>;

/// A matrix partitioned into `r x r` blocks and scattered over a grid.
#[derive(Clone, Debug)]
pub struct DistributedMatrix {
    /// Block size `r`.
    pub r: usize,
    /// Number of block rows.
    pub nb_rows: usize,
    /// Number of block columns.
    pub nb_cols: usize,
    /// Per-processor stores, row-major over the grid.
    pub stores: Vec<BlockStore>,
    /// Grid shape.
    pub grid: (usize, usize),
}

impl DistributedMatrix {
    /// Scatters the square matrix `m` (side `nb * r`) over `dist`.
    ///
    /// # Panics
    /// Panics if `m` is not square with side `nb * r`.
    pub fn scatter(m: &Matrix, dist: &dyn BlockDist, nb: usize, r: usize) -> Self {
        Self::scatter_rect(m, dist, nb, nb, r)
    }

    /// Scatters a rectangular `nb_rows*r x nb_cols*r` matrix over `dist`.
    ///
    /// # Panics
    /// Panics on size mismatch.
    pub fn scatter_rect(
        m: &Matrix,
        dist: &dyn BlockDist,
        nb_rows: usize,
        nb_cols: usize,
        r: usize,
    ) -> Self {
        assert_eq!(
            m.shape(),
            (nb_rows * r, nb_cols * r),
            "scatter: size mismatch"
        );
        let (p, q) = dist.grid();
        let mut stores: Vec<BlockStore> = vec![HashMap::new(); p * q];
        for bi in 0..nb_rows {
            for bj in 0..nb_cols {
                let (i, j) = dist.owner(bi, bj);
                stores[i * q + j].insert((bi, bj), m.block(bi * r, bj * r, r, r));
            }
        }
        DistributedMatrix {
            r,
            nb_rows,
            nb_cols,
            stores,
            grid: (p, q),
        }
    }

    /// Creates an all-zero square distributed matrix.
    pub fn zeros(dist: &dyn BlockDist, nb: usize, r: usize) -> Self {
        let z = Matrix::zeros(nb * r, nb * r);
        Self::scatter(&z, dist, nb, r)
    }

    /// Creates an all-zero rectangular distributed matrix.
    pub fn zeros_rect(dist: &dyn BlockDist, nb_rows: usize, nb_cols: usize, r: usize) -> Self {
        let z = Matrix::zeros(nb_rows * r, nb_cols * r);
        Self::scatter_rect(&z, dist, nb_rows, nb_cols, r)
    }

    /// Gathers the blocks back into a global matrix.
    ///
    /// # Panics
    /// Panics if any block is missing (stores were tampered with).
    pub fn gather(&self) -> Matrix {
        let mut m = Matrix::zeros(self.nb_rows * self.r, self.nb_cols * self.r);
        let mut seen = 0usize;
        for store in &self.stores {
            for (&(bi, bj), block) in store {
                m.set_block(bi * self.r, bj * self.r, block);
                seen += 1;
            }
        }
        assert_eq!(seen, self.nb_rows * self.nb_cols, "gather: missing blocks");
        m
    }

    /// The store of processor `(i, j)`.
    pub fn store(&self, i: usize, j: usize) -> &BlockStore {
        &self.stores[i * self.grid.1 + j]
    }
}

/// One journaled block version: during plan step `step`, processor
/// `proc` (linear id) left `data` in global block `block`.
#[derive(Clone, Debug)]
struct LogEntry {
    proc: usize,
    step: usize,
    data: Matrix,
}

struct LogInner {
    /// Versions per global block, in append order. Within one step a
    /// block is written by exactly one action of its owner, so the
    /// `(block, step)` pairs are unique and "latest version below a
    /// step" is well defined no matter how worker threads interleaved
    /// their appends.
    entries: HashMap<(usize, usize), Vec<LogEntry>>,
    /// Per-processor retirement frontier: the number of plan steps the
    /// processor has fully retired (all its local actions done).
    retired: Vec<usize>,
}

/// An incremental block-version log — the checkpoint store behind
/// elastic-grid recovery.
///
/// Workers journal every namespace-0 block they write, tagged with the
/// plan step, and report each retired step. Because a step is only
/// retired once all of its local actions completed, the *global
/// frontier* `F = min_i retired_i` is a consistent cut: every write of
/// every step `< F` has been journaled on every processor, while the
/// in-flight writes of steps `>= F` are simply ignored by
/// [`CheckpointLog::state_at`]. Snapshots therefore always land on a
/// panel-retirement boundary — the executor's natural quiescent points.
///
/// The log is shared (`&self` everywhere, internal mutex) so one
/// instance can be journaled into by all workers of a run.
pub struct CheckpointLog {
    inner: Mutex<LogInner>,
    start: usize,
}

impl CheckpointLog {
    /// A fresh log for an epoch of `n_procs` workers whose step plan
    /// resumes at step `start` (0 for a from-scratch run). All
    /// retirement frontiers begin at `start`.
    pub fn new(n_procs: usize, start: usize) -> Self {
        CheckpointLog {
            inner: Mutex::new(LogInner {
                entries: HashMap::new(),
                retired: vec![start; n_procs],
            }),
            start,
        }
    }

    /// The step this epoch's plan resumed at.
    pub fn start(&self) -> usize {
        self.start
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LogInner> {
        // A worker that panicked (harness watchdog) poisons the mutex;
        // the log stays readable for the recovery driver.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Journals one block version: `proc` wrote `data` into `block`
    /// during step `step`.
    pub fn record(&self, proc: usize, step: usize, block: (usize, usize), data: &Matrix) {
        self.lock()
            .entries
            .entry(block)
            .or_default()
            .push(LogEntry {
                proc,
                step,
                data: data.clone(),
            });
    }

    /// Marks step `front` retired on `proc`: its frontier moves to
    /// `front + 1`.
    pub fn note_retired(&self, proc: usize, front: usize) {
        let mut inner = self.lock();
        inner.retired[proc] = inner.retired[proc].max(front + 1);
    }

    /// The global retirement frontier `F = min_i retired_i`: every step
    /// `< F` is fully executed on every processor.
    pub fn frontier(&self) -> usize {
        self.lock()
            .retired
            .iter()
            .copied()
            .min()
            .unwrap_or(self.start)
    }

    /// Total number of journaled block versions.
    pub fn len(&self) -> usize {
        self.lock().entries.values().map(Vec::len).sum()
    }

    /// `true` if nothing has been journaled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks whose *latest* journaled version (at any step) was written
    /// by `proc` — the blocks that die with that processor if nothing
    /// below the cut supersedes them. Sorted for deterministic reports.
    pub fn written_last_by(&self, proc: usize) -> Vec<(usize, usize)> {
        let inner = self.lock();
        let mut blocks: Vec<(usize, usize)> = inner
            .entries
            .iter()
            .filter(|(_, versions)| {
                versions
                    .iter()
                    .max_by_key(|e| e.step)
                    .is_some_and(|e| e.proc == proc)
            })
            .map(|(&b, _)| b)
            .collect();
        blocks.sort_unstable();
        blocks
    }

    /// Materializes the consistent state at cut `f`: for every block in
    /// `base` (the epoch's starting content), the latest journaled
    /// version with `step < f`, or the base content when no step below
    /// the cut wrote it.
    ///
    /// # Panics
    /// Panics if the log journaled a block that `base` does not know —
    /// that would mean the epoch wrote outside its matrix.
    pub fn state_at(&self, f: usize, base: &BlockStore) -> BlockStore {
        let inner = self.lock();
        for block in inner.entries.keys() {
            assert!(
                base.contains_key(block),
                "CheckpointLog::state_at: journaled block {block:?} missing from base"
            );
        }
        base.iter()
            .map(|(&block, base_data)| {
                let data = inner
                    .entries
                    .get(&block)
                    .and_then(|versions| {
                        versions
                            .iter()
                            .filter(|e| e.step < f)
                            .max_by_key(|e| e.step)
                    })
                    .map(|e| e.data.clone())
                    .unwrap_or_else(|| base_data.clone());
                (block, data)
            })
            .collect()
    }
}

/// Per-processor execution measurements from a distributed run.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Wall-clock seconds of the whole run.
    pub wall_seconds: f64,
    /// Seconds each processor spent in compute (row-major grid table).
    pub busy_seconds: Vec<Vec<f64>>,
    /// Number of block-update-equivalents each processor performed
    /// (weighted work units).
    pub work_units: Vec<Vec<u64>>,
    /// Number of messages each processor sent (one message per block
    /// per destination).
    pub messages_sent: Vec<Vec<u64>>,
}

impl ExecReport {
    /// Ratio of the busiest processor's compute time to the mean — 1.0
    /// means perfectly balanced compute. An empty or fully idle grid is
    /// reported as balanced (1.0) rather than NaN.
    pub fn imbalance(&self) -> f64 {
        let flat: Vec<f64> = self.busy_seconds.iter().flatten().cloned().collect();
        if flat.is_empty() {
            return 1.0;
        }
        let max = flat.iter().cloned().fold(0.0f64, f64::max);
        let mean = flat.iter().sum::<f64>() / flat.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Ratio of the largest weighted work to the mean, a hardware-clock
    /// independent balance measure. An empty or zero-work grid is
    /// reported as balanced (1.0).
    pub fn work_imbalance(&self) -> f64 {
        let flat: Vec<u64> = self.work_units.iter().flatten().cloned().collect();
        let max = match flat.iter().max() {
            Some(&m) => m as f64,
            None => return 1.0,
        };
        let mean = flat.iter().sum::<u64>() as f64 / flat.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Observed per-unit cycle-times: `busy_seconds / work_units` per
    /// processor, `None` where a processor performed no work this run.
    ///
    /// This is the telemetry signal the adaptive runtime consumes: on
    /// drifting machines the per-unit time of a processor rises with the
    /// competing load, independent of how many blocks it owned.
    pub fn observed_times(&self) -> Vec<Vec<Option<f64>>> {
        self.busy_seconds
            .iter()
            .zip(&self.work_units)
            .map(|(busy_row, unit_row)| {
                busy_row
                    .iter()
                    .zip(unit_row)
                    .map(|(&busy, &units)| {
                        if units > 0 {
                            Some(busy / units as f64)
                        } else {
                            None
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Total number of messages sent across all processors.
    pub fn total_messages(&self) -> u64 {
        self.messages_sent.iter().flatten().sum()
    }
}

/// Integer slowdown weights from an arrangement: each processor repeats
/// every block kernel `w_ij = round(t_ij / min t)` times, emulating the
/// heterogeneous cycle-times on homogeneous hardware threads.
pub fn slowdown_weights(arr: &hetgrid_core::Arrangement) -> Vec<Vec<u64>> {
    let tmin = arr.times().iter().cloned().fold(f64::INFINITY, f64::min);
    (0..arr.p())
        .map(|i| {
            (0..arr.q())
                .map(|j| ((arr.time(i, j) / tmin).round() as u64).max(1))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_dist::BlockCyclic;

    #[test]
    fn scatter_gather_roundtrip() {
        let m = Matrix::from_fn(12, 12, |i, j| (i * 12 + j) as f64);
        let dist = BlockCyclic::new(2, 2);
        let d = DistributedMatrix::scatter(&m, &dist, 4, 3);
        assert!(d.gather().approx_eq(&m, 0.0));
    }

    #[test]
    fn blocks_live_with_their_owner() {
        let m = Matrix::from_fn(8, 8, |i, j| (i + j) as f64);
        let dist = BlockCyclic::new(2, 2);
        let d = DistributedMatrix::scatter(&m, &dist, 4, 2);
        // Block (1, 3) belongs to (1, 1).
        assert!(d.store(1, 1).contains_key(&(1, 3)));
        assert!(!d.store(0, 0).contains_key(&(1, 3)));
        // Each store holds nb^2 / (p*q) blocks here.
        assert_eq!(d.store(0, 0).len(), 4);
    }

    #[test]
    fn checkpoint_frontier_is_min_over_procs() {
        let log = CheckpointLog::new(3, 0);
        assert_eq!(log.frontier(), 0);
        log.note_retired(0, 0);
        log.note_retired(1, 2);
        assert_eq!(log.frontier(), 0); // proc 2 has retired nothing
        log.note_retired(2, 1);
        assert_eq!(log.frontier(), 1); // proc 0 is the laggard now
    }

    #[test]
    fn checkpoint_state_picks_latest_version_below_cut() {
        let log = CheckpointLog::new(2, 0);
        let base: BlockStore = [((0, 0), Matrix::zeros(2, 2)), ((0, 1), Matrix::zeros(2, 2))]
            .into_iter()
            .collect();
        let v = |x: f64| Matrix::from_fn(2, 2, |_, _| x);
        // Appends arrive out of step order, as racing workers produce.
        log.record(0, 2, (0, 0), &v(3.0));
        log.record(0, 0, (0, 0), &v(1.0));
        log.record(1, 1, (0, 0), &v(2.0));
        let cut = log.state_at(2, &base);
        assert!(cut[&(0, 0)].approx_eq(&v(2.0), 0.0)); // step 2 is above the cut
        assert!(cut[&(0, 1)].approx_eq(&Matrix::zeros(2, 2), 0.0)); // untouched -> base
                                                                    // Cut at the start falls back to the base everywhere.
        let fresh = log.state_at(0, &base);
        assert!(fresh[&(0, 0)].approx_eq(&Matrix::zeros(2, 2), 0.0));
        // The proc that last touched (0, 0) is the one that would lose it.
        assert_eq!(log.written_last_by(0), vec![(0, 0)]);
        assert_eq!(log.written_last_by(1), Vec::<(usize, usize)>::new());
    }

    #[test]
    #[should_panic(expected = "missing from base")]
    fn checkpoint_state_rejects_foreign_blocks() {
        let log = CheckpointLog::new(1, 0);
        log.record(0, 0, (5, 5), &Matrix::zeros(2, 2));
        log.state_at(1, &BlockStore::new());
    }

    #[test]
    fn slowdown_weights_are_normalized() {
        let arr = hetgrid_core::Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        assert_eq!(slowdown_weights(&arr), vec![vec![1, 2], vec![3, 6]]);
        let arr2 = hetgrid_core::Arrangement::from_rows(&[vec![0.5, 1.0]]);
        assert_eq!(slowdown_weights(&arr2), vec![vec![1, 2]]);
    }
}
