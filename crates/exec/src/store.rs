//! Distributed block storage: scattering a global matrix over a
//! [`BlockDist`] and gathering it back — the executor-side equivalent of
//! ScaLAPACK's local array layout.

use hetgrid_dist::BlockDist;
use hetgrid_linalg::Matrix;
use std::collections::HashMap;

/// The blocks of one processor, keyed by global block coordinates.
pub type BlockStore = HashMap<(usize, usize), Matrix>;

/// A matrix partitioned into `r x r` blocks and scattered over a grid.
#[derive(Clone, Debug)]
pub struct DistributedMatrix {
    /// Block size `r`.
    pub r: usize,
    /// Number of block rows.
    pub nb_rows: usize,
    /// Number of block columns.
    pub nb_cols: usize,
    /// Per-processor stores, row-major over the grid.
    pub stores: Vec<BlockStore>,
    /// Grid shape.
    pub grid: (usize, usize),
}

impl DistributedMatrix {
    /// Scatters the square matrix `m` (side `nb * r`) over `dist`.
    ///
    /// # Panics
    /// Panics if `m` is not square with side `nb * r`.
    pub fn scatter(m: &Matrix, dist: &dyn BlockDist, nb: usize, r: usize) -> Self {
        Self::scatter_rect(m, dist, nb, nb, r)
    }

    /// Scatters a rectangular `nb_rows*r x nb_cols*r` matrix over `dist`.
    ///
    /// # Panics
    /// Panics on size mismatch.
    pub fn scatter_rect(
        m: &Matrix,
        dist: &dyn BlockDist,
        nb_rows: usize,
        nb_cols: usize,
        r: usize,
    ) -> Self {
        assert_eq!(
            m.shape(),
            (nb_rows * r, nb_cols * r),
            "scatter: size mismatch"
        );
        let (p, q) = dist.grid();
        let mut stores: Vec<BlockStore> = vec![HashMap::new(); p * q];
        for bi in 0..nb_rows {
            for bj in 0..nb_cols {
                let (i, j) = dist.owner(bi, bj);
                stores[i * q + j].insert((bi, bj), m.block(bi * r, bj * r, r, r));
            }
        }
        DistributedMatrix {
            r,
            nb_rows,
            nb_cols,
            stores,
            grid: (p, q),
        }
    }

    /// Creates an all-zero square distributed matrix.
    pub fn zeros(dist: &dyn BlockDist, nb: usize, r: usize) -> Self {
        let z = Matrix::zeros(nb * r, nb * r);
        Self::scatter(&z, dist, nb, r)
    }

    /// Gathers the blocks back into a global matrix.
    ///
    /// # Panics
    /// Panics if any block is missing (stores were tampered with).
    pub fn gather(&self) -> Matrix {
        let mut m = Matrix::zeros(self.nb_rows * self.r, self.nb_cols * self.r);
        let mut seen = 0usize;
        for store in &self.stores {
            for (&(bi, bj), block) in store {
                m.set_block(bi * self.r, bj * self.r, block);
                seen += 1;
            }
        }
        assert_eq!(seen, self.nb_rows * self.nb_cols, "gather: missing blocks");
        m
    }

    /// The store of processor `(i, j)`.
    pub fn store(&self, i: usize, j: usize) -> &BlockStore {
        &self.stores[i * self.grid.1 + j]
    }
}

/// Per-processor execution measurements from a distributed run.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Wall-clock seconds of the whole run.
    pub wall_seconds: f64,
    /// Seconds each processor spent in compute (row-major grid table).
    pub busy_seconds: Vec<Vec<f64>>,
    /// Number of block-update-equivalents each processor performed
    /// (weighted work units).
    pub work_units: Vec<Vec<u64>>,
    /// Number of messages each processor sent (one message per block
    /// per destination).
    pub messages_sent: Vec<Vec<u64>>,
}

impl ExecReport {
    /// Ratio of the busiest processor's compute time to the mean — 1.0
    /// means perfectly balanced compute. An empty or fully idle grid is
    /// reported as balanced (1.0) rather than NaN.
    pub fn imbalance(&self) -> f64 {
        let flat: Vec<f64> = self.busy_seconds.iter().flatten().cloned().collect();
        if flat.is_empty() {
            return 1.0;
        }
        let max = flat.iter().cloned().fold(0.0f64, f64::max);
        let mean = flat.iter().sum::<f64>() / flat.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Ratio of the largest weighted work to the mean, a hardware-clock
    /// independent balance measure. An empty or zero-work grid is
    /// reported as balanced (1.0).
    pub fn work_imbalance(&self) -> f64 {
        let flat: Vec<u64> = self.work_units.iter().flatten().cloned().collect();
        let max = match flat.iter().max() {
            Some(&m) => m as f64,
            None => return 1.0,
        };
        let mean = flat.iter().sum::<u64>() as f64 / flat.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Observed per-unit cycle-times: `busy_seconds / work_units` per
    /// processor, `None` where a processor performed no work this run.
    ///
    /// This is the telemetry signal the adaptive runtime consumes: on
    /// drifting machines the per-unit time of a processor rises with the
    /// competing load, independent of how many blocks it owned.
    pub fn observed_times(&self) -> Vec<Vec<Option<f64>>> {
        self.busy_seconds
            .iter()
            .zip(&self.work_units)
            .map(|(busy_row, unit_row)| {
                busy_row
                    .iter()
                    .zip(unit_row)
                    .map(|(&busy, &units)| {
                        if units > 0 {
                            Some(busy / units as f64)
                        } else {
                            None
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Total number of messages sent across all processors.
    pub fn total_messages(&self) -> u64 {
        self.messages_sent.iter().flatten().sum()
    }
}

/// Integer slowdown weights from an arrangement: each processor repeats
/// every block kernel `w_ij = round(t_ij / min t)` times, emulating the
/// heterogeneous cycle-times on homogeneous hardware threads.
pub fn slowdown_weights(arr: &hetgrid_core::Arrangement) -> Vec<Vec<u64>> {
    let tmin = arr.times().iter().cloned().fold(f64::INFINITY, f64::min);
    (0..arr.p())
        .map(|i| {
            (0..arr.q())
                .map(|j| ((arr.time(i, j) / tmin).round() as u64).max(1))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_dist::BlockCyclic;

    #[test]
    fn scatter_gather_roundtrip() {
        let m = Matrix::from_fn(12, 12, |i, j| (i * 12 + j) as f64);
        let dist = BlockCyclic::new(2, 2);
        let d = DistributedMatrix::scatter(&m, &dist, 4, 3);
        assert!(d.gather().approx_eq(&m, 0.0));
    }

    #[test]
    fn blocks_live_with_their_owner() {
        let m = Matrix::from_fn(8, 8, |i, j| (i + j) as f64);
        let dist = BlockCyclic::new(2, 2);
        let d = DistributedMatrix::scatter(&m, &dist, 4, 2);
        // Block (1, 3) belongs to (1, 1).
        assert!(d.store(1, 1).contains_key(&(1, 3)));
        assert!(!d.store(0, 0).contains_key(&(1, 3)));
        // Each store holds nb^2 / (p*q) blocks here.
        assert_eq!(d.store(0, 0).len(), 4);
    }

    #[test]
    fn slowdown_weights_are_normalized() {
        let arr = hetgrid_core::Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        assert_eq!(slowdown_weights(&arr), vec![vec![1, 2], vec![3, 6]]);
        let arr2 = hetgrid_core::Arrangement::from_rows(&[vec![0.5, 1.0]]);
        assert_eq!(slowdown_weights(&arr2), vec![vec![1, 2]]);
    }
}
