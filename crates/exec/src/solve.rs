//! Distributed linear system solve: the user-facing "solve `A x = b` on
//! the cluster" entry point. The O(n^3) factorization runs distributed
//! (LU or Cholesky over the chosen layout); the O(n^2) triangular
//! solves run on the gathered factors — the standard split for a
//! library whose expensive phase is the factorization.

use crate::step::ExecConfig;
use crate::store::ExecReport;
use crate::transport::{ChannelTransport, ExecError, Transport};
use hetgrid_dist::BlockDist;
use hetgrid_linalg::tri::{solve_lower, solve_upper};
use hetgrid_linalg::Matrix;

/// Which factorization backs the solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveKind {
    /// Distributed LU without pivoting — use diagonally dominant
    /// systems.
    Lu,
    /// Distributed Cholesky — use symmetric positive definite systems.
    Cholesky,
}

/// Solves `A x = b` over the distribution; returns the solution and the
/// factorization's execution report, or a typed [`ExecError`] if a
/// worker dropped out mid-run.
///
/// # Panics
/// Panics on size mismatch or numerical breakdown (see
/// [`crate::run_lu`] / [`crate::run_cholesky`]).
pub fn run_solve(
    a: &Matrix,
    b: &[f64],
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
    kind: SolveKind,
) -> Result<(Vec<f64>, ExecReport), ExecError> {
    run_solve_on(&ChannelTransport, a, b, dist, nb, r, weights, kind)
}

/// [`run_solve`] over an explicit [`Transport`]: the distributed
/// factorization phase communicates through it.
///
/// # Panics
/// Panics like [`run_solve`].
pub fn run_solve_on(
    transport: &impl Transport,
    a: &Matrix,
    b: &[f64],
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
    kind: SolveKind,
) -> Result<(Vec<f64>, ExecReport), ExecError> {
    run_solve_on_cfg(
        transport,
        a,
        b,
        dist,
        nb,
        r,
        weights,
        kind,
        ExecConfig::default(),
    )
}

/// [`run_solve_on`] with explicit executor tuning (lookahead depth) for
/// the distributed factorization phase.
///
/// # Panics
/// Panics like [`run_solve`].
pub fn run_solve_on_cfg(
    transport: &impl Transport,
    a: &Matrix,
    b: &[f64],
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
    kind: SolveKind,
    cfg: ExecConfig,
) -> Result<(Vec<f64>, ExecReport), ExecError> {
    let n = nb * r;
    assert_eq!(a.shape(), (n, n), "run_solve: matrix size mismatch");
    assert_eq!(b.len(), n, "run_solve: rhs length mismatch");
    let bm = Matrix::from_fn(n, 1, |i, _| b[i]);
    match kind {
        SolveKind::Lu => {
            let (f, report) = crate::lu::run_lu_on_cfg(transport, a, dist, nb, r, weights, cfg)?;
            let y = solve_lower(&f, &bm, true);
            let x = solve_upper(&f, &y);
            Ok(((0..n).map(|i| x[(i, 0)]).collect(), report))
        }
        SolveKind::Cholesky => {
            let (l, report) =
                crate::cholesky::run_cholesky_on_cfg(transport, a, dist, nb, r, weights, cfg)?;
            let y = solve_lower(&l, &bm, false);
            let x = solve_upper(&l.transpose(), &y);
            Ok(((0..n).map(|i| x[(i, 0)]).collect(), report))
        }
    }
}

/// Max-norm residual `|A x - b|_inf` — the caller-side check.
pub fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = hetgrid_linalg::gemm::matvec(a, x);
    ax.iter()
        .zip(b)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_core::{exact, Arrangement};
    use hetgrid_dist::{BlockCyclic, PanelDist, PanelOrdering};
    use hetgrid_linalg::gemm::{matmul, matvec};

    fn dominant(n: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(n, n, |i, j| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            if i == j {
                v + 2.0 * n as f64
            } else {
                v
            }
        })
    }

    fn spd(n: usize, seed: u64) -> Matrix {
        let b = dominant(n, seed);
        let mut a = matmul(&b.transpose(), &b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn lu_solve_on_panel_layout() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let dist = PanelDist::from_allocation(&arr, &sol.alloc, 4, 4, PanelOrdering::Interleaved);
        let nb = 6;
        let r = 3;
        let a = dominant(nb * r, 0x50);
        let x0: Vec<f64> = (0..nb * r).map(|i| (i as f64 * 0.31).cos()).collect();
        let b = matvec(&a, &x0);
        let w = crate::store::slowdown_weights(&arr);
        let (x, _) = run_solve(&a, &b, &dist, nb, r, &w, SolveKind::Lu).unwrap();
        for i in 0..nb * r {
            assert!(
                (x[i] - x0[i]).abs() < 1e-7,
                "x[{}] = {} != {}",
                i,
                x[i],
                x0[i]
            );
        }
        assert!(residual(&a, &x, &b) < 1e-7);
    }

    #[test]
    fn cholesky_solve_on_cyclic_layout() {
        let dist = BlockCyclic::new(2, 2);
        let nb = 4;
        let r = 3;
        let a = spd(nb * r, 0x51);
        let x0: Vec<f64> = (0..nb * r).map(|i| (i % 5) as f64 - 2.0).collect();
        let b = matvec(&a, &x0);
        let (x, report) = run_solve(
            &a,
            &b,
            &dist,
            nb,
            r,
            &vec![vec![1; 2]; 2],
            SolveKind::Cholesky,
        )
        .unwrap();
        for i in 0..nb * r {
            assert!((x[i] - x0[i]).abs() < 1e-6);
        }
        assert!(report.total_messages() > 0);
    }

    #[test]
    fn residual_metric() {
        let a = Matrix::identity(3);
        assert_eq!(residual(&a, &[1.0, 2.0, 3.0], &[1.0, 2.0, 2.5]), 0.5);
    }
}
