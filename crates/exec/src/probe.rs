//! Per-worker observability probe for the executor kernels.
//!
//! A [`Probe`] is created once per worker thread and is `None` while
//! both tracing export and the flight recorder are off
//! ([`hetgrid_obs::trace::active`]), so an uninstrumented run pays
//! exactly one relaxed atomic load per worker. When active it owns:
//!
//! * this processor's timeline track `P(i,j)` (1-based, matching
//!   `hetgrid_sim::trace::grid_labels`) for per-step compute/broadcast
//!   spans;
//! * the per-processor counters `exec.p{i}_{j}.msgs` /
//!   `exec.p{i}_{j}.work` — the obs-layer mirror of the
//!   [`crate::store::ExecReport`] tables, cross-checked against
//!   `hetgrid_sim::counts` by the harness differential oracle;
//! * lazily created per-edge state: a track `P(i,j) -> P(k,l)` that
//!   receives one instant event per message, and the counters
//!   `exec.edge.p{i}_{j}.p{k}_{l}.msgs` / `.bytes`.
//!
//! Handles are resolved once (per worker / per first message on an
//! edge), never per event.

use hetgrid_obs::chrome::Arg;
use hetgrid_obs::metrics::{Counter, Histogram};
use hetgrid_obs::trace::{self, SpanGuard, TrackId};

/// Compute-chunk duration buckets, microseconds.
const STEP_US_BOUNDS: [f64; 6] = [10.0, 100.0, 1e3, 1e4, 1e5, 1e6];

/// Realized lookahead-depth buckets: the `.5` edges put each integer
/// step distance (0, 1, 2, 3, 4+) in its own bucket.
const DEPTH_BOUNDS: [f64; 5] = [0.5, 1.5, 2.5, 3.5, 7.5];

pub(crate) struct Probe {
    track: TrackId,
    msgs: Counter,
    step_us: Histogram,
    work: Counter,
    stalls: Counter,
    depth: Histogram,
    /// Per-edge state, indexed by destination linear id, interned on
    /// the first message along that edge.
    edges: Vec<Option<EdgeProbe>>,
    me: (usize, usize),
    q: usize,
}

struct EdgeProbe {
    track: TrackId,
    msgs: Counter,
    bytes: Counter,
}

impl Probe {
    /// The probe for grid position `(i, j)` on a `p x q` grid, or
    /// `None` while neither tracing export nor the flight recorder is
    /// on (spans recorded while only the flight bit is set go to the
    /// crash ring, not the export buffer).
    pub fn new((i, j): (usize, usize), (p, q): (usize, usize)) -> Option<Probe> {
        if !trace::active() {
            return None;
        }
        let m = hetgrid_obs::metrics();
        Some(Probe {
            track: trace::track(&format!("P({},{})", i + 1, j + 1)),
            msgs: m.counter(&format!("exec.p{i}_{j}.msgs")),
            work: m.counter(&format!("exec.p{i}_{j}.work")),
            stalls: m.counter(&format!("exec.p{i}_{j}.stalls")),
            step_us: m.histogram("exec.step.compute_us", &STEP_US_BOUNDS),
            depth: m.histogram("exec.lookahead.depth", &DEPTH_BOUNDS),
            edges: (0..p * q).map(|_| None).collect(),
            me: (i, j),
            q,
        })
    }

    /// Opens a span on this processor's track.
    pub fn span(&self, name: String) -> SpanGuard {
        trace::span_at(self.track, name)
    }

    /// Records one message of `bytes` payload bytes to `dest` at step
    /// `step`: per-processor and per-edge counters, plus an instant
    /// event on the edge's own track.
    pub fn sent(&mut self, dest: usize, step: usize, bytes: u64) {
        self.msgs.inc();
        let (si, sj) = self.me;
        let q = self.q;
        let edge = self.edges[dest].get_or_insert_with(|| {
            let (di, dj) = (dest / q, dest % q);
            let m = hetgrid_obs::metrics();
            EdgeProbe {
                track: trace::track(&format!(
                    "P({},{}) -> P({},{})",
                    si + 1,
                    sj + 1,
                    di + 1,
                    dj + 1
                )),
                msgs: m.counter(&format!("exec.edge.p{si}_{sj}.p{di}_{dj}.msgs")),
                bytes: m.counter(&format!("exec.edge.p{si}_{sj}.p{di}_{dj}.bytes")),
            }
        });
        edge.msgs.inc();
        edge.bytes.add(bytes);
        trace::instant_with(
            edge.track,
            "msg".to_string(),
            vec![("step", Arg::U64(step as u64)), ("bytes", Arg::U64(bytes))],
        );
    }

    /// Records one compute chunk's duration in the
    /// `exec.step.compute_us` histogram.
    pub fn step_done(&self, dur_seconds: f64) {
        self.step_us.observe(dur_seconds * 1e6);
    }

    /// Records the realized lookahead depth (step distance from the
    /// window front) of one scheduled action.
    pub fn depth(&self, d: u64) {
        self.depth.observe(d as f64);
    }

    /// Publishes the worker's total weighted work, its scheduler stall
    /// count, and its buffer-pool hit/miss totals (the pool counters
    /// are process-global, summed across workers), refreshes the
    /// quantile gauges derived from the shared histograms, then
    /// flushes this thread's trace buffer (the worker is about to
    /// exit).
    pub fn finish(&self, total_units: u64, stalls: u64, pool_hits: u64, pool_misses: u64) {
        self.work.add(total_units);
        self.stalls.add(stalls);
        let m = hetgrid_obs::metrics();
        m.counter("exec.pool.hits").add(pool_hits);
        m.counter("exec.pool.misses").add(pool_misses);
        // Interpolated quantiles as gauges: `hetgrid top` and the
        // metrics delta read p50/p95/p99 directly instead of
        // re-deriving them from bucket counts. Last finisher wins,
        // which is fine — the histograms are process-global, so every
        // worker computes the same totals at the end of a run.
        for (hist, family) in [
            (&self.step_us, "exec.step.compute_us"),
            (&self.depth, "exec.lookahead.depth"),
        ] {
            if hist.count() == 0 {
                continue;
            }
            for (tag, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                m.gauge(&format!("{family}.{tag}")).set(hist.quantile(q));
            }
        }
        trace::flush_thread();
    }
}
