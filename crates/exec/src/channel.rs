//! A minimal unbounded MPMC channel with clonable senders *and*
//! receivers — the subset of `crossbeam::channel` the executor needs,
//! implemented on `std` primitives because the build environment is
//! offline.
//!
//! Semantics match crossbeam where the executor relies on them:
//!
//! * [`Sender::send`] fails only when every receiver is gone;
//! * [`Receiver::recv`] blocks until a message arrives and fails only
//!   when the channel is empty and every sender is gone;
//! * dropping the last sender wakes all blocked receivers so shutdown
//!   cannot deadlock.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cv: Condvar::new(),
    });
    (Sender(shared.clone()), Receiver(shared))
}

/// Sending half; clonable.
pub struct Sender<T>(Arc<Shared<T>>);

/// Receiving half; clonable (all clones drain the same queue).
pub struct Receiver<T>(Arc<Shared<T>>);

/// The message could not be delivered: all receivers are gone. Carries
/// the undelivered message back, like crossbeam's error.
pub struct SendError<T>(pub T);

/// The channel is empty and all senders are gone.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl<T> Sender<T> {
    /// Enqueues `value`, failing only if every receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.0.state.lock().expect("channel poisoned");
        if st.receivers == 0 {
            return Err(SendError(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.0.cv.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Blocks for the next message; fails when the channel is drained
    /// and every sender was dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.0.state.lock().expect("channel poisoned");
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.0.cv.wait(st).expect("channel poisoned");
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().expect("channel poisoned").senders += 1;
        Sender(self.0.clone())
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().expect("channel poisoned").receivers += 1;
        Receiver(self.0.clone())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().expect("channel poisoned");
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // Wake every blocked receiver so it can observe shutdown.
            self.0.cv.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.0.state.lock().expect("channel poisoned").receivers -= 1;
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a channel with no receivers")
    }
}

impl<T> std::error::Error for SendError<T> {}

impl fmt::Debug for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RecvError")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty channel with no senders")
    }
}

impl std::error::Error for RecvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let n = 1000u64;
        let producer = {
            let tx = tx.clone();
            thread::spawn(move || {
                for i in 0..n {
                    tx.send(i).unwrap();
                }
            })
        };
        drop(tx);
        let mut sum = 0u64;
        while let Ok(v) = rx.recv() {
            sum += v;
        }
        producer.join().unwrap();
        assert_eq!(sum, n * (n - 1) / 2);
    }

    #[test]
    fn cloned_receivers_partition_messages() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        let h1 = thread::spawn(move || {
            let mut got = 0usize;
            while rx1.recv().is_ok() {
                got += 1;
            }
            got
        });
        let h2 = thread::spawn(move || {
            let mut got = 0usize;
            while rx2.recv().is_ok() {
                got += 1;
            }
            got
        });
        for i in 0..500 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total = h1.join().unwrap() + h2.join().unwrap();
        assert_eq!(total, 500);
    }
}
