//! A minimal unbounded MPMC channel with clonable senders *and*
//! receivers — the subset of `crossbeam::channel` the executor needs,
//! implemented on `std` primitives because the build environment is
//! offline.
//!
//! Semantics match crossbeam where the executor relies on them:
//!
//! * [`Sender::send`] fails only when every receiver is gone (or the
//!   channel was [poisoned](Sender::poison));
//! * [`Receiver::recv`] blocks until a message arrives and fails only
//!   when the channel is empty and every sender is gone, or the channel
//!   was poisoned;
//! * dropping the last sender wakes all blocked receivers so shutdown
//!   cannot deadlock.
//!
//! Every operation recovers from mutex poisoning (a panicking thread
//! holding the lock) instead of propagating it: the protected state is
//! a plain queue whose invariants hold between operations, so the
//! "poisoned" marker carries no information worth dying for. The
//! *channel-level* poison ([`Sender::poison`]) is different and
//! deliberate: it marks the whole conversation as doomed so blocked
//! peers fail fast with a typed error instead of deadlocking when one
//! participant of a multi-party run has dropped out early.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    /// Set by [`Sender::poison`]: the conversation is doomed; every
    /// subsequent send and recv fails immediately.
    poisoned: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

impl<T> Shared<T> {
    /// Locks the state, recovering from mutex poisoning (see module
    /// docs: the queue's invariants hold between operations).
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            poisoned: false,
        }),
        cv: Condvar::new(),
    });
    (Sender(shared.clone()), Receiver(shared))
}

/// Sending half; clonable.
pub struct Sender<T>(Arc<Shared<T>>);

/// Receiving half; clonable (all clones drain the same queue).
pub struct Receiver<T>(Arc<Shared<T>>);

/// The message could not be delivered: all receivers are gone (or the
/// channel was poisoned). Carries the undelivered message back, like
/// crossbeam's error.
pub struct SendError<T>(pub T);

/// The channel is empty and all senders are gone, or the channel was
/// poisoned.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl<T> Sender<T> {
    /// Enqueues `value`, failing only if every receiver was dropped or
    /// the channel was poisoned.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.0.lock();
        if st.receivers == 0 || st.poisoned {
            return Err(SendError(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.0.cv.notify_one();
        Ok(())
    }

    /// Marks the channel as doomed: every blocked and future `recv`
    /// fails immediately (queued messages are abandoned), and every
    /// future `send` fails. Used by the executor's abort path so a run
    /// with a dropped participant fails fast with typed errors instead
    /// of deadlocking on messages that will never arrive.
    pub fn poison(&self) {
        let mut st = self.0.lock();
        st.poisoned = true;
        drop(st);
        self.0.cv.notify_all();
    }
}

impl<T> Receiver<T> {
    /// Non-blocking receive: `Ok(Some(v))` if a message was queued,
    /// `Ok(None)` if the channel is currently empty but could still be
    /// refilled, `Err` when the channel is drained and dead (every
    /// sender gone) or poisoned — the same failure condition as
    /// [`recv`](Receiver::recv).
    pub fn try_recv(&self) -> Result<Option<T>, RecvError> {
        let mut st = self.0.lock();
        if st.poisoned {
            return Err(RecvError);
        }
        if let Some(v) = st.queue.pop_front() {
            return Ok(Some(v));
        }
        if st.senders == 0 {
            return Err(RecvError);
        }
        Ok(None)
    }

    /// Blocks for the next message; fails when the channel is drained
    /// and every sender was dropped, or the channel was poisoned.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.0.lock();
        loop {
            if st.poisoned {
                return Err(RecvError);
            }
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.0.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.lock().senders += 1;
        Sender(self.0.clone())
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.lock().receivers += 1;
        Receiver(self.0.clone())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.0.lock();
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // Wake every blocked receiver so it can observe shutdown.
            self.0.cv.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.0.lock().receivers -= 1;
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a channel with no receivers")
    }
}

impl<T> std::error::Error for SendError<T> {}

impl fmt::Debug for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RecvError")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty channel with no senders")
    }
}

impl std::error::Error for RecvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let n = 1000u64;
        let producer = {
            let tx = tx.clone();
            thread::spawn(move || {
                for i in 0..n {
                    tx.send(i).unwrap();
                }
            })
        };
        drop(tx);
        let mut sum = 0u64;
        while let Ok(v) = rx.recv() {
            sum += v;
        }
        producer.join().unwrap();
        assert_eq!(sum, n * (n - 1) / 2);
    }

    #[test]
    fn poison_wakes_blocked_receiver_and_fails_senders() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let waiter = thread::spawn(move || rx.recv());
        // Give the receiver a moment to block, then poison.
        thread::sleep(std::time::Duration::from_millis(10));
        tx.poison();
        assert!(waiter.join().unwrap().is_err(), "poison must wake recv");
        assert!(tx2.send(1).is_err(), "send after poison must fail");
    }

    #[test]
    fn poison_abandons_queued_messages() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        tx.poison();
        assert!(rx.recv().is_err(), "a poisoned run is doomed; fail fast");
    }

    #[test]
    fn cloned_receivers_partition_messages() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        let h1 = thread::spawn(move || {
            let mut got = 0usize;
            while rx1.recv().is_ok() {
                got += 1;
            }
            got
        });
        let h2 = thread::spawn(move || {
            let mut got = 0usize;
            while rx2.recv().is_ok() {
                got += 1;
            }
            got
        });
        for i in 0..500 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total = h1.join().unwrap() + h2.join().unwrap();
        assert_eq!(total, 500);
    }
}
