//! Property tests for the lookahead scheduler: random plans, random
//! message-arrival orders, random window depths — the out-of-order
//! pick must never reorder two conflicting actions, and the
//! per-processor action sets must agree with the plan-level dependency
//! analysis in `hetgrid_plan::deps`.
//!
//! These drive [`pick_action`] and the window bookkeeping directly (a
//! single-processor discrete simulation of `run_steps`' loop), so
//! arrival orders that real channel timing would almost never produce
//! are exercised deterministically.

use crate::cholesky::cholesky_actions;
use crate::lu::lu_actions;
use crate::mm::mm_actions;
use crate::qr::qr_actions;
use crate::step::{conflicts, pick_action, Action, MsgKey};
use hetgrid_core::{exact, Arrangement};
use hetgrid_dist::{BlockCyclic, BlockDist, PanelDist, PanelOrdering};
use hetgrid_plan::deps::{step_access, Operand};
use hetgrid_plan::Plan;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashSet, VecDeque};

const KERNELS: [&str; 4] = ["mm", "lu", "cholesky", "qr"];

fn make_dist(choice: usize, nb: usize) -> Box<dyn BlockDist + Sync> {
    match choice {
        0 => Box::new(BlockCyclic::new(2, 2)),
        1 => Box::new(BlockCyclic::new(2, 3)),
        _ => {
            let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
            let sol = exact::solve_arrangement(&arr);
            Box::new(PanelDist::from_allocation(
                &arr,
                &sol.alloc,
                nb,
                nb,
                PanelOrdering::Interleaved,
            ))
        }
    }
}

fn make_plan(kernel: &str, dist: &(dyn BlockDist + Sync), nb: usize) -> Plan {
    match kernel {
        "mm" => hetgrid_plan::mm_plan(dist, nb),
        "lu" => hetgrid_plan::factor_plan(dist, nb),
        "cholesky" => hetgrid_plan::cholesky_plan(dist, nb),
        "qr" => hetgrid_plan::qr_plan(dist, nb),
        other => panic!("unknown kernel {other}"),
    }
}

fn owned_blocks(
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    my: (usize, usize),
) -> Vec<(usize, usize)> {
    let mut owned: Vec<(usize, usize)> = (0..nb)
        .flat_map(|bi| (0..nb).map(move |bj| (bi, bj)))
        .filter(|&(bi, bj)| dist.owner(bi, bj) == my)
        .collect();
    owned.sort_unstable();
    owned
}

fn proc_actions(
    kernel: &str,
    plan: &Plan,
    k: usize,
    my: (usize, usize),
    owned: &[(usize, usize)],
) -> Vec<Action> {
    let step = &plan.steps[k];
    match kernel {
        "mm" => mm_actions(step, my, owned),
        "lu" => lu_actions(step, my, owned),
        "cholesky" => cholesky_actions(step, my, owned),
        "qr" => qr_actions(step, my),
        other => panic!("unknown kernel {other}"),
    }
}

/// Single-processor replay of the `run_steps` window loop: emit up to
/// the lookahead horizon, execute whatever [`pick_action`] chooses,
/// deliver one pending message (in a shuffled order) when nothing is
/// runnable, retire the front step once its actions finish. Returns the
/// program-order indices in execution order.
///
/// Stops as soon as `stop_front` steps are retired — pass
/// `per_step.len()` for a full run, or a crash frontier to model a
/// processor dying at that retirement beacon (with the lookahead window
/// possibly having executed work past it).
fn simulate(
    per_step: &[Vec<Action>],
    lookahead: usize,
    rng: &mut StdRng,
    stop_front: usize,
) -> Vec<usize> {
    let n = per_step.len();
    // Global program order and each action's index within it.
    let program: Vec<&Action> = per_step.iter().flatten().collect();
    let mut gid_base = vec![0usize; n];
    for k in 1..n {
        gid_base[k] = gid_base[k - 1] + per_step[k - 1].len();
    }
    // Every message any action waits on, in a random arrival order.
    let mut arrivals: Vec<MsgKey> = {
        let mut seen = HashSet::new();
        program
            .iter()
            .flat_map(|a| a.needs.iter().copied())
            .filter(|k| seen.insert(*k))
            .collect()
    };
    for i in (1..arrivals.len()).rev() {
        arrivals.swap(i, rng.gen_range(0..=i));
    }
    let mut arrivals = VecDeque::from(arrivals);

    let mut arrived: HashSet<MsgKey> = HashSet::new();
    let mut win: VecDeque<(Action, bool)> = VecDeque::new();
    let mut gids: VecDeque<usize> = VecDeque::new();
    let (mut emitted, mut front) = (0usize, 0usize);
    let mut order = Vec::new();
    loop {
        while emitted < n && emitted <= front + lookahead {
            for (i, a) in per_step[emitted].iter().enumerate() {
                win.push_back((a.clone(), false));
                gids.push_back(gid_base[emitted] + i);
            }
            emitted += 1;
        }
        if front < n
            && front < stop_front
            && win.iter().filter(|(a, _)| a.step == front).all(|(_, d)| *d)
        {
            let keep: Vec<bool> = win.iter().map(|(a, _)| a.step != front).collect();
            let mut it = keep.iter();
            win.retain(|_| *it.next().unwrap());
            let mut it = keep.iter();
            gids.retain(|_| *it.next().unwrap());
            front += 1;
            continue;
        }
        if front >= n || front >= stop_front {
            break;
        }
        if let Some(i) = pick_action(&win, |key| arrived.contains(key)) {
            win[i].1 = true;
            order.push(gids[i]);
        } else {
            let key = arrivals
                .pop_front()
                .expect("scheduler deadlocked: nothing runnable, no message pending");
            arrived.insert(key);
        }
    }
    if stop_front >= n {
        assert_eq!(order.len(), program.len(), "not every action executed");
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core safety property of the lookahead executor: however
    /// messages arrive and however deep the window, two actions that
    /// touch the same block (and at least one writes it) execute in
    /// program order on their processor. Combined with owner-local
    /// writes this is exactly the bit-exactness argument of
    /// `crate::step`'s module docs.
    #[test]
    fn out_of_order_pick_preserves_hazard_order(
        kernel_idx in 0usize..4,
        dist_choice in 0usize..3,
        nb in 3usize..7,
        lookahead in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let kernel = KERNELS[kernel_idx];
        let dist = make_dist(dist_choice, nb);
        let plan = make_plan(kernel, dist.as_ref(), nb);
        let (p, q) = dist.grid();
        let mut rng = StdRng::seed_from_u64(seed);
        for pi in 0..p {
            for pj in 0..q {
                let my = (pi, pj);
                let owned = owned_blocks(dist.as_ref(), nb, my);
                let per_step: Vec<Vec<Action>> = (0..plan.steps.len())
                    .map(|k| proc_actions(kernel, &plan, k, my, &owned))
                    .collect();
                let order = simulate(&per_step, lookahead, &mut rng, per_step.len());
                let program: Vec<&Action> = per_step.iter().flatten().collect();
                let mut pos = vec![0usize; program.len()];
                for (t, &g) in order.iter().enumerate() {
                    pos[g] = t;
                }
                for i in 0..program.len() {
                    for j in i + 1..program.len() {
                        if conflicts(program[i], program[j]) {
                            prop_assert!(
                                pos[i] < pos[j],
                                "{kernel} p{pi}{pj} depth {lookahead}: action {i} \
                                 ({:?} step {}) ran after conflicting action {j} \
                                 ({:?} step {})",
                                program[i].op, program[i].step,
                                program[j].op, program[j].step,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Crash-point consistency, the property elastic-grid recovery
    /// rests on: run every processor *out of order* until it has
    /// retired `f` steps (the crash beacon), journaling each
    /// matrix-namespace write with its step — the lookahead window will
    /// have executed and journaled work *past* the crash point. Then:
    ///
    /// 1. the journal truncated at the cut (`step < f`) must hold, for
    ///    every block, exactly the last plan-order writer below `f`
    ///    from [`step_access`] — retirement guarantees completeness
    ///    below the cut, the truncation discards the over-execution;
    /// 2. a resumed epoch on a *different* distribution replays steps
    ///    `f..n`: its per-step access sets must equal the original
    ///    plan's (the access pattern is distribution-independent, which
    ///    is what lets recovery swap grids), and no step may ever read
    ///    a block whose restored version is not its last plan-order
    ///    writer — i.e. never a dead, un-restored block and never a
    ///    leaked write from the aborted epoch's future.
    #[test]
    fn crash_cut_restores_exactly_the_plan_state(
        kernel_idx in 0usize..4,
        dist_choice in 0usize..3,
        dist2_choice in 0usize..3,
        nb in 3usize..7,
        lookahead in 0usize..4,
        crash in 0usize..7,
        seed in 0u64..u64::MAX,
    ) {
        let kernel = KERNELS[kernel_idx];
        let dist = make_dist(dist_choice, nb);
        let plan = make_plan(kernel, dist.as_ref(), nb);
        let n = plan.steps.len();
        let f = crash.min(n);
        let (p, q) = dist.grid();
        let mut rng = StdRng::seed_from_u64(seed);

        // Epoch 1: out-of-order execution to the crash beacon.
        let mut journal: std::collections::HashMap<(usize, usize), Vec<usize>> =
            std::collections::HashMap::new();
        for pi in 0..p {
            for pj in 0..q {
                let my = (pi, pj);
                let owned = owned_blocks(dist.as_ref(), nb, my);
                let per_step: Vec<Vec<Action>> = (0..n)
                    .map(|k| proc_actions(kernel, &plan, k, my, &owned))
                    .collect();
                let order = simulate(&per_step, lookahead, &mut rng, f);
                let program: Vec<&Action> = per_step.iter().flatten().collect();
                for &g in &order {
                    for &(ns, bi, bj) in &program[g].writes {
                        if ns == 0 {
                            journal.entry((bi, bj)).or_default().push(program[g].step);
                        }
                    }
                }
            }
        }

        // The last plan-order writer of each block below the cut.
        let mut last_writer: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        for k in 0..f {
            for w in step_access(&plan.steps[k]).writes.iter() {
                if w.op == Operand::C {
                    last_writer.insert(w.block, k);
                }
            }
        }
        for bi in 0..nb {
            for bj in 0..nb {
                let cut = journal
                    .get(&(bi, bj))
                    .and_then(|v| v.iter().filter(|&&s| s < f).max())
                    .copied();
                prop_assert_eq!(
                    cut,
                    last_writer.get(&(bi, bj)).copied(),
                    "{} crash at {}: cut version of block ({},{}) diverges from the \
                     plan's last writer below the cut",
                    kernel, f, bi, bj
                );
            }
        }

        // Epoch 2: resume at `f` on a re-solved distribution.
        let dist2 = make_dist(dist2_choice, nb);
        let plan2 = make_plan(kernel, dist2.as_ref(), nb);
        prop_assert_eq!(plan2.steps.len(), n, "{} plans disagree on step count", kernel);
        let mut version = last_writer; // block -> step of its live version
        for k in f..n {
            let acc1 = step_access(&plan.steps[k]);
            let acc2 = step_access(&plan2.steps[k]);
            let w1: BTreeSet<_> = acc1.writes.iter().filter(|x| x.op == Operand::C).map(|x| x.block).collect();
            let w2: BTreeSet<_> = acc2.writes.iter().filter(|x| x.op == Operand::C).map(|x| x.block).collect();
            prop_assert_eq!(&w1, &w2, "{} step {}: write set depends on the distribution", kernel, k);
            let r1: BTreeSet<_> = acc1.reads.iter().filter(|x| x.op == Operand::C).map(|x| x.block).collect();
            let r2: BTreeSet<_> = acc2.reads.iter().filter(|x| x.op == Operand::C).map(|x| x.block).collect();
            prop_assert_eq!(&r1, &r2, "{} step {}: read set depends on the distribution", kernel, k);
            for b in &r2 {
                // A read in the resumed epoch observes either the
                // restored cut (< f), a version this epoch recomputed
                // ([f, k)), or the scattered base (never written) —
                // and always the *latest* plan-order writer below k.
                let live = version.get(b).copied();
                prop_assert!(
                    live.is_none() || live.unwrap() < k,
                    "{} step {}: read of ({},{}) observes a future version {:?}",
                    kernel, k, b.0, b.1, live
                );
            }
            for b in &w2 {
                version.insert(*b, k);
            }
        }
    }
}

/// Cross-checks the per-processor action emitters against the
/// plan-level dependency analysis: per step, the union of action writes
/// in the matrix namespace over all processors is exactly the step's
/// write set from [`step_access`], no block is written by two
/// processors, and every tracked read is a block the step also writes
/// (the IR's writes are read-modify-writes).
#[test]
fn actions_agree_with_plan_deps() {
    for kernel in KERNELS {
        for dist_choice in 0..3 {
            let nb = 5;
            let dist = make_dist(dist_choice, nb);
            let plan = make_plan(kernel, dist.as_ref(), nb);
            let (p, q) = dist.grid();
            for (k, step) in plan.steps.iter().enumerate() {
                let acc = step_access(step);
                let want: BTreeSet<(usize, usize)> = acc
                    .writes
                    .iter()
                    .filter(|w| w.op == Operand::C)
                    .map(|w| w.block)
                    .collect();
                let mut got = BTreeSet::new();
                for pi in 0..p {
                    for pj in 0..q {
                        let my = (pi, pj);
                        let owned = owned_blocks(dist.as_ref(), nb, my);
                        for a in proc_actions(kernel, &plan, k, my, &owned) {
                            for &(ns, bi, bj) in &a.writes {
                                if ns == 0 {
                                    assert!(
                                        got.insert((bi, bj)),
                                        "{kernel} step {k}: block ({bi},{bj}) \
                                         written by two actions/processors"
                                    );
                                }
                            }
                            for &(ns, bi, bj) in &a.reads {
                                if ns == 0 {
                                    assert!(
                                        want.contains(&(bi, bj)),
                                        "{kernel} step {k}: read ({bi},{bj}) \
                                         outside the step's access set"
                                    );
                                }
                            }
                        }
                    }
                }
                assert_eq!(
                    got, want,
                    "{kernel} step {k} (dist {dist_choice}): action writes \
                     disagree with hetgrid_plan::deps::step_access"
                );
            }
        }
    }
}
