//! Threaded master-worker matrix multiplication: the
//! [`hetgrid_plan::star_mm_plan`] step stream interpreted over real
//! threads. Processor 0 is the master — it holds every `A`/`B` block,
//! feeds workers over its one-port link, and collects every finished
//! `C` block; processors `1..=workers` are bounded-memory workers
//! running the maximum-reuse streaming schedule.
//!
//! The platform constraints ride the ordinary action-scheduling
//! machinery as pseudo-resources (see [`crate::step`]):
//!
//! * **one-port** — every master [`Op::StarFeed`] and
//!   [`Op::StarRetire`] writes `(4, 0, 0)`, so master transfers
//!   serialize in plan order no matter the lookahead depth;
//! * **bounded memory** — every worker [`Op::StarLoad`] and
//!   [`Op::StarEvict`] writes `(5, 0, 0)`, so residency transitions
//!   stay in program order and the runtime high-water mark equals the
//!   plan fold (`hetgrid_sim::counts::star_residency_peaks`); the
//!   worker additionally asserts `resident <= worker_mem` after every
//!   load — the memory-bound oracle at its sharpest;
//! * **bit-exactness** — all updates of a `C` block run on one worker
//!   and conflict pairwise on its resident-copy resource, so they
//!   execute in ascending-`k` program order at any lookahead depth.

use crate::pool::PoolClone;
use crate::step::{
    check_weights, gather_result, run_grid, run_steps, Action, Courier, ExecConfig, Op, StepInterp,
    WorkClock,
};
use crate::store::{BlockStore, ExecReport};
use crate::transport::{ChannelTransport, Closed, ExecError, Transport};
use hetgrid_core::Topology;
use hetgrid_linalg::gemm::gemm;
use hetgrid_linalg::Matrix;
use hetgrid_plan::{LoadSrc, Mat, Plan, Step};
use std::time::Instant;

/// Message tags: a fed input block (master to worker) and a returned
/// result block (worker to master). Every star step has a unique plan
/// index, so `(step, tag, block)` routing keys never collide.
const TAG_FEED: u8 = 0;
const TAG_RET: u8 = 1;

/// The master's one-port link: written by every master transfer action.
const PORT: (u8, usize, usize) = (4, 0, 0);
/// A worker's memory budget: written by every residency transition.
const MEM: (u8, usize, usize) = (5, 0, 0);

fn mat_ns(mat: Mat) -> u8 {
    match mat {
        Mat::C => 0,
        Mat::A => 1,
        Mat::B => 2,
    }
}

/// Runs `C(mb x nb blocks) = A(mb x kb) * B(kb x nb)` in `r`-sized
/// blocks on a [`Topology::Star`]: the master scatters nothing — it
/// keeps both inputs whole and streams blocks to the workers per the
/// maximum-reuse plan. `weights` is the `1 x (workers + 1)` slowdown
/// table (entry 0, the master, performs no block work).
///
/// Returns the gathered result and per-processor measurements, or a
/// typed [`ExecError`] if a worker dropped out mid-run.
///
/// # Panics
/// Panics if `topo` is not a star, matrix sizes do not match
/// `dims * r`, or the weights table does not match `1 x (workers + 1)`.
pub fn run_star_mm(
    a: &Matrix,
    b: &Matrix,
    topo: &Topology,
    dims: (usize, usize, usize),
    r: usize,
    weights: &[Vec<u64>],
) -> Result<(Matrix, ExecReport), ExecError> {
    run_star_mm_on(&ChannelTransport, a, b, topo, dims, r, weights)
}

/// [`run_star_mm`] over an explicit [`Transport`] (the harness injects
/// its fault-injecting virtual transport here).
///
/// # Panics
/// Panics on size mismatches, like [`run_star_mm`].
pub fn run_star_mm_on(
    transport: &impl Transport,
    a: &Matrix,
    b: &Matrix,
    topo: &Topology,
    dims: (usize, usize, usize),
    r: usize,
    weights: &[Vec<u64>],
) -> Result<(Matrix, ExecReport), ExecError> {
    run_star_mm_on_cfg(
        transport,
        a,
        b,
        topo,
        dims,
        r,
        weights,
        ExecConfig::default(),
    )
}

/// [`run_star_mm_on`] with explicit executor tuning (lookahead depth).
///
/// # Panics
/// Panics on size mismatches, like [`run_star_mm`].
pub fn run_star_mm_on_cfg(
    transport: &impl Transport,
    a: &Matrix,
    b: &Matrix,
    topo: &Topology,
    (mb, nb, kb): (usize, usize, usize),
    r: usize,
    weights: &[Vec<u64>],
    cfg: ExecConfig,
) -> Result<(Matrix, ExecReport), ExecError> {
    let Topology::Star {
        workers,
        worker_mem,
        ..
    } = *topo
    else {
        panic!("run_star_mm: not a star topology: {topo}")
    };
    let shape = (1, workers + 1);
    check_weights(weights, shape, "run_star_mm");
    assert_eq!(a.shape(), (mb * r, kb * r), "run_star_mm: A shape mismatch");
    assert_eq!(b.shape(), (kb * r, nb * r), "run_star_mm: B shape mismatch");
    let plan = hetgrid_plan::star_mm_plan(topo, (mb, nb, kb));
    // The master keeps both inputs whole, keyed by block coordinates.
    let mut ma = BlockStore::new();
    for bi in 0..mb {
        for bk in 0..kb {
            ma.insert((bi, bk), a.block(bi * r, bk * r, r, r));
        }
    }
    let mut mbk = BlockStore::new();
    for bk in 0..kb {
        for bj in 0..nb {
            mbk.insert((bk, bj), b.block(bk * r, bj * r, r, r));
        }
    }
    let block_bytes = (r * r * std::mem::size_of::<f64>()) as u64;

    let (stores, report) = run_grid(transport, shape, weights, |me, courier, clock| {
        if me == 0 {
            let mut interp = StarMaster {
                plan: &plan,
                a: &ma,
                b: &mbk,
                c: BlockStore::new(),
                block_bytes,
            };
            run_steps(&mut interp, courier, clock, cfg.lookahead, 0, None)?;
            Ok(interp.c)
        } else {
            let mut interp = StarWorker {
                plan: &plan,
                me,
                worker_mem,
                r,
                resident: [BlockStore::new(), BlockStore::new(), BlockStore::new()],
                scratch: Matrix::zeros(r, r),
                block_bytes,
            };
            run_steps(&mut interp, courier, clock, cfg.lookahead, 0, None)?;
            // Every resident block was evicted; the result lives with
            // the master.
            assert!(
                interp.resident.iter().all(BlockStore::is_empty),
                "run_star_mm: worker {me} finished with resident blocks"
            );
            Ok(BlockStore::new())
        }
    })?;
    let c = gather_result(stores, (mb, nb), r, "run_star_mm");
    Ok((c, report))
}

/// One processor's actions for a star step — at most one, since the
/// plan is fine-grained. The master acts on every master-sourced load
/// (a feed) and every send-back evict (a retire); worker `w` acts on
/// its own loads, computes and evicts; everyone else skips the step.
pub(crate) fn star_actions(step: &Step, me: usize) -> Vec<Action> {
    let mut out = Vec::new();
    match *step {
        Step::Load {
            k,
            worker,
            mat,
            block,
            src,
        } => {
            if me == 0 && src == LoadSrc::Master {
                out.push(Action {
                    step: k,
                    op: Op::StarFeed,
                    blk: block,
                    crit: true,
                    needs: vec![],
                    reads: vec![],
                    writes: vec![PORT],
                });
            } else if me == worker {
                out.push(Action {
                    step: k,
                    op: Op::StarLoad,
                    blk: block,
                    crit: false,
                    needs: if src == LoadSrc::Master {
                        vec![(k, TAG_FEED, block)]
                    } else {
                        vec![]
                    },
                    reads: vec![],
                    writes: vec![(mat_ns(mat), block.0, block.1), MEM],
                });
            }
        }
        Step::Compute { k, worker, c, a, b } => {
            if me == worker {
                out.push(Action {
                    step: k,
                    op: Op::StarCompute,
                    blk: c,
                    crit: false,
                    needs: vec![],
                    reads: vec![(mat_ns(Mat::A), a.0, a.1), (mat_ns(Mat::B), b.0, b.1)],
                    writes: vec![(mat_ns(Mat::C), c.0, c.1)],
                });
            }
        }
        Step::Evict {
            k,
            worker,
            mat,
            block,
            send_back,
        } => {
            if me == 0 && send_back {
                out.push(Action {
                    step: k,
                    op: Op::StarRetire,
                    blk: block,
                    crit: false,
                    needs: vec![(k, TAG_RET, block)],
                    reads: vec![],
                    writes: vec![PORT, (0, block.0, block.1)],
                });
            } else if me == worker {
                out.push(Action {
                    step: k,
                    op: Op::StarEvict,
                    blk: block,
                    crit: send_back,
                    needs: vec![],
                    reads: vec![],
                    writes: vec![(mat_ns(mat), block.0, block.1), MEM],
                });
            }
        }
        _ => panic!("run_star_mm: grid step in star plan"),
    }
    out
}

/// The master: owns the whole `A` and `B`, answers feeds in plan order
/// over the one-port link, and accretes returned `C` blocks.
struct StarMaster<'a> {
    plan: &'a Plan,
    a: &'a BlockStore,
    b: &'a BlockStore,
    c: BlockStore,
    block_bytes: u64,
}

impl StepInterp for StarMaster<'_> {
    type P = Matrix;

    fn n_steps(&self) -> usize {
        self.plan.steps.len()
    }

    fn emit(&self, k: usize, out: &mut Vec<Action>) {
        out.extend(star_actions(&self.plan.steps[k], 0));
    }

    fn execute(
        &mut self,
        action: &Action,
        courier: &mut Courier<Matrix>,
        _clock: &mut WorkClock,
    ) -> Result<(), Closed> {
        match action.op {
            Op::StarFeed => {
                let Step::Load {
                    worker, mat, block, ..
                } = self.plan.steps[action.step]
                else {
                    unreachable!("emit checked the step kind")
                };
                let store = match mat {
                    Mat::A => self.a,
                    Mat::B => self.b,
                    Mat::C => unreachable!("the master never feeds C"),
                };
                let payload = store[&block].pool_clone(courier.pool_mut());
                courier.send(
                    (0, worker),
                    action.step,
                    TAG_FEED,
                    block,
                    payload,
                    self.block_bytes,
                )?;
            }
            Op::StarRetire => {
                let done = courier.take(action.step, TAG_RET, action.blk)?;
                let stale = self.c.insert(action.blk, done);
                debug_assert!(stale.is_none(), "C block returned twice");
            }
            op => unreachable!("non-master action {op:?} on the star master"),
        }
        Ok(())
    }
}

/// A worker: at most `worker_mem` resident blocks (indexed by
/// namespace: C, A, B), streaming the maximum-reuse schedule.
struct StarWorker<'a> {
    plan: &'a Plan,
    me: usize,
    worker_mem: usize,
    r: usize,
    /// Resident copies by [`mat_ns`] namespace: `[C, A, B]`.
    resident: [BlockStore; 3],
    scratch: Matrix,
    block_bytes: u64,
}

impl StarWorker<'_> {
    fn resident_count(&self) -> usize {
        self.resident.iter().map(BlockStore::len).sum()
    }
}

impl StepInterp for StarWorker<'_> {
    type P = Matrix;

    fn n_steps(&self) -> usize {
        self.plan.steps.len()
    }

    fn emit(&self, k: usize, out: &mut Vec<Action>) {
        out.extend(star_actions(&self.plan.steps[k], self.me));
    }

    fn execute(
        &mut self,
        action: &Action,
        courier: &mut Courier<Matrix>,
        clock: &mut WorkClock,
    ) -> Result<(), Closed> {
        match action.op {
            Op::StarLoad => {
                let Step::Load {
                    mat, block, src, ..
                } = self.plan.steps[action.step]
                else {
                    unreachable!("emit checked the step kind")
                };
                let data = match src {
                    LoadSrc::Master => courier.take(action.step, TAG_FEED, block)?,
                    LoadSrc::Zero => Matrix::zeros(self.r, self.r),
                };
                self.resident[mat_ns(mat) as usize].insert(block, data);
                // The memory-bound oracle's runtime half: residency
                // transitions are program-ordered (resource MEM), so
                // this can only trip if the plan itself is over budget.
                assert!(
                    self.resident_count() <= self.worker_mem,
                    "run_star_mm: worker {} exceeded worker_mem {} at step {}",
                    self.me,
                    self.worker_mem,
                    action.step
                );
            }
            Op::StarCompute => {
                let Step::Compute { c, a, b, .. } = self.plan.steps[action.step] else {
                    unreachable!("emit checked the step kind")
                };
                let t0 = Instant::now();
                let [rc, ra, rb] = &mut self.resident;
                let ablk = &ra[&a];
                let bblk = &rb[&b];
                let cblk = rc.get_mut(&c).expect("resident C block missing");
                gemm(1.0, ablk, bblk, 1.0, cblk);
                for _ in 1..clock.weight() {
                    gemm(1.0, ablk, bblk, 0.0, &mut self.scratch);
                }
                clock.charge(1);
                clock.add_busy(t0.elapsed().as_secs_f64());
                courier.step_done(t0.elapsed().as_secs_f64());
            }
            Op::StarEvict => {
                let Step::Evict {
                    mat,
                    block,
                    send_back,
                    ..
                } = self.plan.steps[action.step]
                else {
                    unreachable!("emit checked the step kind")
                };
                let data = self.resident[mat_ns(mat) as usize]
                    .remove(&block)
                    .expect("evicting a non-resident block");
                if send_back {
                    courier.send((0, 0), action.step, TAG_RET, block, data, self.block_bytes)?;
                } else {
                    data.reclaim(courier.pool_mut());
                }
            }
            op => unreachable!("non-worker action {op:?} on a star worker"),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_linalg::gemm::matmul;

    fn star(workers: usize, worker_mem: usize) -> Topology {
        Topology::Star {
            workers,
            worker_mem,
            master_bw: 1.0,
        }
    }

    fn test_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn uniform(n: usize) -> Vec<Vec<u64>> {
        vec![vec![1; n]]
    }

    #[test]
    fn star_mm_matches_sequential() {
        let (mb, nb, kb) = (4, 3, 3);
        let r = 3;
        let a = test_matrix(mb * r, kb * r, 1);
        let b = test_matrix(kb * r, nb * r, 2);
        let (c, report) = run_star_mm(&a, &b, &star(2, 7), (mb, nb, kb), r, &uniform(3)).unwrap();
        assert!(c.approx_eq(&matmul(&a, &b), 1e-10));
        assert_eq!(
            report.work_units.iter().flatten().sum::<u64>() as usize,
            mb * nb * kb
        );
        assert_eq!(report.work_units[0][0], 0, "the master computes nothing");
    }

    #[test]
    fn star_mm_message_counts_match_the_plan() {
        let topo = star(3, 7);
        let dims = (5, 4, 3);
        let r = 2;
        let a = test_matrix(dims.0 * r, dims.2 * r, 3);
        let b = test_matrix(dims.2 * r, dims.1 * r, 4);
        let (_, report) = run_star_mm(&a, &b, &topo, dims, r, &uniform(4)).unwrap();
        let plan = hetgrid_plan::star_mm_plan(&topo, dims);
        let mut feeds = 0u64;
        let mut returns = [0u64; 4];
        for step in &plan.steps {
            match *step {
                Step::Load {
                    src: LoadSrc::Master,
                    ..
                } => feeds += 1,
                Step::Evict {
                    worker,
                    send_back: true,
                    ..
                } => returns[worker] += 1,
                _ => {}
            }
        }
        assert_eq!(report.messages_sent[0][0], feeds);
        for w in 1..4 {
            assert_eq!(report.messages_sent[0][w], returns[w], "worker {w}");
        }
    }

    #[test]
    fn star_mm_minimal_memory_single_worker() {
        // worker_mem = 3 is the smallest legal budget: mu = 1, fully
        // serial streaming through one worker.
        let (mb, nb, kb) = (3, 2, 2);
        let r = 2;
        let a = test_matrix(mb * r, kb * r, 5);
        let b = test_matrix(kb * r, nb * r, 6);
        let (c, _) = run_star_mm(&a, &b, &star(1, 3), (mb, nb, kb), r, &uniform(2)).unwrap();
        assert!(c.approx_eq(&matmul(&a, &b), 1e-10));
    }

    #[test]
    fn star_mm_heterogeneous_weights_scale_work() {
        let (mb, nb, kb) = (4, 4, 2);
        let r = 2;
        let a = test_matrix(mb * r, kb * r, 7);
        let b = test_matrix(kb * r, nb * r, 8);
        let weights = vec![vec![1, 1, 3]];
        let (c, report) = run_star_mm(&a, &b, &star(2, 7), (mb, nb, kb), r, &weights).unwrap();
        assert!(c.approx_eq(&matmul(&a, &b), 1e-10));
        let plan = hetgrid_plan::star_mm_plan(&star(2, 7), (mb, nb, kb));
        let mut expect = vec![0u64; 3];
        for step in &plan.steps {
            if let Step::Compute { worker, .. } = *step {
                expect[worker] += weights[0][worker];
            }
        }
        assert_eq!(report.work_units[0], expect);
    }

    #[test]
    fn lookahead_is_bit_exact_with_in_order() {
        let (mb, nb, kb) = (5, 4, 3);
        let r = 2;
        let a = test_matrix(mb * r, kb * r, 11);
        let b = test_matrix(kb * r, nb * r, 12);
        let t = ChannelTransport;
        let run = |lookahead| {
            run_star_mm_on_cfg(
                &t,
                &a,
                &b,
                &star(2, 7),
                (mb, nb, kb),
                r,
                &uniform(3),
                ExecConfig { lookahead },
            )
            .unwrap()
            .0
        };
        let inorder = run(0);
        for depth in [1, 4] {
            assert!(
                run(depth).approx_eq(&inorder, 0.0),
                "depth {depth} diverged from in-order"
            );
        }
    }

    #[test]
    fn star_matches_grid_mm_numerics() {
        // Same inputs through both topologies: identical accumulation
        // order per C block (ascending k), so results agree bit-exactly.
        let nb = 4;
        let r = 2;
        let a = test_matrix(nb * r, nb * r, 21);
        let b = test_matrix(nb * r, nb * r, 22);
        let (c_star, _) = run_star_mm(&a, &b, &star(3, 13), (nb, nb, nb), r, &uniform(4)).unwrap();
        let dist = hetgrid_dist::BlockCyclic::new(2, 2);
        let (c_grid, _) = crate::mm::run_mm(&a, &b, &dist, nb, r, &vec![vec![1; 2]; 2]).unwrap();
        assert!(c_star.approx_eq(&c_grid, 0.0));
    }
}
