//! Pluggable message transport for the distributed kernels.
//!
//! The executor's communication surface is deliberately tiny: each
//! virtual processor owns one mailbox and can push a message into any
//! other processor's mailbox. [`Transport`] abstracts who implements
//! that surface:
//!
//! * [`ChannelTransport`] — the production default, one
//!   [`crate::channel`] MPMC channel per processor (what `run_mm` & co
//!   use when called without an explicit transport);
//! * `hetgrid-harness`'s virtual transport — a seeded fault-injecting
//!   router (message delay, reordering, starvation detection) used by
//!   the deterministic simulation harness.
//!
//! The kernels are *order-insensitive by design*: every message carries
//! its step and block coordinates, and workers buffer messages that
//! arrive ahead of their step. A transport is therefore free to deliver
//! messages in any order; the only obligations are that every sent
//! message is eventually delivered exactly once and that [`Endpoint::recv`]
//! fails (or the harness aborts the run) rather than blocking forever
//! once delivery is impossible.

use crate::channel::{unbounded, Receiver, Sender};
use std::fmt;

/// The transport is closed: the peer endpoints required to complete the
/// operation were dropped.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Closed;

impl fmt::Debug for Closed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Closed")
    }
}

impl fmt::Display for Closed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("transport closed: peer endpoints dropped")
    }
}

impl std::error::Error for Closed {}

/// A distributed kernel run failed: a peer endpoint dropped out (its
/// thread returned or its mailbox became unreachable) before the plan
/// completed, so the remaining workers aborted with typed errors
/// instead of panicking. The run's partial results are discarded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Processor `(i, j)` observed a dropped peer (send or receive on a
    /// closed mailbox) and aborted the run.
    PeerDropped {
        /// Grid coordinates of the first worker (in linear id order)
        /// that hit the closed transport.
        proc: (usize, usize),
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PeerDropped { proc: (i, j) } => write!(
                f,
                "executor run aborted: processor ({}, {}) observed a dropped peer",
                i + 1,
                j + 1
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// One processor's view of the transport: send to any peer by linear
/// processor id, receive from the own mailbox.
///
/// An endpoint is owned by exactly one worker thread; implementations
/// must be `Send` but are never shared (`&self` methods exist so the
/// endpoint can be used through a `Box<dyn Endpoint<T>>` without
/// threading `&mut` through the kernel code).
pub trait Endpoint<T>: Send {
    /// Delivers `msg` into the mailbox of processor `dest`.
    ///
    /// Fails only when delivery has become impossible (every receiver of
    /// the destination mailbox is gone).
    fn send(&self, dest: usize, msg: T) -> Result<(), Closed>;

    /// Blocks for the next message of the own mailbox. Fails when the
    /// mailbox is drained and no live endpoint can refill it.
    fn recv(&self) -> Result<T, Closed>;

    /// Non-blocking receive: `Ok(Some(msg))` if a message was already
    /// waiting, `Ok(None)` if the mailbox is currently empty, `Err`
    /// under the same conditions [`recv`](Endpoint::recv) fails. The
    /// out-of-order step driver polls this to overlap communication
    /// with compute; the default (always empty) degrades such a driver
    /// to blocking receives, which is correct for any transport.
    fn try_recv(&self) -> Result<Option<T>, Closed> {
        Ok(None)
    }

    /// Progress beacon: the step driver calls `mark(step)` every time
    /// this processor retires a step (all of the step's local actions
    /// are done). A transport may use it to observe the retirement
    /// frontier or — like the harness's virtual transport — to inject
    /// grid-membership faults at an exact, replayable boundary:
    /// returning `Err(Closed)` makes the worker abandon the run as if
    /// its processor had died (or, for a voluntary pause, as if it had
    /// agreed to stop at this frontier). The default ignores the beacon
    /// and always succeeds.
    fn mark(&self, step: usize) -> Result<(), Closed> {
        let _ = step;
        Ok(())
    }

    /// Best-effort abort of the whole run this endpoint belongs to:
    /// marks every peer mailbox as doomed so blocked receivers fail
    /// fast with [`Closed`] instead of deadlocking on messages that
    /// will never arrive. Called by the step driver when a worker hits
    /// a closed transport mid-plan. The default is a no-op — a
    /// transport with its own liveness mechanism (e.g. the harness
    /// watchdog) need not implement it.
    fn abort(&self) {}
}

/// Factory for a connected set of [`Endpoint`]s — one per virtual
/// processor of a run.
///
/// `connect` is generic over the message type because each kernel has
/// its own private message enum; a transport only moves values, it never
/// inspects them.
pub trait Transport {
    /// Creates `n` mutually connected endpoints; endpoint `i` receives
    /// what anyone sends to destination `i`.
    fn connect<T: Send + 'static>(&self, n: usize) -> Vec<Box<dyn Endpoint<T>>>;
}

/// The default transport: one unbounded [`crate::channel`] per
/// processor, each endpoint holding a sender to every mailbox (its own
/// included) and the receiver of its own.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChannelTransport;

struct ChannelEndpoint<T> {
    txs: Vec<Sender<T>>,
    rx: Receiver<T>,
}

impl<T: Send> Endpoint<T> for ChannelEndpoint<T> {
    fn send(&self, dest: usize, msg: T) -> Result<(), Closed> {
        self.txs[dest].send(msg).map_err(|_| Closed)
    }

    fn recv(&self) -> Result<T, Closed> {
        self.rx.recv().map_err(|_| Closed)
    }

    fn try_recv(&self) -> Result<Option<T>, Closed> {
        self.rx.try_recv().map_err(|_| Closed)
    }

    fn abort(&self) {
        for tx in &self.txs {
            tx.poison();
        }
    }
}

impl Transport for ChannelTransport {
    fn connect<T: Send + 'static>(&self, n: usize) -> Vec<Box<dyn Endpoint<T>>> {
        let (txs, rxs): (Vec<Sender<T>>, Vec<Receiver<T>>) = (0..n).map(|_| unbounded()).unzip();
        rxs.into_iter()
            .map(|rx| {
                Box::new(ChannelEndpoint {
                    txs: txs.clone(),
                    rx,
                }) as Box<dyn Endpoint<T>>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn endpoints_are_mutually_connected() {
        let eps = ChannelTransport.connect::<(usize, u32)>(3);
        let mut it = eps.into_iter();
        let (e0, e1, e2) = (it.next().unwrap(), it.next().unwrap(), it.next().unwrap());
        let h1 = thread::spawn(move || e1.recv().unwrap());
        let h2 = thread::spawn(move || e2.recv().unwrap());
        e0.send(1, (0, 10)).unwrap();
        e0.send(2, (0, 20)).unwrap();
        assert_eq!(h1.join().unwrap(), (0, 10));
        assert_eq!(h2.join().unwrap(), (0, 20));
    }

    #[test]
    fn self_send_is_allowed() {
        let eps = ChannelTransport.connect::<u8>(1);
        eps[0].send(0, 7).unwrap();
        assert_eq!(eps[0].recv().unwrap(), 7);
    }

    #[test]
    fn send_to_fully_dropped_mailbox_fails() {
        let mut eps = ChannelTransport.connect::<u8>(2);
        drop(eps.pop()); // endpoint 1 (its receiver) is gone
        assert_eq!(eps[0].send(1, 3), Err(Closed));
        // The own mailbox is still alive.
        eps[0].send(0, 4).unwrap();
        assert_eq!(eps[0].recv().unwrap(), 4);
    }

    #[test]
    fn abort_fails_blocked_peers_fast() {
        let eps = ChannelTransport.connect::<u8>(3);
        let mut it = eps.into_iter();
        let (e0, e1, e2) = (it.next().unwrap(), it.next().unwrap(), it.next().unwrap());
        // e1 and e2 block waiting for messages that will never come;
        // without the abort they would deadlock (each still holds a
        // sender to its own mailbox).
        let h1 = thread::spawn(move || e1.recv());
        let h2 = thread::spawn(move || e2.recv());
        thread::sleep(std::time::Duration::from_millis(10));
        e0.abort();
        assert_eq!(h1.join().unwrap(), Err(Closed));
        assert_eq!(h2.join().unwrap(), Err(Closed));
        // The aborting endpoint itself also fails from here on.
        assert_eq!(e0.send(0, 1), Err(Closed));
    }
}
