//! Threaded distributed Householder QR: the [`hetgrid_plan::qr_plan`]
//! fan-in/fan-out step stream interpreted over real threads.
//!
//! QR's panel factorization couples all panel rows through the
//! reflector norms, so unlike LU/Cholesky the panel cannot be solved
//! block-locally. Step `k` instead runs a fan-in cycle (Section 3.2.2
//! notes QR parallelizes "analogously" to LU at this granularity): the
//! panel blocks `(bi, k)` fan in to the diagonal owner, which factors
//! the stacked panel with [`qr_factor`] and scatters the packed
//! reflector segments back; the packed panel factors are broadcast to
//! the trailing column heads; each head gathers its column, applies
//! `Q^T` to the stacked column, and scatters the updated blocks back.
//!
//! Under the lookahead driver the fan-in sends, the panel
//! factorization, and the segment receives are critical actions; each
//! trailing column's `Q^T` application is an independent non-critical
//! action, so step `k + 1`'s fan-in begins while step `k`'s columns
//! still update. The packed panel factors of step `k` are modeled as a
//! pseudo-resource `(3, k, 0)` so column applications on the diagonal
//! owner order after its factorization.
//!
//! The gathered result is the *globally packed* factorization:
//! Householder vectors below the block diagonal of each panel column,
//! `R` on and above. [`qr_unpack`] rebuilds `(Q, R)` from it.

use crate::pool::{BufferPool, PoolClone};
use crate::step::{
    check_weights, gather_result, run_grid, run_steps, Action, Courier, ExecConfig, Journal, Op,
    StepInterp, WorkClock,
};
use crate::store::{BlockStore, CheckpointLog, DistributedMatrix, ExecReport};
use crate::transport::{ChannelTransport, Closed, ExecError, Transport};
use hetgrid_dist::BlockDist;
use hetgrid_linalg::qr::{qr_factor, QrFactors};
use hetgrid_linalg::Matrix;
use hetgrid_plan::{Plan, Step};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Message tags: panel fan-in, reflector segment scatter-back, packed
/// panel factor broadcast, column gather, updated column scatter-back.
const TAG_PANEL: u8 = 0;
const TAG_SEG: u8 = 1;
const TAG_REFL: u8 = 2;
const TAG_COL: u8 = 3;
const TAG_COLRET: u8 = 4;

/// QR wire payload: a single `r x r` block, or the packed factors of a
/// stacked panel (the reflector broadcast to the column heads).
#[derive(Clone)]
enum QrPayload {
    Block(Matrix),
    Factors { packed: Matrix, taus: Vec<f64> },
}

impl QrPayload {
    fn into_block(self) -> Matrix {
        match self {
            QrPayload::Block(m) => m,
            QrPayload::Factors { .. } => panic!("run_qr: expected block payload"),
        }
    }
}

impl PoolClone for QrPayload {
    fn pool_clone(&self, pool: &mut BufferPool) -> Self {
        match self {
            QrPayload::Block(m) => QrPayload::Block(m.pool_clone(pool)),
            QrPayload::Factors { packed, taus } => QrPayload::Factors {
                packed: packed.pool_clone(pool),
                taus: taus.clone(),
            },
        }
    }

    fn reclaim(self, pool: &mut BufferPool) {
        match self {
            QrPayload::Block(m) | QrPayload::Factors { packed: m, .. } => pool.put(m),
        }
    }
}

/// Factors `a` over the distribution; returns the gathered packed
/// factors (Householder vectors below each panel's diagonal, `R` on and
/// above), the Householder scalars (`nb * r` of them, panel-major), and
/// the execution report, or a typed [`ExecError`] if a worker dropped
/// out mid-run. Unpack with [`qr_unpack`].
///
/// # Panics
/// Panics on size mismatch.
pub fn run_qr(
    a: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> Result<(Matrix, Vec<f64>, ExecReport), ExecError> {
    run_qr_on(&ChannelTransport, a, dist, nb, r, weights)
}

/// [`run_qr`] over an explicit [`Transport`] (the harness injects its
/// fault-injecting virtual transport here).
///
/// # Panics
/// Panics like [`run_qr`].
pub fn run_qr_on(
    transport: &impl Transport,
    a: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> Result<(Matrix, Vec<f64>, ExecReport), ExecError> {
    run_qr_on_cfg(transport, a, dist, nb, r, weights, ExecConfig::default())
}

/// [`run_qr_on`] with explicit executor tuning (lookahead depth).
///
/// # Panics
/// Panics like [`run_qr`].
pub fn run_qr_on_cfg(
    transport: &impl Transport,
    a: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
    cfg: ExecConfig,
) -> Result<(Matrix, Vec<f64>, ExecReport), ExecError> {
    let da = DistributedMatrix::scatter(a, dist, nb, r);
    let nb = da.nb_rows;
    let taus_acc: Mutex<Vec<Vec<f64>>> = Mutex::new(vec![Vec::new(); nb]);
    let (stores, report) = qr_seg(transport, &da, dist, weights, cfg, 0, None, &taus_acc)?;
    let packed = gather_result(stores, (nb, nb), r, "run_qr");
    let taus: Vec<f64> = taus_acc
        .into_inner()
        .unwrap_or_else(|p| p.into_inner())
        .into_iter()
        .flatten()
        .collect();
    assert_eq!(taus.len(), nb * r, "run_qr: missing Householder scalars");
    Ok((packed, taus, report))
}

/// One *epoch* of the QR execution: runs the step plan from `start` to
/// completion over already-scattered blocks, optionally journaling
/// every packed-factor block write into `journal`.
///
/// `taus_acc` collects each step's Householder scalars, reported by
/// whichever worker owned that step's diagonal block. The caller keeps
/// it across epochs: a resumed epoch re-runs steps `start..` and
/// *overwrites* (not appends) each step's slot, so replayed work lands
/// bit-identically and scalars from steps retired before the fault
/// survive untouched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn qr_seg(
    transport: &impl Transport,
    da: &DistributedMatrix,
    dist: &(dyn BlockDist + Sync),
    weights: &[Vec<u64>],
    cfg: ExecConfig,
    start: usize,
    journal: Option<&CheckpointLog>,
    taus_acc: &Mutex<Vec<Vec<f64>>>,
) -> Result<(Vec<BlockStore>, ExecReport), ExecError> {
    let (p, q) = dist.grid();
    check_weights(weights, (p, q), "run_qr");
    let (nb, r) = (da.nb_rows, da.r);
    let plan = hetgrid_plan::qr_plan(dist, nb);

    run_grid(transport, (p, q), weights, |me, courier, clock| {
        let mut interp = QrInterp {
            plan: &plan,
            r,
            my: (me / q, me % q),
            blocks: da.stores[me].clone(),
            taus_acc,
            factors: HashMap::new(),
            block_bytes: (r * r * std::mem::size_of::<f64>()) as u64,
        };
        let j = journal.map(|log| Journal { log, me });
        run_steps(
            &mut interp,
            courier,
            clock,
            cfg.lookahead,
            start,
            j.as_ref(),
        )?;
        Ok(interp.blocks)
    })
}

/// Rebuilds `(Q, R)` from [`run_qr`]'s globally packed factors: `Q` is
/// `n x n` orthogonal, `R` upper triangular, `A = Q * R`. Mirrors the
/// panel-by-panel `Q` accumulation of
/// [`qr_blocked`](hetgrid_linalg::qr::qr_blocked).
///
/// # Panics
/// Panics if `packed` is not `nb * r` square or `taus` is not `nb * r`
/// long.
pub fn qr_unpack(packed: &Matrix, taus: &[f64], nb: usize, r: usize) -> (Matrix, Matrix) {
    let n = nb * r;
    assert_eq!(packed.shape(), (n, n), "qr_unpack: packed shape mismatch");
    assert_eq!(taus.len(), n, "qr_unpack: tau count mismatch");
    let mut qfull = Matrix::identity(n);
    for k in 0..nb {
        let pf = QrFactors::from_parts(
            packed.block(k * r, k * r, n - k * r, r),
            taus[k * r..(k + 1) * r].to_vec(),
        );
        // Q := Q * diag(I, Q_panel), via the transposed qt_mul trick.
        let qcols = qfull.block(0, k * r, n, n - k * r);
        qfull.set_block(0, k * r, &pf.qt_mul(&qcols.transpose()).transpose());
    }
    let rmat = Matrix::from_fn(n, n, |i, j| if i <= j { packed[(i, j)] } else { 0.0 });
    (qfull, rmat)
}

/// One processor's QR actions for `step`, in program order: fan-in
/// sends first (panel blocks to the diagonal owner, column members to
/// their heads — before any receive, so the step's send/receive graph
/// stays acyclic), then factor / take-segment, then the column
/// applications, then the updated-column receives.
pub(crate) fn qr_actions(step: &Step, my: (usize, usize)) -> Vec<Action> {
    let Step::Qr {
        k,
        diag,
        panel,
        reflector_dests: _,
        columns,
    } = step
    else {
        panic!("run_qr: non-QR step in plan")
    };
    let k = *k;
    let mut out = Vec::new();
    if *diag != my {
        for &((bi, bk), owner) in panel {
            if owner == my {
                out.push(Action {
                    step: k,
                    op: Op::QrSendPanel,
                    blk: (bi, bk),
                    crit: true,
                    needs: vec![],
                    reads: vec![(0, bi, bk)],
                    writes: vec![],
                });
            }
        }
    }
    for col in columns {
        if col.head == my {
            continue;
        }
        for &((bi, bj), owner) in &col.members {
            if owner == my {
                out.push(Action {
                    step: k,
                    op: Op::QrSendCol,
                    blk: (bi, bj),
                    crit: true,
                    needs: vec![],
                    reads: vec![(0, bi, bj)],
                    writes: vec![],
                });
            }
        }
    }
    if *diag == my {
        let mut needs = vec![];
        let mut writes = vec![(3, k, 0)];
        for &((bi, _), owner) in panel {
            if owner == my {
                writes.push((0, bi, k));
            } else {
                needs.push((k, TAG_PANEL, (bi, k)));
            }
        }
        out.push(Action {
            step: k,
            op: Op::QrFactor,
            blk: (k, k),
            crit: true,
            needs,
            reads: vec![],
            writes,
        });
    } else {
        for &((bi, _), owner) in panel {
            if owner == my {
                out.push(Action {
                    step: k,
                    op: Op::QrTakeSeg,
                    blk: (bi, k),
                    crit: true,
                    needs: vec![(k, TAG_SEG, (bi, k))],
                    reads: vec![],
                    writes: vec![(0, bi, k)],
                });
            }
        }
    }
    for col in columns {
        if col.head != my {
            continue;
        }
        let (mut needs, mut reads) = (vec![], vec![]);
        if *diag == my {
            reads.push((3, k, 0));
        } else {
            needs.push((k, TAG_REFL, (k, k)));
        }
        let mut writes = vec![(0, k, col.bj)];
        for &((bi, bj), owner) in &col.members {
            if owner == my {
                writes.push((0, bi, bj));
            } else {
                needs.push((k, TAG_COL, (bi, bj)));
            }
        }
        out.push(Action {
            step: k,
            op: Op::QrColUpdate,
            blk: (k, col.bj),
            crit: false,
            needs,
            reads,
            writes,
        });
    }
    for col in columns {
        if col.head == my {
            continue;
        }
        for &((bi, bj), owner) in &col.members {
            if owner == my {
                out.push(Action {
                    step: k,
                    op: Op::QrTakeColRet,
                    blk: (bi, bj),
                    crit: true,
                    needs: vec![(k, TAG_COLRET, (bi, bj))],
                    reads: vec![],
                    writes: vec![(0, bi, bj)],
                });
            }
        }
    }
    out
}

struct QrInterp<'a> {
    plan: &'a Plan,
    r: usize,
    my: (usize, usize),
    blocks: BlockStore,
    taus_acc: &'a Mutex<Vec<Vec<f64>>>,
    /// Packed panel factors by step, kept while the step's column
    /// applications may still run; dropped on retire.
    factors: HashMap<usize, QrFactors>,
    block_bytes: u64,
}

impl StepInterp for QrInterp<'_> {
    type P = QrPayload;

    fn n_steps(&self) -> usize {
        self.plan.steps.len()
    }

    fn emit(&self, k: usize, out: &mut Vec<Action>) {
        out.extend(qr_actions(&self.plan.steps[k], self.my));
    }

    fn peek(&self, blk: (usize, usize)) -> Option<&Matrix> {
        self.blocks.get(&blk)
    }

    fn execute(
        &mut self,
        a: &Action,
        courier: &mut Courier<QrPayload>,
        clock: &mut WorkClock,
    ) -> Result<(), Closed> {
        let Step::Qr {
            k,
            diag,
            panel,
            reflector_dests,
            columns,
        } = &self.plan.steps[a.step]
        else {
            unreachable!("emit checked the step kind")
        };
        let k = *k;
        let r = self.r;
        let nk = panel.len(); // nb - k stacked panel blocks
        match a.op {
            Op::QrSendPanel => {
                let payload = QrPayload::Block(self.blocks[&a.blk].pool_clone(courier.pool_mut()));
                courier.send(*diag, k, TAG_PANEL, a.blk, payload, self.block_bytes)?;
            }
            Op::QrSendCol => {
                let col = columns
                    .iter()
                    .find(|c| c.bj == a.blk.1)
                    .expect("column for fan-in send");
                let payload = QrPayload::Block(self.blocks[&a.blk].pool_clone(courier.pool_mut()));
                courier.send(col.head, k, TAG_COL, a.blk, payload, self.block_bytes)?;
            }
            // Stack the panel, factor it, scatter the packed reflector
            // segments back, broadcast the factors to the column heads.
            Op::QrFactor => {
                let _span = courier.span_with(|| format!("factor {k}"));
                // Pool buffer with stale contents: the loop below
                // writes every row block (bi ranges over k..nb).
                let mut stacked = courier.pool_mut().take(nk * r, r);
                for &((bi, _), owner) in panel {
                    if owner == self.my {
                        stacked.set_block((bi - k) * r, 0, &self.blocks[&(bi, k)]);
                    } else {
                        let blk = courier.take(k, TAG_PANEL, (bi, k))?.into_block();
                        stacked.set_block((bi - k) * r, 0, &blk);
                        blk.reclaim(courier.pool_mut());
                    }
                }
                let pf = clock.run(
                    2 * nk as u64,
                    || qr_factor(&stacked),
                    || {
                        qr_factor(&stacked);
                    },
                );
                stacked.reclaim(courier.pool_mut());
                for &((bi, _), owner) in panel {
                    let seg = pf.packed().block((bi - k) * r, 0, r, r);
                    if owner == self.my {
                        if let Some(old) = self.blocks.insert((bi, k), seg) {
                            old.reclaim(courier.pool_mut());
                        }
                    } else {
                        courier.send(
                            owner,
                            k,
                            TAG_SEG,
                            (bi, k),
                            QrPayload::Block(seg),
                            self.block_bytes,
                        )?;
                    }
                }
                self.taus_acc.lock().unwrap_or_else(|p| p.into_inner())[k] = pf.taus().to_vec();
                if !reflector_dests.is_empty() {
                    let factors = QrPayload::Factors {
                        packed: pf.packed().clone(),
                        taus: pf.taus().to_vec(),
                    };
                    let refl_bytes = (nk * r * r + r) as u64 * std::mem::size_of::<f64>() as u64;
                    courier.bcast(reflector_dests, k, TAG_REFL, (k, k), &factors, refl_bytes)?;
                    factors.reclaim(courier.pool_mut());
                }
                self.factors.insert(k, pf);
            }
            Op::QrTakeSeg => {
                let seg = courier.take(k, TAG_SEG, a.blk)?.into_block();
                if let Some(old) = self.blocks.insert(a.blk, seg) {
                    old.reclaim(courier.pool_mut());
                }
            }
            // Gather one owned trailing column, apply Q^T of the
            // stacked panel, scatter the updated blocks back.
            Op::QrColUpdate => {
                let _span = courier.span_with(|| format!("apply {k}"));
                let col = columns
                    .iter()
                    .find(|c| c.bj == a.blk.1)
                    .expect("column for update");
                if let std::collections::hash_map::Entry::Vacant(slot) = self.factors.entry(k) {
                    let pf = match courier.obtain(k, TAG_REFL, (k, k))? {
                        QrPayload::Factors { packed, taus } => {
                            QrFactors::from_parts(packed.clone(), taus.clone())
                        }
                        QrPayload::Block(_) => panic!("run_qr: expected factors payload"),
                    };
                    slot.insert(pf);
                }
                let t0 = Instant::now();
                // Pool buffer with stale contents: head block fills row
                // 0, the members fill every remaining row block.
                let mut stacked = courier.pool_mut().take(nk * r, r);
                stacked.set_block(0, 0, &self.blocks[&(k, col.bj)]);
                for &((bi, bj), owner) in &col.members {
                    if owner == self.my {
                        stacked.set_block((bi - k) * r, 0, &self.blocks[&(bi, bj)]);
                    } else {
                        let blk = courier.take(k, TAG_COL, (bi, bj))?.into_block();
                        stacked.set_block((bi - k) * r, 0, &blk);
                        blk.reclaim(courier.pool_mut());
                    }
                }
                let pf = &self.factors[&k];
                let col_blocks = col.members.len() as u64 + 1;
                let updated = clock.run(
                    2 * col_blocks,
                    || pf.qt_mul(&stacked),
                    || {
                        pf.qt_mul(&stacked);
                    },
                );
                stacked.reclaim(courier.pool_mut());
                if let Some(old) = self.blocks.insert((k, col.bj), updated.block(0, 0, r, r)) {
                    old.reclaim(courier.pool_mut());
                }
                for &((bi, bj), owner) in &col.members {
                    let blk = updated.block((bi - k) * r, 0, r, r);
                    if owner == self.my {
                        if let Some(old) = self.blocks.insert((bi, bj), blk) {
                            old.reclaim(courier.pool_mut());
                        }
                    } else {
                        courier.send(
                            owner,
                            k,
                            TAG_COLRET,
                            (bi, bj),
                            QrPayload::Block(blk),
                            self.block_bytes,
                        )?;
                    }
                }
                updated.reclaim(courier.pool_mut());
                courier.step_done(t0.elapsed().as_secs_f64());
            }
            Op::QrTakeColRet => {
                let blk = courier.take(k, TAG_COLRET, a.blk)?.into_block();
                if let Some(old) = self.blocks.insert(a.blk, blk) {
                    old.reclaim(courier.pool_mut());
                }
            }
            op => unreachable!("non-QR action {op:?} in QR plan"),
        }
        Ok(())
    }

    fn retire(&mut self, k: usize) {
        self.factors.remove(&k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_core::{exact, Arrangement};
    use hetgrid_dist::{BlockCyclic, PanelDist, PanelOrdering};
    use hetgrid_linalg::gemm::matmul;

    fn test_matrix(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn check_qr(a: &Matrix, packed: &Matrix, taus: &[f64], nb: usize, r: usize, tol: f64) {
        let (qm, rmat) = qr_unpack(packed, taus, nb, r);
        let reconstructed = matmul(&qm, &rmat);
        assert!(
            reconstructed.approx_eq(a, tol),
            "A != Q R, max err {}",
            reconstructed.sub(a).max_abs()
        );
        let n = nb * r;
        let qtq = matmul(&qm.transpose(), &qm);
        assert!(
            qtq.approx_eq(&Matrix::identity(n), tol),
            "Q not orthonormal, max err {}",
            qtq.sub(&Matrix::identity(n)).max_abs()
        );
    }

    #[test]
    fn qr_cyclic_reconstructs() {
        let nb = 4;
        let r = 3;
        let a = test_matrix(nb * r, 0xA1);
        let dist = BlockCyclic::new(2, 2);
        let (packed, taus, _) = run_qr(&a, &dist, nb, r, &vec![vec![1; 2]; 2]).unwrap();
        check_qr(&a, &packed, &taus, nb, r, 1e-9);
    }

    #[test]
    fn qr_matches_blocked_reference() {
        // The distributed schedule performs qr_blocked's arithmetic
        // column-by-column, so the R factors agree to rounding.
        let nb = 3;
        let r = 4;
        let a = test_matrix(nb * r, 0xA2);
        let dist = BlockCyclic::new(1, 2);
        let (packed, taus, _) = run_qr(&a, &dist, nb, r, &[vec![1; 2]]).unwrap();
        check_qr(&a, &packed, &taus, nb, r, 1e-9);
        let (_, r_seq) = hetgrid_linalg::qr::qr_blocked(&a, r);
        let n = nb * r;
        let r_dist = Matrix::from_fn(n, n, |i, j| if i <= j { packed[(i, j)] } else { 0.0 });
        assert!(
            r_dist.approx_eq(&r_seq, 1e-9),
            "R mismatch vs qr_blocked, max err {}",
            r_dist.sub(&r_seq).max_abs()
        );
    }

    #[test]
    fn qr_panel_with_weights() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let dist = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
        let nb = 8;
        let r = 2;
        let a = test_matrix(nb * r, 0xA3);
        let w = crate::store::slowdown_weights(&arr);
        let (packed, taus, report) = run_qr(&a, &dist, nb, r, &w).unwrap();
        check_qr(&a, &packed, &taus, nb, r, 1e-8);
        assert!(report.work_units.iter().flatten().sum::<u64>() > 0);
        assert!(report.messages_sent.iter().flatten().sum::<u64>() > 0);
    }

    #[test]
    fn lookahead_is_bit_exact_with_in_order() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let dist = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
        let nb = 8;
        let r = 2;
        let a = test_matrix(nb * r, 0xA5);
        let w = crate::store::slowdown_weights(&arr);
        let t = ChannelTransport;
        let run = |lookahead| {
            let (packed, taus, _) =
                run_qr_on_cfg(&t, &a, &dist, nb, r, &w, ExecConfig { lookahead }).unwrap();
            (packed, taus)
        };
        let (packed0, taus0) = run(0);
        for depth in [1, 3] {
            let (packed, taus) = run(depth);
            assert!(
                packed.approx_eq(&packed0, 0.0),
                "depth {depth} packed factors diverged from in-order"
            );
            assert_eq!(taus, taus0, "depth {depth} taus diverged from in-order");
        }
    }

    #[test]
    fn single_processor_qr() {
        let a = test_matrix(8, 0xA4);
        let dist = BlockCyclic::new(1, 1);
        let (packed, taus, report) = run_qr(&a, &dist, 4, 2, &[vec![1]]).unwrap();
        check_qr(&a, &packed, &taus, 4, 2, 1e-10);
        assert_eq!(report.messages_sent.iter().flatten().sum::<u64>(), 0);
    }
}
