//! Scratch/receive buffer pooling for the step driver's hot path.
//!
//! Every broadcast used to clone its payload per destination and every
//! retired step dropped its received block buffers on the floor; with
//! the lookahead driver keeping more messages in flight, that
//! allocation churn would grow with the window. [`BufferPool`] shelves
//! retired [`Matrix`] buffers by shape so the next same-shaped clone or
//! receive staging reuses the allocation, and [`PoolClone`] is the
//! pool-aware replacement for `clone()` on payload types.
//!
//! The pool is strictly thread-local (one per worker's
//! [`Courier`](crate::step::Courier)): no locks, no cross-thread
//! traffic. Hit/miss totals are published to `obs` at run end.

use hetgrid_linalg::Matrix;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-shape shelf capacity: buffers returned beyond this are simply
/// dropped, bounding the pool's footprint at a handful of windows'
/// worth of blocks per shape.
const SHELF_CAP: usize = 32;

/// A by-shape free list of matrix buffers.
///
/// `take` hands out a buffer with **stale contents** — callers
/// overwrite it entirely (via [`Matrix::copy_from`] or by writing every
/// block of a stacked panel) before reading, exactly as they would fill
/// a freshly cloned buffer.
#[derive(Debug, Default)]
pub struct BufferPool {
    shelves: HashMap<(usize, usize), Vec<Matrix>>,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// A `rows x cols` buffer: reused from the shelf when one is
    /// available (stale contents!), freshly allocated otherwise.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        match self.shelves.get_mut(&(rows, cols)).and_then(Vec::pop) {
            Some(m) => {
                self.hits += 1;
                m
            }
            None => {
                self.misses += 1;
                Matrix::zeros(rows, cols)
            }
        }
    }

    /// Returns a retired buffer to its shape's shelf (dropped when the
    /// shelf is full).
    pub fn put(&mut self, m: Matrix) {
        let shelf = self.shelves.entry(m.shape()).or_default();
        if shelf.len() < SHELF_CAP {
            shelf.push(m);
        }
    }

    /// Takes met from the shelf so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Takes that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Pool-aware duplication and retirement for message payload types —
/// the replacement for the `payload.clone()` per broadcast destination
/// and the silent drop of consumed receive buffers.
pub trait PoolClone: Sized {
    /// Duplicates `self`, drawing any backing buffer from `pool`.
    fn pool_clone(&self, pool: &mut BufferPool) -> Self;
    /// Retires `self`, returning any exclusively-owned backing buffer
    /// to `pool`.
    fn reclaim(self, pool: &mut BufferPool);
}

impl PoolClone for Matrix {
    fn pool_clone(&self, pool: &mut BufferPool) -> Self {
        let (r, c) = self.shape();
        let mut m = pool.take(r, c);
        m.copy_from(self);
        m
    }

    fn reclaim(self, pool: &mut BufferPool) {
        pool.put(self);
    }
}

impl PoolClone for Arc<Matrix> {
    fn pool_clone(&self, _pool: &mut BufferPool) -> Self {
        // Arc payloads are shared, not copied; nothing to pool on the
        // way out.
        Arc::clone(self)
    }

    fn reclaim(self, pool: &mut BufferPool) {
        // Only the last holder gets the buffer back.
        if let Ok(m) = Arc::try_unwrap(self) {
            pool.put(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_matching_shape_only() {
        let mut pool = BufferPool::new();
        pool.put(Matrix::filled(2, 3, 7.0));
        let m = pool.take(3, 2);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(pool.misses(), 1);
        let m2 = pool.take(2, 3);
        assert_eq!(m2.shape(), (2, 3));
        assert_eq!(pool.hits(), 1);
        drop((m, m2));
    }

    #[test]
    fn pool_clone_matrix_is_bitwise_equal() {
        let mut pool = BufferPool::new();
        pool.put(Matrix::filled(2, 2, 9.0)); // stale shelf entry
        let src = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        let dup = src.pool_clone(&mut pool);
        assert!(dup.approx_eq(&src, 0.0));
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn arc_reclaim_recovers_buffer_only_when_unique() {
        let mut pool = BufferPool::new();
        let a = Arc::new(Matrix::zeros(4, 4));
        let b = Arc::clone(&a);
        a.reclaim(&mut pool);
        assert_eq!(pool.take(4, 4).shape(), (4, 4));
        assert_eq!(pool.misses(), 1, "shared Arc must not be shelved");
        b.reclaim(&mut pool);
        pool.take(4, 4);
        assert_eq!(pool.hits(), 1, "unique Arc returns its buffer");
    }

    #[test]
    fn shelf_is_bounded() {
        let mut pool = BufferPool::new();
        for _ in 0..2 * SHELF_CAP {
            pool.put(Matrix::zeros(1, 1));
        }
        let shelved = pool.shelves[&(1, 1)].len();
        assert_eq!(shelved, SHELF_CAP);
    }
}
