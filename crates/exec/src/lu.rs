//! Threaded distributed right-looking LU factorization (without
//! pivoting), following the ScaLAPACK structure of Section 3.2.1: factor
//! the diagonal block, solve the pivot block column and row, broadcast
//! them, rank-`r` update the trailing submatrix.
//!
//! Pivoting is omitted (the executor demonstrates distribution
//! correctness and load balance; feed it diagonally dominant matrices).
//! The invariant checked by the tests is the factorization itself:
//! gathering the in-place result and splitting it into unit-lower `L`
//! and upper `U` must reproduce the input, `A = L * U`.

use crate::channel::{unbounded, Sender};
use crate::probe::Probe;
use crate::store::{BlockStore, DistributedMatrix, ExecReport};
use crate::transport::{ChannelTransport, Endpoint, Transport};
use hetgrid_dist::BlockDist;
use hetgrid_linalg::gemm::gemm;
use hetgrid_linalg::tri::{
    solve_lower, solve_right_upper, unit_lower_from_packed, upper_from_packed,
};
use hetgrid_linalg::Matrix;
use std::collections::HashMap;
use std::time::Instant;

#[derive(Clone, Debug)]
enum Msg {
    /// Packed LU of the diagonal block of step `k`.
    Diag { step: usize, data: Matrix },
    /// Solved L block `(bi, k)` of step `k`.
    L {
        step: usize,
        bi: usize,
        data: Matrix,
    },
    /// Solved U block `(k, bj)` of step `k`.
    U {
        step: usize,
        bj: usize,
        data: Matrix,
    },
}

/// Factors `a` in place (no pivoting) over the distribution; returns the
/// gathered packed factors (strictly lower = `L` with unit diagonal,
/// upper = `U`) and the execution report.
///
/// # Panics
/// Panics if sizes mismatch; numerical breakdown (a zero diagonal block
/// pivot) panics inside the block factorization.
pub fn run_lu(
    a: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> (Matrix, ExecReport) {
    run_lu_on(&ChannelTransport, a, dist, nb, r, weights)
}

/// [`run_lu`] over an explicit [`Transport`] (the harness injects its
/// fault-injecting virtual transport here).
///
/// # Panics
/// Panics like [`run_lu`].
pub fn run_lu_on(
    transport: &impl Transport,
    a: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> (Matrix, ExecReport) {
    let (p, q) = dist.grid();
    assert_eq!(weights.len(), p, "run_lu: weights rows mismatch");
    assert!(
        weights.iter().all(|row| row.len() == q),
        "run_lu: weights cols mismatch"
    );
    let da = DistributedMatrix::scatter(a, dist, nb, r);

    let n_procs = p * q;
    let endpoints = transport.connect::<Msg>(n_procs);
    let (done_tx, done_rx) = unbounded::<(usize, BlockStore, f64, u64, u64)>();

    let wall_start = Instant::now();
    std::thread::scope(|scope| {
        for (me, ep) in endpoints.into_iter().enumerate() {
            let (i, j) = (me / q, me % q);
            let my_blocks = da.stores[me].clone();
            let done = done_tx.clone();
            let w = weights[i][j];
            scope.spawn(move || {
                worker(dist, nb, r, (i, j), my_blocks, w, ep, done);
            });
        }
    });
    drop(done_tx);

    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let mut f = Matrix::zeros(nb * r, nb * r);
    let mut busy = vec![vec![0.0f64; q]; p];
    let mut work = vec![vec![0u64; q]; p];
    let mut msgs = vec![vec![0u64; q]; p];
    let mut blocks_seen = 0usize;
    while let Ok((me, store, busy_s, units, sent)) = done_rx.recv() {
        let (i, j) = (me / q, me % q);
        busy[i][j] = busy_s;
        work[i][j] = units;
        msgs[i][j] = sent;
        for ((bi, bj), block) in store {
            f.set_block(bi * r, bj * r, &block);
            blocks_seen += 1;
        }
    }
    assert_eq!(blocks_seen, nb * nb, "run_lu: missing result blocks");
    (
        f,
        ExecReport {
            wall_seconds,
            busy_seconds: busy,
            work_units: work,
            messages_sent: msgs,
        },
    )
}

/// Unblocked LU without pivoting of a single block, in place, packed.
fn lu_block_nopivot(a: &mut Matrix) {
    let n = a.rows();
    for k in 0..n {
        let pivot = a[(k, k)];
        assert!(
            pivot.abs() > 1e-300,
            "run_lu: zero pivot (matrix needs pivoting; use a diagonally dominant input)"
        );
        for i in k + 1..n {
            let m = a[(i, k)] / pivot;
            a[(i, k)] = m;
            for j in k + 1..n {
                let v = a[(k, j)];
                a[(i, j)] -= m * v;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker(
    dist: &dyn BlockDist,
    nb: usize,
    r: usize,
    (i, j): (usize, usize),
    mut blocks: BlockStore,
    weight: u64,
    ep: Box<dyn Endpoint<Msg>>,
    done: Sender<(usize, BlockStore, f64, u64, u64)>,
) {
    let (p, q) = dist.grid();
    let me = i * q + j;
    let mut probe = Probe::new((i, j), (p, q));
    let block_bytes = (r * r * std::mem::size_of::<f64>()) as u64;
    let owner_id = |bi: usize, bj: usize| {
        let (oi, oj) = dist.owner(bi, bj);
        oi * q + oj
    };

    let mut diag_pending: HashMap<usize, Matrix> = HashMap::new();
    let mut l_pending: HashMap<(usize, usize), Matrix> = HashMap::new();
    let mut u_pending: HashMap<(usize, usize), Matrix> = HashMap::new();

    let mut busy = 0.0f64;
    let mut units = 0u64;
    let mut sent = 0u64;
    let mut scratch = Matrix::zeros(r, r);

    // Repeats a block kernel for the slowdown weight, timing it.
    macro_rules! weighted {
        ($units:expr, $body:expr) => {{
            let t0 = Instant::now();
            let result = $body;
            for _ in 1..weight {
                let _ = $body;
            }
            busy += t0.elapsed().as_secs_f64();
            units += weight * $units;
            result
        }};
    }

    for k in 0..nb {
        let diag_owner = owner_id(k, k);

        // --- 1. Diagonal block factorization.
        if diag_owner == me {
            let _factor_span = probe.as_ref().map(|pr| pr.span(format!("factor {k}")));
            {
                let blk = blocks.get_mut(&(k, k)).expect("diag block missing");
                let original = blk.clone();
                let t0 = Instant::now();
                lu_block_nopivot(blk);
                for _ in 1..weight {
                    let mut copy = original.clone();
                    lu_block_nopivot(&mut copy);
                }
                busy += t0.elapsed().as_secs_f64();
                units += weight;
            }
            let packed = blocks[&(k, k)].clone();
            // Send to everyone who owns a block in column k below or row
            // k right of the diagonal.
            let mut dests: Vec<usize> = Vec::new();
            for bi in k + 1..nb {
                let d = owner_id(bi, k);
                if d != me && !dests.contains(&d) {
                    dests.push(d);
                }
            }
            for bj in k + 1..nb {
                let d = owner_id(k, bj);
                if d != me && !dests.contains(&d) {
                    dests.push(d);
                }
            }
            for d in dests {
                ep.send(
                    d,
                    Msg::Diag {
                        step: k,
                        data: packed.clone(),
                    },
                )
                .expect("receiver hung up");
                sent += 1;
                if let Some(pr) = probe.as_mut() {
                    pr.sent(d, k, block_bytes);
                }
            }
        }

        // --- 2. Get the diagonal factors if I need them this step.
        let i_own_col = (k + 1..nb).any(|bi| owner_id(bi, k) == me);
        let i_own_row = (k + 1..nb).any(|bj| owner_id(k, bj) == me);
        let packed_diag: Option<Matrix> = if diag_owner == me {
            Some(blocks[&(k, k)].clone())
        } else if i_own_col || i_own_row {
            if !diag_pending.contains_key(&k) {
                pump(
                    ep.as_ref(),
                    &mut diag_pending,
                    &mut l_pending,
                    &mut u_pending,
                    |d, _, _| d.contains_key(&k),
                );
            }
            Some(diag_pending[&k].clone())
        } else {
            None
        };

        // --- 3. Solve and broadcast my L blocks of column k.
        if i_own_col {
            let _panel_span = probe.as_ref().map(|pr| pr.span(format!("panelL {k}")));
            let u11 = upper_from_packed(packed_diag.as_ref().expect("diag needed"));
            for bi in k + 1..nb {
                if owner_id(bi, k) != me {
                    continue;
                }
                let solved = weighted!(1, {
                    let blk = blocks.get(&(bi, k)).expect("L block missing");
                    solve_right_upper(&u11, blk)
                });
                blocks.insert((bi, k), solved.clone());
                // Broadcast along the block row to trailing owners.
                let mut dests: Vec<usize> = Vec::new();
                for bj in k + 1..nb {
                    let d = owner_id(bi, bj);
                    if d != me && !dests.contains(&d) {
                        dests.push(d);
                    }
                }
                for d in dests {
                    ep.send(
                        d,
                        Msg::L {
                            step: k,
                            bi,
                            data: solved.clone(),
                        },
                    )
                    .expect("receiver hung up");
                    sent += 1;
                    if let Some(pr) = probe.as_mut() {
                        pr.sent(d, k, block_bytes);
                    }
                }
            }
        }

        // --- 4. Solve and broadcast my U blocks of row k.
        if i_own_row {
            let _panel_span = probe.as_ref().map(|pr| pr.span(format!("panelU {k}")));
            let l11 = unit_lower_from_packed(packed_diag.as_ref().expect("diag needed"));
            for bj in k + 1..nb {
                if owner_id(k, bj) != me {
                    continue;
                }
                let solved = weighted!(1, {
                    let blk = blocks.get(&(k, bj)).expect("U block missing");
                    solve_lower(&l11, blk, true)
                });
                blocks.insert((k, bj), solved.clone());
                let mut dests: Vec<usize> = Vec::new();
                for bi in k + 1..nb {
                    let d = owner_id(bi, bj);
                    if d != me && !dests.contains(&d) {
                        dests.push(d);
                    }
                }
                for d in dests {
                    ep.send(
                        d,
                        Msg::U {
                            step: k,
                            bj,
                            data: solved.clone(),
                        },
                    )
                    .expect("receiver hung up");
                    sent += 1;
                    if let Some(pr) = probe.as_mut() {
                        pr.sent(d, k, block_bytes);
                    }
                }
            }
        }

        // --- 5. Trailing update of my blocks.
        let trailing: Vec<(usize, usize)> = (k + 1..nb)
            .flat_map(|bi| (k + 1..nb).map(move |bj| (bi, bj)))
            .filter(|&(bi, bj)| owner_id(bi, bj) == me)
            .collect();
        if !trailing.is_empty() {
            // Wait for the L and U blocks I need but do not own.
            let mut need_l: Vec<usize> = trailing
                .iter()
                .map(|&(bi, _)| bi)
                .filter(|&bi| owner_id(bi, k) != me)
                .collect();
            need_l.sort_unstable();
            need_l.dedup();
            need_l.retain(|&bi| !l_pending.contains_key(&(k, bi)));
            let mut need_u: Vec<usize> = trailing
                .iter()
                .map(|&(_, bj)| bj)
                .filter(|&bj| owner_id(k, bj) != me)
                .collect();
            need_u.sort_unstable();
            need_u.dedup();
            need_u.retain(|&bj| !u_pending.contains_key(&(k, bj)));
            if !(need_l.is_empty() && need_u.is_empty()) {
                let _wait_span = probe.as_ref().map(|pr| pr.span(format!("wait {k}")));
                pump(
                    ep.as_ref(),
                    &mut diag_pending,
                    &mut l_pending,
                    &mut u_pending,
                    |_, l, u| {
                        need_l.iter().all(|&bi| l.contains_key(&(k, bi)))
                            && need_u.iter().all(|&bj| u.contains_key(&(k, bj)))
                    },
                );
            }
            let mut update_span = probe.as_ref().map(|pr| pr.span(format!("update {k}")));
            let units_before = units;
            let t_update = Instant::now();
            for &(bi, bj) in &trailing {
                let lblk = if owner_id(bi, k) == me {
                    blocks[&(bi, k)].clone()
                } else {
                    l_pending[&(k, bi)].clone()
                };
                let ublk = if owner_id(k, bj) == me {
                    blocks[&(k, bj)].clone()
                } else {
                    u_pending[&(k, bj)].clone()
                };
                let t0 = Instant::now();
                {
                    let c = blocks.get_mut(&(bi, bj)).expect("trailing block missing");
                    gemm(-1.0, &lblk, &ublk, 1.0, c);
                }
                for _ in 1..weight {
                    gemm(-1.0, &lblk, &ublk, 0.0, &mut scratch);
                }
                busy += t0.elapsed().as_secs_f64();
                units += weight;
            }
            if let Some(pr) = &probe {
                pr.step_done(t_update.elapsed().as_secs_f64());
            }
            if let Some(g) = update_span.as_mut() {
                g.arg_u64("units", units - units_before);
            }
        }
        // Drop messages of this step.
        diag_pending.remove(&k);
        l_pending.retain(|&(s, _), _| s > k);
        u_pending.retain(|&(s, _), _| s > k);
    }

    if let Some(pr) = &probe {
        pr.finish(units);
    }
    done.send((me, blocks, busy, units, sent))
        .expect("main hung up");
}

/// Receives messages into the pending buffers until `ready` is
/// satisfied.
fn pump(
    ep: &dyn Endpoint<Msg>,
    diag: &mut HashMap<usize, Matrix>,
    l: &mut HashMap<(usize, usize), Matrix>,
    u: &mut HashMap<(usize, usize), Matrix>,
    ready: impl Fn(
        &HashMap<usize, Matrix>,
        &HashMap<(usize, usize), Matrix>,
        &HashMap<(usize, usize), Matrix>,
    ) -> bool,
) {
    while !ready(diag, l, u) {
        match ep.recv().expect("sender hung up") {
            Msg::Diag { step, data } => {
                diag.insert(step, data);
            }
            Msg::L { step, bi, data } => {
                l.insert((step, bi), data);
            }
            Msg::U { step, bj, data } => {
                u.insert((step, bj), data);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_core::{exact, Arrangement};
    use hetgrid_dist::{BlockCyclic, PanelDist, PanelOrdering};
    use hetgrid_linalg::gemm::matmul;

    fn dominant_matrix(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        Matrix::from_fn(n, n, |i, j| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            if i == j {
                v + 2.0 * n as f64
            } else {
                v
            }
        })
    }

    fn check_lu(a: &Matrix, f: &Matrix, tol: f64) {
        let l = unit_lower_from_packed(f);
        let u = upper_from_packed(f);
        let lu = matmul(&l, &u);
        assert!(
            lu.approx_eq(a, tol),
            "A != L*U, max err {}",
            lu.sub(a).max_abs()
        );
    }

    #[test]
    fn lu_cyclic_reconstructs() {
        let nb = 4;
        let r = 3;
        let a = dominant_matrix(nb * r, 1);
        let dist = BlockCyclic::new(2, 2);
        let (f, _) = run_lu(&a, &dist, nb, r, &vec![vec![1; 2]; 2]);
        check_lu(&a, &f, 1e-8);
    }

    #[test]
    fn lu_panel_reconstructs() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let dist = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
        let nb = 8;
        let r = 2;
        let a = dominant_matrix(nb * r, 2);
        let w = crate::store::slowdown_weights(&arr);
        let (f, report) = run_lu(&a, &dist, nb, r, &w);
        check_lu(&a, &f, 1e-8);
        assert!(report.work_units.iter().flatten().sum::<u64>() > 0);
    }

    #[test]
    fn lu_matches_sequential_factors() {
        // Against the library's blocked LU (which pivots, but a strongly
        // dominant diagonal makes pivoting a no-op).
        let nb = 3;
        let r = 4;
        let a = dominant_matrix(nb * r, 3);
        let dist = BlockCyclic::new(1, 2);
        let (f, _) = run_lu(&a, &dist, nb, r, &vec![vec![1; 2]; 1]);
        let seq = hetgrid_linalg::lu::lu_factor(&a).unwrap();
        assert_eq!(seq.swaps, 0, "test premise: no pivoting happened");
        assert!(f.approx_eq(&seq.lu, 1e-8));
    }

    #[test]
    fn single_processor_lu() {
        let a = dominant_matrix(8, 4);
        let dist = BlockCyclic::new(1, 1);
        let (f, _) = run_lu(&a, &dist, 4, 2, &[vec![1]]);
        check_lu(&a, &f, 1e-9);
    }
}
