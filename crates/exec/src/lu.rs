//! Threaded distributed right-looking LU factorization (without
//! pivoting): the [`hetgrid_plan::factor_plan`] step stream interpreted
//! over real threads, following the ScaLAPACK structure of Section
//! 3.2.1 — factor the diagonal block, solve the pivot block column and
//! row, broadcast them along the plan's destination lists, rank-`r`
//! update the trailing submatrix.
//!
//! Under the lookahead driver the factorization/solve/send actions are
//! critical (they feed the whole grid) and each trailing-update block
//! is its own non-critical action, ordered so the blocks feeding step
//! `k + 1`'s panel — column `k + 1` first, then pivot row `k + 1` —
//! update first. That lets the next panel factorize and its broadcasts
//! depart while the rest of this step's trailing updates drain.
//!
//! Pivoting is omitted (the executor demonstrates distribution
//! correctness and load balance; feed it diagonally dominant matrices).
//! The invariant checked by the tests is the factorization itself:
//! gathering the in-place result and splitting it into unit-lower `L`
//! and upper `U` must reproduce the input, `A = L * U`.

use crate::pool::PoolClone;
use crate::step::{
    check_weights, gather_result, run_grid, run_steps, Action, Courier, ExecConfig, Journal, Op,
    StepInterp, WorkClock,
};
use crate::store::{BlockStore, CheckpointLog, DistributedMatrix, ExecReport};
use crate::transport::{ChannelTransport, Closed, ExecError, Transport};
use hetgrid_dist::BlockDist;
use hetgrid_linalg::gemm::gemm;
use hetgrid_linalg::tri::{
    solve_lower, solve_right_upper, unit_lower_from_packed, upper_from_packed,
};
use hetgrid_linalg::Matrix;
use hetgrid_plan::{Plan, Step};
use std::time::Instant;

/// Message tags: packed diagonal factors, solved L blocks, solved U
/// blocks.
const TAG_DIAG: u8 = 0;
const TAG_L: u8 = 1;
const TAG_U: u8 = 2;

/// Factors `a` in place (no pivoting) over the distribution; returns the
/// gathered packed factors (strictly lower = `L` with unit diagonal,
/// upper = `U`) and the execution report, or a typed [`ExecError`] if a
/// worker dropped out mid-run.
///
/// # Panics
/// Panics if sizes mismatch; numerical breakdown (a zero diagonal block
/// pivot) panics inside the block factorization.
pub fn run_lu(
    a: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> Result<(Matrix, ExecReport), ExecError> {
    run_lu_on(&ChannelTransport, a, dist, nb, r, weights)
}

/// [`run_lu`] over an explicit [`Transport`] (the harness injects its
/// fault-injecting virtual transport here).
///
/// # Panics
/// Panics like [`run_lu`].
pub fn run_lu_on(
    transport: &impl Transport,
    a: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> Result<(Matrix, ExecReport), ExecError> {
    run_lu_on_cfg(transport, a, dist, nb, r, weights, ExecConfig::default())
}

/// [`run_lu_on`] with explicit executor tuning (lookahead depth).
///
/// # Panics
/// Panics like [`run_lu`].
pub fn run_lu_on_cfg(
    transport: &impl Transport,
    a: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
    cfg: ExecConfig,
) -> Result<(Matrix, ExecReport), ExecError> {
    let da = DistributedMatrix::scatter(a, dist, nb, r);
    let (stores, report) = lu_seg(transport, &da, dist, weights, cfg, 0, None)?;
    let f = gather_result(stores, (nb, nb), r, "run_lu");
    Ok((f, report))
}

/// Skew threshold above which LU falls back to the in-order schedule.
///
/// BENCH_exec.json pins `lu/skewed-2x2` (hetero ratio 5.0) at 0.883x
/// for every depth > 0: on a strongly skewed grid the window keeps the
/// fast processors busy with trailing updates whose blocks the slow
/// processors' panel work will need buffered for longer, so lookahead
/// buys nothing and pays buffer churn. Clamping to the in-order
/// schedule when `max weight >= 4 * min weight` restores the depth-0
/// time for exactly that regime while leaving balanced and mildly
/// heterogeneous grids (all speedups > 1.0 in the bench table) at the
/// requested depth. Results are unaffected either way — every depth is
/// bit-exact by construction.
const LU_SKEW_CLAMP: u64 = 4;

/// The lookahead depth LU actually runs at: the requested depth, or 0
/// when the slowdown-weight skew crosses [`LU_SKEW_CLAMP`].
pub(crate) fn effective_lu_lookahead(requested: usize, weights: &[Vec<u64>]) -> usize {
    let max = weights.iter().flatten().copied().max().unwrap_or(1);
    let min = weights.iter().flatten().copied().min().unwrap_or(1).max(1);
    if max >= LU_SKEW_CLAMP * min {
        0
    } else {
        requested
    }
}

/// The resumable core of [`run_lu_on_cfg`]: interprets the factor plan
/// over an already-scattered matrix, starting at plan step `start`
/// (with `da` holding the consistent state of that retirement
/// frontier), journaling every block write into `journal` when given.
/// Returns the raw per-processor stores; the caller gathers.
pub(crate) fn lu_seg(
    transport: &impl Transport,
    da: &DistributedMatrix,
    dist: &(dyn BlockDist + Sync),
    weights: &[Vec<u64>],
    cfg: ExecConfig,
    start: usize,
    journal: Option<&CheckpointLog>,
) -> Result<(Vec<BlockStore>, ExecReport), ExecError> {
    let (p, q) = dist.grid();
    check_weights(weights, (p, q), "run_lu");
    let (nb, r) = (da.nb_rows, da.r);
    let plan = hetgrid_plan::factor_plan(dist, nb);
    let lookahead = effective_lu_lookahead(cfg.lookahead, weights);
    let owned: Vec<Vec<(usize, usize)>> = da
        .stores
        .iter()
        .map(|s| {
            let mut v: Vec<(usize, usize)> = s.keys().copied().collect();
            v.sort_unstable();
            v
        })
        .collect();

    run_grid(transport, (p, q), weights, |me, courier, clock| {
        let mut interp = LuInterp {
            plan: &plan,
            my: (me / q, me % q),
            owned: &owned[me],
            blocks: da.stores[me].clone(),
            scratch: Matrix::zeros(r, r),
            block_bytes: (r * r * std::mem::size_of::<f64>()) as u64,
        };
        let j = journal.map(|log| Journal { log, me });
        run_steps(&mut interp, courier, clock, lookahead, start, j.as_ref())?;
        Ok(interp.blocks)
    })
}

/// Unblocked LU without pivoting of a single block, in place, packed.
fn lu_block_nopivot(a: &mut Matrix) {
    let n = a.rows();
    for k in 0..n {
        let pivot = a[(k, k)];
        assert!(
            pivot.abs() > 1e-300,
            "run_lu: zero pivot (matrix needs pivoting; use a diagonally dominant input)"
        );
        for i in k + 1..n {
            let m = a[(i, k)] / pivot;
            a[(i, k)] = m;
            for j in k + 1..n {
                let v = a[(k, j)];
                a[(i, j)] -= m * v;
            }
        }
    }
}

/// One processor's LU actions for `step`, in program order: diagonal
/// factorization, panel-column solves, pivot-row solves (all critical),
/// then one update action per owned trailing block with the blocks
/// feeding step `k + 1` first.
pub(crate) fn lu_actions(step: &Step, my: (usize, usize), owned: &[(usize, usize)]) -> Vec<Action> {
    let Step::Factor {
        k,
        diag,
        diag_col_dests: _,
        l_bcasts,
        trsm: _,
        u_bcasts,
        ..
    } = step
    else {
        panic!("run_lu: non-factor step in plan")
    };
    let k = *k;
    let is_mine = |blk: (usize, usize)| owned.binary_search(&blk).is_ok();
    let diag_dep = |needs: &mut Vec<(usize, u8, (usize, usize))>,
                    reads: &mut Vec<(u8, usize, usize)>| {
        if *diag == my {
            reads.push((0, k, k));
        } else {
            needs.push((k, TAG_DIAG, (k, k)));
        }
    };
    let mut out = Vec::new();
    if *diag == my {
        out.push(Action {
            step: k,
            op: Op::LuFactor,
            blk: (k, k),
            crit: true,
            needs: vec![],
            reads: vec![],
            writes: vec![(0, k, k)],
        });
    }
    for bc in &l_bcasts[1..] {
        if bc.src != my {
            continue;
        }
        let (mut needs, mut reads) = (vec![], vec![]);
        diag_dep(&mut needs, &mut reads);
        out.push(Action {
            step: k,
            op: Op::LuSolveL,
            blk: bc.block,
            crit: true,
            needs,
            reads,
            writes: vec![(0, bc.block.0, k)],
        });
    }
    for bc in u_bcasts {
        if bc.src != my {
            continue;
        }
        let (mut needs, mut reads) = (vec![], vec![]);
        diag_dep(&mut needs, &mut reads);
        out.push(Action {
            step: k,
            op: Op::LuSolveU,
            blk: bc.block,
            crit: true,
            needs,
            reads,
            writes: vec![(0, k, bc.block.1)],
        });
    }
    let mut trailing: Vec<(usize, usize)> = owned
        .iter()
        .copied()
        .filter(|&(bi, bj)| bi > k && bj > k)
        .collect();
    // Step k+1's panel column, then its pivot row, then the rest: the
    // sooner those blocks finish, the sooner the next panel starts.
    trailing.sort_unstable_by_key(|&(bi, bj)| {
        let tier = if bj == k + 1 {
            0
        } else if bi == k + 1 {
            1
        } else {
            2
        };
        (tier, bi, bj)
    });
    for (bi, bj) in trailing {
        let (mut needs, mut reads) = (vec![], vec![]);
        if is_mine((bi, k)) {
            reads.push((0, bi, k));
        } else {
            needs.push((k, TAG_L, (bi, k)));
        }
        if is_mine((k, bj)) {
            reads.push((0, k, bj));
        } else {
            needs.push((k, TAG_U, (k, bj)));
        }
        out.push(Action {
            step: k,
            op: Op::LuUpdate,
            blk: (bi, bj),
            crit: false,
            needs,
            reads,
            writes: vec![(0, bi, bj)],
        });
    }
    out
}

struct LuInterp<'a> {
    plan: &'a Plan,
    my: (usize, usize),
    owned: &'a [(usize, usize)],
    blocks: BlockStore,
    scratch: Matrix,
    block_bytes: u64,
}

impl StepInterp for LuInterp<'_> {
    type P = Matrix;

    fn n_steps(&self) -> usize {
        self.plan.steps.len()
    }

    fn emit(&self, k: usize, out: &mut Vec<Action>) {
        out.extend(lu_actions(&self.plan.steps[k], self.my, self.owned));
    }

    fn peek(&self, blk: (usize, usize)) -> Option<&Matrix> {
        self.blocks.get(&blk)
    }

    fn execute(
        &mut self,
        a: &Action,
        courier: &mut Courier<Matrix>,
        clock: &mut WorkClock,
    ) -> Result<(), Closed> {
        let Step::Factor {
            k,
            diag,
            diag_col_dests,
            l_bcasts,
            u_bcasts,
            ..
        } = &self.plan.steps[a.step]
        else {
            unreachable!("emit checked the step kind")
        };
        let k = *k;
        match a.op {
            // Factor the diagonal block in place; the packed factors go
            // to the panel-column owners (for the L solves) and the
            // pivot-row owners (for the U solves), one message per
            // distinct owner.
            Op::LuFactor => {
                let _span = courier.span_with(|| format!("factor {k}"));
                let t0 = Instant::now();
                if clock.weight() > 1 {
                    let original = self.blocks[&(k, k)].pool_clone(courier.pool_mut());
                    lu_block_nopivot(self.blocks.get_mut(&(k, k)).expect("diag block missing"));
                    for _ in 1..clock.weight() {
                        let mut copy = original.pool_clone(courier.pool_mut());
                        lu_block_nopivot(&mut copy);
                        copy.reclaim(courier.pool_mut());
                    }
                    original.reclaim(courier.pool_mut());
                } else {
                    lu_block_nopivot(self.blocks.get_mut(&(k, k)).expect("diag block missing"));
                }
                clock.add_busy(t0.elapsed().as_secs_f64());
                clock.charge(1);
                let mut dests = diag_col_dests.clone();
                for d in &l_bcasts[0].dests {
                    if !dests.contains(d) {
                        dests.push(*d);
                    }
                }
                courier.bcast(
                    &dests,
                    k,
                    TAG_DIAG,
                    (k, k),
                    &self.blocks[&(k, k)],
                    self.block_bytes,
                )?;
            }
            // Solve one panel block of column k against U11 and
            // broadcast it across its grid row.
            Op::LuSolveL => {
                let _span = courier.span_with(|| format!("panelL {k}"));
                let solved = {
                    let packed: &Matrix = if *diag == self.my {
                        &self.blocks[&(k, k)]
                    } else {
                        courier.obtain(k, TAG_DIAG, (k, k))?
                    };
                    let u11 = upper_from_packed(packed);
                    clock.run(
                        1,
                        || solve_right_upper(&u11, &self.blocks[&a.blk]),
                        || {
                            solve_right_upper(&u11, &self.blocks[&a.blk]);
                        },
                    )
                };
                if let Some(old) = self.blocks.insert(a.blk, solved) {
                    old.reclaim(courier.pool_mut());
                }
                let bc = l_bcasts[1..]
                    .iter()
                    .find(|bc| bc.block == a.blk)
                    .expect("solve action without a plan bcast");
                courier.bcast(
                    &bc.dests,
                    k,
                    TAG_L,
                    a.blk,
                    &self.blocks[&a.blk],
                    self.block_bytes,
                )?;
            }
            // Solve one pivot-row block against L11 and broadcast it
            // down its grid column.
            Op::LuSolveU => {
                let _span = courier.span_with(|| format!("panelU {k}"));
                let solved = {
                    let packed: &Matrix = if *diag == self.my {
                        &self.blocks[&(k, k)]
                    } else {
                        courier.obtain(k, TAG_DIAG, (k, k))?
                    };
                    let l11 = unit_lower_from_packed(packed);
                    clock.run(
                        1,
                        || solve_lower(&l11, &self.blocks[&a.blk], true),
                        || {
                            solve_lower(&l11, &self.blocks[&a.blk], true);
                        },
                    )
                };
                if let Some(old) = self.blocks.insert(a.blk, solved) {
                    old.reclaim(courier.pool_mut());
                }
                let bc = u_bcasts
                    .iter()
                    .find(|bc| bc.block == a.blk)
                    .expect("solve action without a plan bcast");
                courier.bcast(
                    &bc.dests,
                    k,
                    TAG_U,
                    a.blk,
                    &self.blocks[&a.blk],
                    self.block_bytes,
                )?;
            }
            // GEMM update of one owned trailing block.
            Op::LuUpdate => {
                let (bi, bj) = a.blk;
                let mut c = self.blocks.remove(&a.blk).expect("trailing block missing");
                let t0 = Instant::now();
                {
                    let lblk: &Matrix = match self.blocks.get(&(bi, k)) {
                        Some(m) => m,
                        None => courier.get(k, TAG_L, (bi, k)),
                    };
                    let ublk: &Matrix = match self.blocks.get(&(k, bj)) {
                        Some(m) => m,
                        None => courier.get(k, TAG_U, (k, bj)),
                    };
                    gemm(-1.0, lblk, ublk, 1.0, &mut c);
                    for _ in 1..clock.weight() {
                        gemm(-1.0, lblk, ublk, 0.0, &mut self.scratch);
                    }
                }
                clock.add_busy(t0.elapsed().as_secs_f64());
                clock.charge(1);
                courier.step_done(t0.elapsed().as_secs_f64());
                self.blocks.insert(a.blk, c);
            }
            op => unreachable!("non-LU action {op:?} in LU plan"),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_core::{exact, Arrangement};
    use hetgrid_dist::{BlockCyclic, PanelDist, PanelOrdering};
    use hetgrid_linalg::gemm::matmul;

    fn dominant_matrix(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        Matrix::from_fn(n, n, |i, j| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            if i == j {
                v + 2.0 * n as f64
            } else {
                v
            }
        })
    }

    fn check_lu(a: &Matrix, f: &Matrix, tol: f64) {
        let l = unit_lower_from_packed(f);
        let u = upper_from_packed(f);
        let lu = matmul(&l, &u);
        assert!(
            lu.approx_eq(a, tol),
            "A != L*U, max err {}",
            lu.sub(a).max_abs()
        );
    }

    #[test]
    fn lu_cyclic_reconstructs() {
        let nb = 4;
        let r = 3;
        let a = dominant_matrix(nb * r, 1);
        let dist = BlockCyclic::new(2, 2);
        let (f, _) = run_lu(&a, &dist, nb, r, &vec![vec![1; 2]; 2]).unwrap();
        check_lu(&a, &f, 1e-8);
    }

    #[test]
    fn lu_panel_reconstructs() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let dist = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
        let nb = 8;
        let r = 2;
        let a = dominant_matrix(nb * r, 2);
        let w = crate::store::slowdown_weights(&arr);
        let (f, report) = run_lu(&a, &dist, nb, r, &w).unwrap();
        check_lu(&a, &f, 1e-8);
        assert!(report.work_units.iter().flatten().sum::<u64>() > 0);
    }

    #[test]
    fn lu_matches_sequential_factors() {
        // Against the library's blocked LU (which pivots, but a strongly
        // dominant diagonal makes pivoting a no-op).
        let nb = 3;
        let r = 4;
        let a = dominant_matrix(nb * r, 3);
        let dist = BlockCyclic::new(1, 2);
        let (f, _) = run_lu(&a, &dist, nb, r, &vec![vec![1; 2]; 1]).unwrap();
        let seq = hetgrid_linalg::lu::lu_factor(&a).unwrap();
        assert_eq!(seq.swaps, 0, "test premise: no pivoting happened");
        assert!(f.approx_eq(&seq.lu, 1e-8));
    }

    #[test]
    fn lookahead_is_bit_exact_with_in_order() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let dist = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
        let nb = 8;
        let r = 2;
        let a = dominant_matrix(nb * r, 9);
        let w = crate::store::slowdown_weights(&arr);
        let t = ChannelTransport;
        let run = |lookahead| {
            run_lu_on_cfg(&t, &a, &dist, nb, r, &w, ExecConfig { lookahead })
                .unwrap()
                .0
        };
        let inorder = run(0);
        for depth in [1, 3] {
            assert!(
                run(depth).approx_eq(&inorder, 0.0),
                "depth {depth} diverged from in-order"
            );
        }
    }

    /// Bench guard for the `lu/skewed-2x2` regression (BENCH_exec.json:
    /// 0.883x best speedup for every depth > 0): the skewed bench grid
    /// must clamp to the in-order schedule, and the clamp must not leak
    /// into the balanced or mildly heterogeneous configurations whose
    /// lookahead speedups the bench table certifies.
    #[test]
    fn skewed_grid_clamps_lu_lookahead() {
        // The bench's skewed-2x2 arrangement: hetero ratio 5.0.
        let skewed = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let w = crate::store::slowdown_weights(&skewed);
        for depth in [1, 2, 4] {
            assert_eq!(effective_lu_lookahead(depth, &w), 0, "depth {depth}");
        }
        // Balanced and mildly heterogeneous grids keep their window.
        let uniform = vec![vec![1u64; 2]; 2];
        let mild = vec![vec![1, 2], vec![2, 3]];
        for depth in [0, 1, 2, 4] {
            assert_eq!(effective_lu_lookahead(depth, &uniform), depth);
            assert_eq!(effective_lu_lookahead(depth, &mild), depth);
        }
        // The clamped run still factors correctly.
        let nb = 4;
        let r = 2;
        let a = dominant_matrix(nb * r, 11);
        let dist = BlockCyclic::new(2, 2);
        let (f, _) = run_lu_on_cfg(
            &ChannelTransport,
            &a,
            &dist,
            nb,
            r,
            &w,
            ExecConfig { lookahead: 4 },
        )
        .unwrap();
        check_lu(&a, &f, 1e-8);
    }

    #[test]
    fn single_processor_lu() {
        let a = dominant_matrix(8, 4);
        let dist = BlockCyclic::new(1, 1);
        let (f, _) = run_lu(&a, &dist, 4, 2, &[vec![1]]).unwrap();
        check_lu(&a, &f, 1e-9);
    }
}
