//! Threaded distributed right-looking LU factorization (without
//! pivoting): the [`hetgrid_plan::factor_plan`] step stream interpreted
//! over real threads, following the ScaLAPACK structure of Section
//! 3.2.1 — factor the diagonal block, solve the pivot block column and
//! row, broadcast them along the plan's destination lists, rank-`r`
//! update the trailing submatrix.
//!
//! Pivoting is omitted (the executor demonstrates distribution
//! correctness and load balance; feed it diagonally dominant matrices).
//! The invariant checked by the tests is the factorization itself:
//! gathering the in-place result and splitting it into unit-lower `L`
//! and upper `U` must reproduce the input, `A = L * U`.

use crate::step::{check_weights, gather_result, run_grid, Courier, WorkClock};
use crate::store::{BlockStore, DistributedMatrix, ExecReport};
use crate::transport::{ChannelTransport, Closed, ExecError, Transport};
use hetgrid_dist::BlockDist;
use hetgrid_linalg::gemm::gemm;
use hetgrid_linalg::tri::{
    solve_lower, solve_right_upper, unit_lower_from_packed, upper_from_packed,
};
use hetgrid_linalg::Matrix;
use hetgrid_plan::{Plan, Step};
use std::time::Instant;

/// Message tags: packed diagonal factors, solved L blocks, solved U
/// blocks.
const TAG_DIAG: u8 = 0;
const TAG_L: u8 = 1;
const TAG_U: u8 = 2;

/// Factors `a` in place (no pivoting) over the distribution; returns the
/// gathered packed factors (strictly lower = `L` with unit diagonal,
/// upper = `U`) and the execution report, or a typed [`ExecError`] if a
/// worker dropped out mid-run.
///
/// # Panics
/// Panics if sizes mismatch; numerical breakdown (a zero diagonal block
/// pivot) panics inside the block factorization.
pub fn run_lu(
    a: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> Result<(Matrix, ExecReport), ExecError> {
    run_lu_on(&ChannelTransport, a, dist, nb, r, weights)
}

/// [`run_lu`] over an explicit [`Transport`] (the harness injects its
/// fault-injecting virtual transport here).
///
/// # Panics
/// Panics like [`run_lu`].
pub fn run_lu_on(
    transport: &impl Transport,
    a: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> Result<(Matrix, ExecReport), ExecError> {
    let (p, q) = dist.grid();
    check_weights(weights, (p, q), "run_lu");
    let da = DistributedMatrix::scatter(a, dist, nb, r);
    let plan = hetgrid_plan::factor_plan(dist, nb);

    let (stores, report) = run_grid(transport, (p, q), weights, |me, courier, clock| {
        worker(&plan, r, me, da.stores[me].clone(), courier, clock)
    })?;
    let f = gather_result(stores, (nb, nb), r, "run_lu");
    Ok((f, report))
}

/// Unblocked LU without pivoting of a single block, in place, packed.
fn lu_block_nopivot(a: &mut Matrix) {
    let n = a.rows();
    for k in 0..n {
        let pivot = a[(k, k)];
        assert!(
            pivot.abs() > 1e-300,
            "run_lu: zero pivot (matrix needs pivoting; use a diagonally dominant input)"
        );
        for i in k + 1..n {
            let m = a[(i, k)] / pivot;
            a[(i, k)] = m;
            for j in k + 1..n {
                let v = a[(k, j)];
                a[(i, j)] -= m * v;
            }
        }
    }
}

fn worker(
    plan: &Plan,
    r: usize,
    me: usize,
    mut blocks: BlockStore,
    courier: &mut Courier<Matrix>,
    clock: &mut WorkClock,
) -> Result<BlockStore, Closed> {
    let (_, q) = plan.grid;
    let my = (me / q, me % q);
    let mut scratch = Matrix::zeros(r, r);
    let block_bytes = (r * r * std::mem::size_of::<f64>()) as u64;

    for step in &plan.steps {
        let Step::Factor {
            k,
            diag,
            diag_col_dests,
            l_bcasts,
            trsm,
            u_bcasts,
            ..
        } = step
        else {
            panic!("run_lu: non-factor step in plan")
        };
        let k = *k;

        // --- 1. Diagonal block factorization; the packed factors go to
        // the panel-column owners (for the L solves) and the pivot-row
        // owners (for the U solves), one message per distinct owner.
        if *diag == my {
            let _factor_span = courier.span(format!("factor {k}"));
            let original = blocks[&(k, k)].clone();
            clock.run(
                1,
                || lu_block_nopivot(blocks.get_mut(&(k, k)).expect("diag block missing")),
                || {
                    let mut copy = original.clone();
                    lu_block_nopivot(&mut copy);
                },
            );
            let packed = blocks[&(k, k)].clone();
            let mut dests = diag_col_dests.clone();
            for d in &l_bcasts[0].dests {
                if !dests.contains(d) {
                    dests.push(*d);
                }
            }
            courier.bcast(&dests, k, TAG_DIAG, (k, k), &packed, block_bytes)?;
        }

        // --- 2. Get the diagonal factors if I need them this step.
        let i_own_col = l_bcasts[1..].iter().any(|bc| bc.src == my);
        let i_own_row = trsm.iter().any(|w| w.owner == my);
        let packed_diag: Option<Matrix> = if *diag == my {
            Some(blocks[&(k, k)].clone())
        } else if i_own_col || i_own_row {
            Some(courier.obtain(k, TAG_DIAG, (k, k))?.clone())
        } else {
            None
        };

        // --- 3. Solve and broadcast my L blocks of column k.
        if i_own_col {
            let _panel_span = courier.span(format!("panelL {k}"));
            let u11 = upper_from_packed(packed_diag.as_ref().expect("diag needed"));
            for bc in &l_bcasts[1..] {
                if bc.src != my {
                    continue;
                }
                let solved = clock.run(
                    1,
                    || solve_right_upper(&u11, &blocks[&bc.block]),
                    || {
                        solve_right_upper(&u11, &blocks[&bc.block]);
                    },
                );
                blocks.insert(bc.block, solved.clone());
                courier.bcast(&bc.dests, k, TAG_L, bc.block, &solved, block_bytes)?;
            }
        }

        // --- 4. Solve and broadcast my U blocks of row k.
        if i_own_row {
            let _panel_span = courier.span(format!("panelU {k}"));
            let l11 = unit_lower_from_packed(packed_diag.as_ref().expect("diag needed"));
            for bc in u_bcasts {
                if bc.src != my {
                    continue;
                }
                let solved = clock.run(
                    1,
                    || solve_lower(&l11, &blocks[&bc.block], true),
                    || {
                        solve_lower(&l11, &blocks[&bc.block], true);
                    },
                );
                blocks.insert(bc.block, solved.clone());
                courier.bcast(&bc.dests, k, TAG_U, bc.block, &solved, block_bytes)?;
            }
        }

        // --- 5. Trailing update of my blocks.
        let mut trailing: Vec<(usize, usize)> = blocks
            .keys()
            .copied()
            .filter(|&(bi, bj)| bi > k && bj > k)
            .collect();
        trailing.sort_unstable();
        if !trailing.is_empty() {
            {
                let _wait_span = courier.span(format!("wait {k}"));
                let need_l = trailing
                    .iter()
                    .map(|&(bi, _)| bi)
                    .filter(|&bi| !blocks.contains_key(&(bi, k)))
                    .map(|bi| (k, TAG_L, (bi, k)));
                let need_u = trailing
                    .iter()
                    .map(|&(_, bj)| bj)
                    .filter(|&bj| !blocks.contains_key(&(k, bj)))
                    .map(|bj| (k, TAG_U, (k, bj)));
                courier.wait_all(need_l.chain(need_u))?;
            }
            let mut update_span = courier.span(format!("update {k}"));
            let units_before = clock.units;
            let t_update = Instant::now();
            for &(bi, bj) in &trailing {
                let lblk = match blocks.get(&(bi, k)) {
                    Some(m) => m.clone(),
                    None => courier.get(k, TAG_L, (bi, k)).clone(),
                };
                let ublk = match blocks.get(&(k, bj)) {
                    Some(m) => m.clone(),
                    None => courier.get(k, TAG_U, (k, bj)).clone(),
                };
                clock.run(
                    1,
                    || {
                        let c = blocks.get_mut(&(bi, bj)).expect("trailing block missing");
                        gemm(-1.0, &lblk, &ublk, 1.0, c);
                    },
                    || gemm(-1.0, &lblk, &ublk, 0.0, &mut scratch),
                );
            }
            courier.step_done(t_update.elapsed().as_secs_f64());
            if let Some(g) = update_span.as_mut() {
                g.arg_u64("units", clock.units - units_before);
            }
        }
        courier.end_step(k);
    }

    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_core::{exact, Arrangement};
    use hetgrid_dist::{BlockCyclic, PanelDist, PanelOrdering};
    use hetgrid_linalg::gemm::matmul;

    fn dominant_matrix(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        Matrix::from_fn(n, n, |i, j| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            if i == j {
                v + 2.0 * n as f64
            } else {
                v
            }
        })
    }

    fn check_lu(a: &Matrix, f: &Matrix, tol: f64) {
        let l = unit_lower_from_packed(f);
        let u = upper_from_packed(f);
        let lu = matmul(&l, &u);
        assert!(
            lu.approx_eq(a, tol),
            "A != L*U, max err {}",
            lu.sub(a).max_abs()
        );
    }

    #[test]
    fn lu_cyclic_reconstructs() {
        let nb = 4;
        let r = 3;
        let a = dominant_matrix(nb * r, 1);
        let dist = BlockCyclic::new(2, 2);
        let (f, _) = run_lu(&a, &dist, nb, r, &vec![vec![1; 2]; 2]).unwrap();
        check_lu(&a, &f, 1e-8);
    }

    #[test]
    fn lu_panel_reconstructs() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let dist = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
        let nb = 8;
        let r = 2;
        let a = dominant_matrix(nb * r, 2);
        let w = crate::store::slowdown_weights(&arr);
        let (f, report) = run_lu(&a, &dist, nb, r, &w).unwrap();
        check_lu(&a, &f, 1e-8);
        assert!(report.work_units.iter().flatten().sum::<u64>() > 0);
    }

    #[test]
    fn lu_matches_sequential_factors() {
        // Against the library's blocked LU (which pivots, but a strongly
        // dominant diagonal makes pivoting a no-op).
        let nb = 3;
        let r = 4;
        let a = dominant_matrix(nb * r, 3);
        let dist = BlockCyclic::new(1, 2);
        let (f, _) = run_lu(&a, &dist, nb, r, &vec![vec![1; 2]; 1]).unwrap();
        let seq = hetgrid_linalg::lu::lu_factor(&a).unwrap();
        assert_eq!(seq.swaps, 0, "test premise: no pivoting happened");
        assert!(f.approx_eq(&seq.lu, 1e-8));
    }

    #[test]
    fn single_processor_lu() {
        let a = dominant_matrix(8, 4);
        let dist = BlockCyclic::new(1, 1);
        let (f, _) = run_lu(&a, &dist, 4, 2, &[vec![1]]).unwrap();
        check_lu(&a, &f, 1e-9);
    }
}
