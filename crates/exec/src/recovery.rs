//! Elastic-grid recovery: resume a distributed kernel run after a
//! processor crashes out of (or joins into) the grid mid-run.
//!
//! The model is checkpoint-restart over the executor's step plans. An
//! epoch runs a kernel's plan from step `start` with every namespace-0
//! block write journaled into a [`CheckpointLog`] (the stand-in for a
//! reliable checkpoint store: the log lives in the driver, outside the
//! worker threads, so it survives any worker's death). A
//! fault-injecting transport kills a worker only at a *retirement
//! boundary* (the [`Endpoint::mark`](crate::transport::Endpoint::mark)
//! beacon), so when an epoch aborts the driver can compute the global
//! retirement frontier `F = min_i retired_i` — the *consistent cut*:
//! every step `< F` is fully executed on every processor, and the
//! journaled state at `F` (latest logged version of each block below
//! the cut, else the epoch baseline) is exactly what an in-order run
//! would hold after step `F - 1`.
//!
//! Recovery then:
//!
//! 1. rolls the distributed matrix back to the cut via
//!    [`CheckpointLog::state_at`];
//! 2. asks the caller's `resolve` hook for the survivor grid — a new
//!    `p' x q'` shape, a re-solved distribution and weight table, and a
//!    `proc_map` from old to new linear processor ids;
//! 3. places every block: survivors keep theirs (at their new linear
//!    id), blocks of the dead processor are restored from the log
//!    directly at their new owner;
//! 4. hands the placement to the caller's `redistribute` hook
//!    (`hetgrid-adapt`'s incremental mover) to migrate the survivor
//!    blocks the re-solved distribution wants elsewhere;
//! 5. re-derives the step plan for the survivor distribution and
//!    resumes execution at step `F` with a fresh journal.
//!
//! Because every plan's communication is intra-step (every `needs` key
//! names a same-step message) and per-block arithmetic order is fixed
//! by program order regardless of the distribution, the resumed epoch
//! is self-contained and the final result is **bit-exact** against the
//! fault-free run — which is what the harness's `check_recovery`
//! oracle asserts.
//!
//! The dependency layering keeps this module free of `hetgrid-adapt`
//! and the harness: both the fault-event source and the redistribution
//! engine arrive as [`RecoveryHooks`] closures.

use crate::cholesky::{cholesky_seg, gather_cholesky};
use crate::lu::lu_seg;
use crate::mm::mm_seg;
use crate::qr::qr_seg;
use crate::step::{gather_result, ExecConfig};
use crate::store::{BlockStore, CheckpointLog, DistributedMatrix, ExecReport};
use crate::transport::{ExecError, Transport};
use hetgrid_dist::BlockDist;
use hetgrid_linalg::Matrix;
use std::sync::Mutex;

/// A grid-membership fault observed by the transport, always anchored
/// at a retirement boundary (the step the victim had just retired when
/// the fault fired).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridFault {
    /// Processor `proc` (linear id in the grid the fault fired on)
    /// died after retiring step `at_step`.
    Crash {
        /// Linear id of the dead processor.
        proc: usize,
        /// The last step the processor retired before dying.
        at_step: usize,
    },
    /// A new processor asked to join; the grid pauses after retiring
    /// step `at_step` to resize.
    Join {
        /// The retirement boundary the grid paused at.
        at_step: usize,
    },
}

/// The caller's answer to a [`GridFault`]: the grid to continue on.
pub struct SurvivorGrid {
    /// Re-solved block distribution over the new grid (its
    /// [`BlockDist::grid`] is the new shape).
    pub dist: Box<dyn BlockDist + Send + Sync>,
    /// Slowdown weights for the new grid.
    pub weights: Vec<Vec<u64>>,
    /// Old linear processor id to new linear id; `None` for a
    /// processor that died. A join maps every old id and grows the
    /// id space.
    pub proc_map: Vec<Option<usize>>,
}

/// Environment hooks for [`run_recovery`], supplied by the caller so
/// this crate stays independent of the harness (fault events) and
/// `hetgrid-adapt` (redistribution).
pub struct RecoveryHooks<'h> {
    /// All grid faults the transport has injected so far, in firing
    /// order. Queried after an epoch aborts; an abort with no new
    /// fault is a genuine failure and is returned as the original
    /// [`ExecError`].
    pub events: Box<dyn Fn() -> Vec<GridFault> + 'h>,
    /// Solves the load-balancing problem for the post-fault grid.
    pub resolve: Box<dyn Fn(&GridFault) -> SurvivorGrid + 'h>,
    /// Moves blocks from the first distribution to the second (both on
    /// the same grid), returning how many blocks moved. Wired to
    /// `hetgrid_adapt::redistribute` by real callers.
    pub redistribute:
        Box<dyn Fn(&mut DistributedMatrix, &dyn BlockDist, &dyn BlockDist) -> usize + 'h>,
}

/// What to factor (or multiply) under the recovery driver.
pub enum RecoveryInput<'a> {
    /// `C = A * B` on square `nb x nb` block matrices.
    Mm {
        /// Left operand.
        a: &'a Matrix,
        /// Right operand.
        b: &'a Matrix,
    },
    /// Right-looking LU (no pivoting).
    Lu {
        /// The matrix to factor (diagonally dominant).
        a: &'a Matrix,
    },
    /// Right-looking Cholesky of an SPD matrix.
    Cholesky {
        /// The SPD matrix to factor.
        a: &'a Matrix,
    },
    /// Fan-in Householder QR.
    Qr {
        /// The matrix to factor.
        a: &'a Matrix,
    },
}

/// What happened across the epochs of a recovered run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Processor crashes recovered from.
    pub crashes: usize,
    /// Processor joins absorbed.
    pub joins: usize,
    /// The consistent cut of the last fault (the step the final epoch
    /// resumed at).
    pub frontier: usize,
    /// Blocks that lived on a dead processor at its cut and were
    /// restored from the checkpoint store.
    pub dead_blocks: usize,
    /// Blocks the incremental redistribution moved between survivors.
    pub blocks_moved: usize,
    /// Retired-step progress discarded by rolling back to the cut
    /// (work replayed by the next epoch).
    pub replayed_steps: usize,
}

/// A recovered run's outputs: the gathered result (`C`, the packed `F`
/// or `L` factors, or QR's packed factors), the Householder scalars
/// for QR, the final epoch's measurements, and the recovery stats.
pub struct RecoveryOutput {
    /// Gathered result matrix.
    pub result: Matrix,
    /// QR's Householder scalars (`None` for the other kernels).
    pub taus: Option<Vec<f64>>,
    /// The final (completing) epoch's execution report.
    pub report: ExecReport,
    /// What recovery did.
    pub stats: RecoveryStats,
}

/// A [`BlockDist`] view of "where the blocks physically are" right
/// after a fault, expressed on the *new* grid: a surviving block sits
/// at its old owner's new linear id, a dead processor's block is
/// restored from the checkpoint store directly at the address the new
/// distribution wants it. Feeding this as the `from` side of the
/// redistribution keeps both sides on the same grid (which the
/// incremental mover requires) while moving only survivor blocks.
struct RemappedDist<'a> {
    old: &'a dyn BlockDist,
    new: &'a dyn BlockDist,
    proc_map: &'a [Option<usize>],
}

impl BlockDist for RemappedDist<'_> {
    fn grid(&self) -> (usize, usize) {
        self.new.grid()
    }

    fn owner(&self, bi: usize, bj: usize) -> (usize, usize) {
        let (oi, oj) = self.old.owner(bi, bj);
        let (_, oq) = self.old.grid();
        match self.proc_map[oi * oq + oj] {
            Some(id) => {
                let (_, nq) = self.new.grid();
                (id / nq, id % nq)
            }
            None => self.new.owner(bi, bj),
        }
    }

    fn is_cartesian(&self) -> bool {
        false
    }
}

/// Per-kernel distributed state carried across epochs. `da` (and MM's
/// `dc`) always hold the consistent state at the current epoch's start
/// step on the current grid.
enum KernelState {
    Lu {
        da: DistributedMatrix,
    },
    Cholesky {
        da: DistributedMatrix,
    },
    Qr {
        da: DistributedMatrix,
        taus: Mutex<Vec<Vec<f64>>>,
    },
    Mm {
        da: DistributedMatrix,
        db: DistributedMatrix,
        dc: DistributedMatrix,
    },
}

impl KernelState {
    /// The matrix whose writes are journaled (the factored matrix, or
    /// C for MM).
    fn journaled(&self) -> &DistributedMatrix {
        match self {
            KernelState::Lu { da } | KernelState::Cholesky { da } | KernelState::Qr { da, .. } => {
                da
            }
            KernelState::Mm { dc, .. } => dc,
        }
    }

    fn journaled_mut(&mut self) -> &mut DistributedMatrix {
        match self {
            KernelState::Lu { da } | KernelState::Cholesky { da } | KernelState::Qr { da, .. } => {
                da
            }
            KernelState::Mm { dc, .. } => dc,
        }
    }
}

/// Runs a kernel to completion over `transport`, surviving any grid
/// faults the transport injects by checkpoint-restarting on the
/// survivor grid (see the module docs for the protocol).
///
/// The matrices are `nb x nb` blocks of size `r`, initially laid out
/// by `dist` with slowdown `weights`. Returns the gathered result —
/// bit-exact against the fault-free run — or the original
/// [`ExecError`] when an epoch aborts without a fault event (a genuine
/// failure, e.g. an un-recovered crash).
///
/// # Panics
/// Panics if a fault's survivor grid loses blocks (conservation is
/// asserted after every redistribution) or on the size mismatches the
/// underlying kernels reject.
pub fn run_recovery(
    transport: &impl Transport,
    input: RecoveryInput<'_>,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
    cfg: ExecConfig,
    hooks: &RecoveryHooks<'_>,
) -> Result<RecoveryOutput, ExecError> {
    let (p, q) = dist.grid();
    let mut state = match &input {
        RecoveryInput::Mm { a, b } => KernelState::Mm {
            da: DistributedMatrix::scatter(a, dist, nb, r),
            db: DistributedMatrix::scatter(b, dist, nb, r),
            dc: DistributedMatrix::zeros(dist, nb, r),
        },
        RecoveryInput::Lu { a } => KernelState::Lu {
            da: DistributedMatrix::scatter(a, dist, nb, r),
        },
        RecoveryInput::Cholesky { a } => KernelState::Cholesky {
            da: DistributedMatrix::scatter(a, dist, nb, r),
        },
        RecoveryInput::Qr { a } => KernelState::Qr {
            da: DistributedMatrix::scatter(a, dist, nb, r),
            taus: Mutex::new(vec![Vec::new(); nb]),
        },
    };

    // The current epoch's grid: `None` means the initial `dist` /
    // `weights`, `Some` a survivor grid installed by recovery.
    let mut survivor: Option<SurvivorGrid> = None;
    let mut start = 0usize;
    let mut log = CheckpointLog::new(p * q, 0);
    let mut stats = RecoveryStats::default();
    let mut handled = 0usize;

    loop {
        let (cur_dist, cur_weights): (&(dyn BlockDist + Sync), &[Vec<u64>]) = match &survivor {
            Some(s) => (&*s.dist, &s.weights),
            None => (dist, weights),
        };
        let outcome = match &state {
            KernelState::Lu { da } => {
                lu_seg(transport, da, cur_dist, cur_weights, cfg, start, Some(&log))
            }
            KernelState::Cholesky { da } => {
                cholesky_seg(transport, da, cur_dist, cur_weights, cfg, start, Some(&log))
            }
            KernelState::Qr { da, taus } => qr_seg(
                transport,
                da,
                cur_dist,
                cur_weights,
                cfg,
                start,
                Some(&log),
                taus,
            ),
            KernelState::Mm { da, db, dc } => mm_seg(
                transport,
                da,
                db,
                dc,
                cur_dist,
                cur_weights,
                cfg,
                start,
                Some(&log),
            ),
        };

        let err = match outcome {
            Ok((stores, report)) => {
                let result = match &state {
                    KernelState::Cholesky { .. } => gather_cholesky(stores, nb, r),
                    KernelState::Lu { .. } => gather_result(stores, (nb, nb), r, "run_lu"),
                    KernelState::Mm { .. } => gather_result(stores, (nb, nb), r, "run_mm"),
                    KernelState::Qr { .. } => gather_result(stores, (nb, nb), r, "run_qr"),
                };
                let taus = match state {
                    KernelState::Qr { taus, .. } => {
                        let flat: Vec<f64> = taus
                            .into_inner()
                            .unwrap_or_else(|e| e.into_inner())
                            .into_iter()
                            .flatten()
                            .collect();
                        assert_eq!(
                            flat.len(),
                            nb * r,
                            "run_recovery: missing Householder scalars"
                        );
                        Some(flat)
                    }
                    _ => None,
                };
                return Ok(RecoveryOutput {
                    result,
                    taus,
                    report,
                    stats,
                });
            }
            Err(e) => e,
        };

        // The epoch aborted. A new fault event means the transport
        // killed (or paused) us on purpose; none means the grid really
        // broke, and the error propagates untouched.
        let faults = (hooks.events)();
        if faults.len() <= handled {
            return Err(err);
        }
        let fault = faults[handled];
        handled = faults.len();

        let frontier = log.frontier();
        let sv = (hooks.resolve)(&fault);
        let (np, nq) = sv.dist.grid();
        let (op, oq) = cur_dist.grid();
        assert_eq!(
            sv.proc_map.len(),
            op * oq,
            "run_recovery: proc_map does not cover the old grid"
        );

        // Roll the journaled matrix back to the consistent cut.
        let jm = state.journaled();
        let base: BlockStore = jm
            .stores
            .iter()
            .flat_map(|s| s.iter().map(|(&k, v)| (k, v.clone())))
            .collect();
        let cut = log.state_at(frontier, &base);

        // Stats + obs counters, before `sv` moves into place.
        let at_step = match fault {
            GridFault::Crash { proc, at_step } => {
                stats.crashes += 1;
                stats.dead_blocks += base
                    .keys()
                    .filter(|&&(bi, bj)| {
                        let (oi, oj) = cur_dist.owner(bi, bj);
                        oi * oq + oj == proc
                    })
                    .count();
                at_step
            }
            GridFault::Join { at_step } => {
                stats.joins += 1;
                at_step
            }
        };
        stats.frontier = frontier;
        stats.replayed_steps += (at_step + 1).saturating_sub(frontier);

        // Re-place every block of the cut on the new grid: survivors at
        // their mapped id, dead-processor blocks straight at the new
        // distribution's address. Then let the incremental mover settle
        // the survivors the re-solved distribution wants elsewhere.
        let total_blocks = cut.len();
        let mut placed = DistributedMatrix {
            r,
            nb_rows: jm.nb_rows,
            nb_cols: jm.nb_cols,
            stores: vec![BlockStore::new(); np * nq],
            grid: (np, nq),
        };
        {
            let remap = RemappedDist {
                old: cur_dist,
                new: &*sv.dist,
                proc_map: &sv.proc_map,
            };
            for (&(bi, bj), data) in &cut {
                let (i, j) = remap.owner(bi, bj);
                placed.stores[i * nq + j].insert((bi, bj), data.clone());
            }
            let moved = (hooks.redistribute)(&mut placed, &remap, &*sv.dist);
            stats.blocks_moved += moved;
        }
        let placed_count: usize = placed.stores.iter().map(BlockStore::len).sum();
        assert_eq!(
            placed_count, total_blocks,
            "run_recovery: block conservation violated across the grid change"
        );

        let m = hetgrid_obs::metrics();
        match fault {
            GridFault::Crash { .. } => m.counter("exec.recovery.crashes").inc(),
            GridFault::Join { .. } => m.counter("exec.recovery.joins").inc(),
        }
        m.counter("exec.recovery.blocks_moved")
            .add(stats.blocks_moved as u64);
        m.counter("exec.recovery.replayed_steps")
            .add((at_step + 1).saturating_sub(frontier) as u64);
        // Mark the epoch boundary on the recovery track and dump the
        // flight rings: the spans leading up to the fault are exactly
        // the forensics a postmortem wants, and the rings record them
        // even when tracing export was never enabled.
        let note = format!(
            "recovery epoch: {} -> {}x{} grid, resume at step {}",
            match fault {
                GridFault::Crash { proc, .. } => format!("crash of proc {proc}"),
                GridFault::Join { .. } => "join".to_string(),
            },
            np,
            nq,
            frontier
        );
        hetgrid_obs::event!(hetgrid_obs::trace::track("recovery"), "{}", note);
        hetgrid_obs::flight::dump(&note);

        *state.journaled_mut() = placed;
        // MM's operands are read-only: re-scatter them on the new
        // distribution instead of journaling them.
        if let (KernelState::Mm { da, db, .. }, RecoveryInput::Mm { a, b }) = (&mut state, &input) {
            *da = DistributedMatrix::scatter(a, &*sv.dist, nb, r);
            *db = DistributedMatrix::scatter(b, &*sv.dist, nb, r);
        }

        survivor = Some(sv);
        start = frontier;
        log = CheckpointLog::new(np * nq, frontier);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_dist::BlockCyclic;

    /// A remapped view with a dead processor: survivor blocks follow
    /// the proc_map, the dead processor's blocks land wherever the new
    /// distribution puts them.
    #[test]
    fn remapped_dist_maps_survivors_and_rehomes_dead_blocks() {
        // Old 2x2 cyclic grid; processor (0,1) (linear 1) dies, the
        // survivors renumber to a 1x3 row: 0->0, 2->1, 3->2.
        let old = BlockCyclic::new(2, 2);
        let new = BlockCyclic::new(1, 3);
        let proc_map = vec![Some(0), None, Some(1), Some(2)];
        let remap = RemappedDist {
            old: &old,
            new: &new,
            proc_map: &proc_map,
        };
        assert_eq!(remap.grid(), (1, 3));
        // (0,0): old owner (0,0) = linear 0 -> new linear 0 = (0,0).
        assert_eq!(remap.owner(0, 0), (0, 0));
        // (1,0): old owner (1,0) = linear 2 -> new linear 1 = (0,1).
        assert_eq!(remap.owner(1, 0), (0, 1));
        // (1,1): old owner (1,1) = linear 3 -> new linear 2 = (0,2).
        assert_eq!(remap.owner(1, 1), (0, 2));
        // (0,1): old owner (0,1) is dead -> new dist's address.
        assert_eq!(remap.owner(0, 1), new.owner(0, 1));
        assert!(!remap.is_cartesian());
    }
}
