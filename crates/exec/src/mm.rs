//! Threaded distributed outer-product matrix multiplication: the
//! [`hetgrid_plan::mm_rect_plan`] step stream interpreted over real
//! threads (horizontal broadcasts of the pivot block column of `A`,
//! vertical broadcasts of the pivot block row of `B`, Section 3.1.1).
//! Heterogeneity is emulated by integer *slowdown weights*: processor
//! `(i, j)` repeats every block kernel `w_ij` times.
//!
//! Under the lookahead driver each step is two actions: a critical
//! `MmSend` (no dependencies — the pivot panels of step `k + 1` can go
//! out while step `k`'s update still runs) and one `MmUpdate` touching
//! every owned C block, so updates of consecutive steps stay in order
//! per block while communication overlaps compute.

use crate::pool::PoolClone;
use crate::step::{
    check_weights, gather_result, run_grid, run_steps, Action, Courier, ExecConfig, Journal, Op,
    StepInterp, WorkClock,
};
use crate::store::{BlockStore, CheckpointLog, DistributedMatrix, ExecReport};
use crate::transport::{ChannelTransport, Closed, ExecError, Transport};
use hetgrid_dist::BlockDist;
use hetgrid_linalg::gemm::gemm;
use hetgrid_linalg::Matrix;
use hetgrid_plan::{Plan, Step};
use std::sync::Arc;
use std::time::Instant;

/// Message tags: a block of `A` or of `B`. Payloads are `Arc`-shared: a
/// broadcast clones the block once and each recipient only bumps the
/// refcount, so fanning a pivot block out to a whole row or column of
/// the grid costs one deep copy, not one per destination.
const TAG_A: u8 = 0;
const TAG_B: u8 = 1;

/// Runs `C = A * B` on `nb x nb` blocks of size `r`, distributed by
/// `dist`, with per-processor slowdown `weights` (block kernels repeated
/// `w_ij` times).
///
/// Returns the gathered result and per-processor measurements, or a
/// typed [`ExecError`] if a worker dropped out mid-run.
///
/// # Panics
/// Panics if matrix sizes do not equal `nb * r` or the weights table
/// does not match the grid.
pub fn run_mm(
    a: &Matrix,
    b: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> Result<(Matrix, ExecReport), ExecError> {
    run_mm_rect(a, b, dist, (nb, nb, nb), r, weights)
}

/// [`run_mm`] over an explicit [`Transport`] (the harness injects its
/// fault-injecting virtual transport here).
///
/// # Panics
/// Panics on size mismatches, like [`run_mm`].
pub fn run_mm_on(
    transport: &impl Transport,
    a: &Matrix,
    b: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> Result<(Matrix, ExecReport), ExecError> {
    run_mm_rect_on(transport, a, b, dist, (nb, nb, nb), r, weights)
}

/// [`run_mm_on`] with explicit executor tuning (lookahead depth).
///
/// # Panics
/// Panics on size mismatches, like [`run_mm`].
pub fn run_mm_on_cfg(
    transport: &impl Transport,
    a: &Matrix,
    b: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
    cfg: ExecConfig,
) -> Result<(Matrix, ExecReport), ExecError> {
    run_mm_rect_on_cfg(transport, a, b, dist, (nb, nb, nb), r, weights, cfg)
}

/// Rectangular variant: `C(mb x nb) = A(mb x kb) * B(kb x nb)` in `r`-sized
/// blocks, all three matrices laid out by the same distribution.
///
/// # Panics
/// Panics on size mismatches, like [`run_mm`].
pub fn run_mm_rect(
    a: &Matrix,
    b: &Matrix,
    dist: &(dyn BlockDist + Sync),
    dims: (usize, usize, usize),
    r: usize,
    weights: &[Vec<u64>],
) -> Result<(Matrix, ExecReport), ExecError> {
    run_mm_rect_on(&ChannelTransport, a, b, dist, dims, r, weights)
}

/// [`run_mm_rect`] over an explicit [`Transport`].
///
/// # Panics
/// Panics on size mismatches, like [`run_mm`].
pub fn run_mm_rect_on(
    transport: &impl Transport,
    a: &Matrix,
    b: &Matrix,
    dist: &(dyn BlockDist + Sync),
    dims: (usize, usize, usize),
    r: usize,
    weights: &[Vec<u64>],
) -> Result<(Matrix, ExecReport), ExecError> {
    run_mm_rect_on_cfg(
        transport,
        a,
        b,
        dist,
        dims,
        r,
        weights,
        ExecConfig::default(),
    )
}

/// [`run_mm_rect_on`] with explicit executor tuning (lookahead depth).
///
/// # Panics
/// Panics on size mismatches, like [`run_mm`].
pub fn run_mm_rect_on_cfg(
    transport: &impl Transport,
    a: &Matrix,
    b: &Matrix,
    dist: &(dyn BlockDist + Sync),
    (mb, nb, kb): (usize, usize, usize),
    r: usize,
    weights: &[Vec<u64>],
    cfg: ExecConfig,
) -> Result<(Matrix, ExecReport), ExecError> {
    let (p, q) = dist.grid();
    check_weights(weights, (p, q), "run_mm");
    assert_eq!(a.shape(), (mb * r, kb * r), "run_mm: A shape mismatch");
    assert_eq!(b.shape(), (kb * r, nb * r), "run_mm: B shape mismatch");
    let da = DistributedMatrix::scatter_rect(a, dist, mb, kb, r);
    let db = DistributedMatrix::scatter_rect(b, dist, kb, nb, r);
    let dc = DistributedMatrix::zeros_rect(dist, mb, nb, r);
    let (stores, report) = mm_seg(transport, &da, &db, &dc, dist, weights, cfg, 0, None)?;
    let c = gather_result(stores, (mb, nb), r, "run_mm");
    Ok((c, report))
}

/// One *epoch* of the MM execution: runs the step plan from `start` to
/// completion over an already-scattered `A`, `B` and a C *baseline*
/// (`dc` — zeros for a fresh run, the checkpointed state when resuming
/// after a grid fault), optionally journaling every C-block write into
/// `journal`. The fresh-run entry points wrap this with `start = 0`, a
/// zero baseline and no journal.
#[allow(clippy::too_many_arguments)]
pub(crate) fn mm_seg(
    transport: &impl Transport,
    da: &DistributedMatrix,
    db: &DistributedMatrix,
    dc: &DistributedMatrix,
    dist: &(dyn BlockDist + Sync),
    weights: &[Vec<u64>],
    cfg: ExecConfig,
    start: usize,
    journal: Option<&CheckpointLog>,
) -> Result<(Vec<BlockStore>, ExecReport), ExecError> {
    let (p, q) = dist.grid();
    check_weights(weights, (p, q), "run_mm");
    let (mb, kb) = (da.nb_rows, da.nb_cols);
    let nb = db.nb_cols;
    let r = da.r;
    let plan = hetgrid_plan::mm_rect_plan(dist, (mb, nb, kb));
    // Owned C blocks per processor (same layout as A and B).
    let owned_c: Vec<Vec<(usize, usize)>> = (0..p * q)
        .map(|me| {
            let mut v: Vec<(usize, usize)> = dc.stores[me].keys().copied().collect();
            v.sort_unstable();
            v
        })
        .collect();

    run_grid(transport, (p, q), weights, |me, courier, clock| {
        let my = (me / q, me % q);
        let mut interp = MmInterp {
            plan: &plan,
            my,
            owned: &owned_c[me],
            my_a: &da.stores[me],
            my_b: &db.stores[me],
            c_blocks: dc.stores[me].clone(),
            scratch: Matrix::zeros(r, r),
            block_bytes: (r * r * std::mem::size_of::<f64>()) as u64,
        };
        let j = journal.map(|log| Journal { log, me });
        run_steps(
            &mut interp,
            courier,
            clock,
            cfg.lookahead,
            start,
            j.as_ref(),
        )?;
        Ok(interp.c_blocks)
    })
}

/// One processor's MM actions for `step`: a critical dependency-free
/// broadcast of its pivot panel blocks, then one update of every owned
/// C block needing the foreign pivot blocks of this step.
pub(crate) fn mm_actions(step: &Step, my: (usize, usize), owned: &[(usize, usize)]) -> Vec<Action> {
    let Step::Mm {
        k,
        a_bcasts,
        b_bcasts,
    } = step
    else {
        panic!("run_mm: non-MM step in plan")
    };
    let k = *k;
    let mut out = Vec::new();
    if [a_bcasts, b_bcasts]
        .iter()
        .any(|bcs| bcs.iter().any(|bc| bc.src == my && !bc.dests.is_empty()))
    {
        out.push(Action {
            step: k,
            op: Op::MmSend,
            blk: (k, k),
            crit: true,
            needs: vec![],
            // A/B panel blocks are never written; no conflicts to track.
            reads: vec![],
            writes: vec![],
        });
    }
    if !owned.is_empty() {
        out.push(Action {
            step: k,
            op: Op::MmUpdate,
            blk: (k, k),
            crit: false,
            needs: a_bcasts
                .iter()
                .filter(|bc| bc.dests.contains(&my))
                .map(|bc| (k, TAG_A, bc.block))
                .chain(
                    b_bcasts
                        .iter()
                        .filter(|bc| bc.dests.contains(&my))
                        .map(|bc| (k, TAG_B, bc.block)),
                )
                .collect(),
            reads: vec![],
            writes: owned.iter().map(|&(bi, bj)| (0, bi, bj)).collect(),
        });
    }
    out
}

struct MmInterp<'a> {
    plan: &'a Plan,
    my: (usize, usize),
    owned: &'a [(usize, usize)],
    my_a: &'a BlockStore,
    my_b: &'a BlockStore,
    c_blocks: BlockStore,
    scratch: Matrix,
    block_bytes: u64,
}

impl StepInterp for MmInterp<'_> {
    type P = Arc<Matrix>;

    fn n_steps(&self) -> usize {
        self.plan.steps.len()
    }

    fn emit(&self, k: usize, out: &mut Vec<Action>) {
        out.extend(mm_actions(&self.plan.steps[k], self.my, self.owned));
    }

    fn peek(&self, blk: (usize, usize)) -> Option<&Matrix> {
        self.c_blocks.get(&blk)
    }

    fn execute(
        &mut self,
        a: &Action,
        courier: &mut Courier<Arc<Matrix>>,
        clock: &mut WorkClock,
    ) -> Result<(), Closed> {
        let Step::Mm {
            k,
            a_bcasts,
            b_bcasts,
        } = &self.plan.steps[a.step]
        else {
            unreachable!("emit checked the step kind")
        };
        let k = *k;
        match a.op {
            Op::MmSend => {
                let mut bcast_span = courier.span_with(|| format!("bcast {k}"));
                let sent_before = courier.sent();
                for (tag, bcasts) in [(TAG_A, a_bcasts), (TAG_B, b_bcasts)] {
                    for bc in bcasts {
                        if bc.src != self.my || bc.dests.is_empty() {
                            continue;
                        }
                        let store = if tag == TAG_A { self.my_a } else { self.my_b };
                        // One pool-backed copy; recipients share it via
                        // the Arc and the last drop reshelves it.
                        let payload = Arc::new(store[&bc.block].pool_clone(courier.pool_mut()));
                        courier.bcast(&bc.dests, k, tag, bc.block, &payload, self.block_bytes)?;
                    }
                }
                if let Some(g) = bcast_span.as_mut() {
                    g.arg_u64("msgs", courier.sent() - sent_before);
                }
            }
            Op::MmUpdate => {
                let mut compute_span = courier.span_with(|| format!("compute {k}"));
                let units_before = clock.units;
                let t0 = Instant::now();
                for &(bi, bj) in self.owned {
                    let ablk: &Matrix = match self.my_a.get(&(bi, k)) {
                        Some(m) => m,
                        None => courier.get(k, TAG_A, (bi, k)),
                    };
                    let bblk: &Matrix = match self.my_b.get(&(k, bj)) {
                        Some(m) => m,
                        None => courier.get(k, TAG_B, (k, bj)),
                    };
                    let c = self.c_blocks.get_mut(&(bi, bj)).expect("C block missing");
                    gemm(1.0, ablk, bblk, 1.0, c);
                    for _ in 1..clock.weight() {
                        gemm(1.0, ablk, bblk, 0.0, &mut self.scratch);
                    }
                    clock.charge(1);
                }
                clock.add_busy(t0.elapsed().as_secs_f64());
                courier.step_done(t0.elapsed().as_secs_f64());
                if let Some(g) = compute_span.as_mut() {
                    g.arg_u64("units", clock.units - units_before);
                }
            }
            op => unreachable!("non-MM action {op:?} in MM plan"),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_core::{exact, Arrangement};
    use hetgrid_dist::{BlockCyclic, KlDist, PanelDist, PanelOrdering};
    use hetgrid_linalg::gemm::matmul;

    fn test_matrix(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn uniform_weights(p: usize, q: usize) -> Vec<Vec<u64>> {
        vec![vec![1; q]; p]
    }

    #[test]
    fn mm_matches_sequential_cyclic() {
        let nb = 4;
        let r = 3;
        let a = test_matrix(nb * r, 1);
        let b = test_matrix(nb * r, 2);
        let dist = BlockCyclic::new(2, 2);
        let (c, report) = run_mm(&a, &b, &dist, nb, r, &uniform_weights(2, 2)).unwrap();
        assert!(c.approx_eq(&matmul(&a, &b), 1e-10));
        assert_eq!(
            report.work_units.iter().flatten().sum::<u64>() as usize,
            nb * nb * nb
        );
    }

    #[test]
    fn mm_matches_sequential_panel() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let sol = exact::solve_arrangement(&arr);
        let dist = PanelDist::from_allocation(&arr, &sol.alloc, 4, 3, PanelOrdering::Contiguous);
        let nb = 8;
        let r = 2;
        let a = test_matrix(nb * r, 3);
        let b = test_matrix(nb * r, 4);
        let w = crate::store::slowdown_weights(&arr);
        let (c, report) = run_mm(&a, &b, &dist, nb, r, &w).unwrap();
        assert!(c.approx_eq(&matmul(&a, &b), 1e-10));
        // Weighted work should be close to balanced for this rank-1 grid.
        assert!(
            report.work_imbalance() < 1.4,
            "work imbalance {}",
            report.work_imbalance()
        );
    }

    #[test]
    fn mm_matches_sequential_kl() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let dist = KlDist::new(&arr, 4, 6);
        let nb = 6;
        let r = 2;
        let a = test_matrix(nb * r, 5);
        let b = test_matrix(nb * r, 6);
        let (c, _) = run_mm(&a, &b, &dist, nb, r, &uniform_weights(2, 2)).unwrap();
        assert!(c.approx_eq(&matmul(&a, &b), 1e-10));
    }

    #[test]
    fn lookahead_is_bit_exact_with_in_order() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let sol = exact::solve_arrangement(&arr);
        let dist = PanelDist::from_allocation(&arr, &sol.alloc, 4, 3, PanelOrdering::Contiguous);
        let nb = 8;
        let r = 2;
        let a = test_matrix(nb * r, 11);
        let b = test_matrix(nb * r, 12);
        let w = crate::store::slowdown_weights(&arr);
        let t = ChannelTransport;
        let run = |lookahead| {
            run_mm_on_cfg(&t, &a, &b, &dist, nb, r, &w, ExecConfig { lookahead })
                .unwrap()
                .0
        };
        let inorder = run(0);
        for depth in [1, 3] {
            assert!(
                run(depth).approx_eq(&inorder, 0.0),
                "depth {depth} diverged from in-order"
            );
        }
    }

    #[test]
    fn cyclic_work_imbalance_reflects_heterogeneity() {
        // With slowdown weights on a uniform distribution, the weighted
        // work is imbalanced by ~max(w)/mean(w).
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let dist = BlockCyclic::new(2, 2);
        let nb = 4;
        let r = 2;
        let a = test_matrix(nb * r, 7);
        let b = test_matrix(nb * r, 8);
        let w = crate::store::slowdown_weights(&arr);
        let (_, report) = run_mm(&a, &b, &dist, nb, r, &w).unwrap();
        // weights 1,2,3,6, equal counts -> imbalance 6 / 3 = 2.
        assert!((report.work_imbalance() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_processor() {
        let a = test_matrix(6, 9);
        let b = test_matrix(6, 10);
        let dist = BlockCyclic::new(1, 1);
        let (c, report) = run_mm(&a, &b, &dist, 3, 2, &uniform_weights(1, 1)).unwrap();
        assert!(c.approx_eq(&matmul(&a, &b), 1e-10));
        assert_eq!(report.total_messages(), 0, "no peers, no messages");
    }

    #[test]
    fn rect_mm_matches_sequential() {
        // C(8x4 blocks) = A(8x6) * B(6x4), r = 2.
        let (mb, nb, kb) = (8usize, 4usize, 6usize);
        let r = 2;
        let a = {
            let mut s = 0x31u64 | 1;
            Matrix::from_fn(mb * r, kb * r, |_, _| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
        };
        let b = {
            let mut s = 0x32u64 | 1;
            Matrix::from_fn(kb * r, nb * r, |_, _| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
        };
        let dist = BlockCyclic::new(2, 2);
        let (c, _) = run_mm_rect(&a, &b, &dist, (mb, nb, kb), r, &uniform_weights(2, 2)).unwrap();
        assert!(c.approx_eq(&matmul(&a, &b), 1e-10));
    }

    #[test]
    fn message_volume_equal_panel_vs_kl() {
        // Per-block payload volume is the same for panel and KL layouts
        // (each block of the pivot column/row reaches one processor per
        // grid column/row); KL's penalty is in the number of *distinct
        // broadcasts* — i.e. per-message latency — which the simulator
        // measures (see hetgrid-sim's kl_pays_more_messages_than_panel).
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let panel = PanelDist::from_allocation(&arr, &sol.alloc, 4, 3, PanelOrdering::Contiguous);
        let kl = KlDist::new(&arr, 4, 6);
        let nb = 12;
        let r = 2;
        let a = test_matrix(nb * r, 21);
        let b = test_matrix(nb * r, 22);
        let w = uniform_weights(2, 2);
        let (_, rep_panel) = run_mm(&a, &b, &panel, nb, r, &w).unwrap();
        let (_, rep_kl) = run_mm(&a, &b, &kl, nb, r, &w).unwrap();
        assert!(rep_panel.total_messages() > 0);
        assert_eq!(rep_kl.total_messages(), rep_panel.total_messages());
    }
}
