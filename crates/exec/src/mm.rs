//! Threaded distributed outer-product matrix multiplication.
//!
//! One OS thread per virtual processor; blocks travel through
//! [`crate::channel`] channels exactly along the distribution's communication
//! pattern (horizontal broadcasts of the pivot block column of `A`,
//! vertical broadcasts of the pivot block row of `B`, Section 3.1.1).
//! Heterogeneity is emulated by integer *slowdown weights*: processor
//! `(i, j)` repeats every block kernel `w_ij` times.

use crate::channel::{unbounded, Sender};
use crate::probe::Probe;
use crate::store::{BlockStore, DistributedMatrix, ExecReport};
use crate::transport::{ChannelTransport, Endpoint, Transport};
use hetgrid_dist::BlockDist;
use hetgrid_linalg::gemm::gemm;
use hetgrid_linalg::Matrix;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// A message carrying one block of `A` or `B` for a given step. Payloads
/// are `Arc`-shared: a broadcast clones the block once per hop and each
/// recipient only bumps the refcount, so fanning a pivot block out to a
/// whole row or column of the grid costs one deep copy, not one per
/// destination.
#[derive(Clone, Debug)]
enum Msg {
    A {
        step: usize,
        bi: usize,
        data: Arc<Matrix>,
    },
    B {
        step: usize,
        bj: usize,
        data: Arc<Matrix>,
    },
}

/// Runs `C = A * B` on `nb x nb` blocks of size `r`, distributed by
/// `dist`, with per-processor slowdown `weights` (block kernels repeated
/// `w_ij` times).
///
/// Returns the gathered result and per-processor measurements.
///
/// # Panics
/// Panics if matrix sizes do not equal `nb * r` or the weights table
/// does not match the grid.
pub fn run_mm(
    a: &Matrix,
    b: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> (Matrix, ExecReport) {
    run_mm_rect(a, b, dist, (nb, nb, nb), r, weights)
}

/// [`run_mm`] over an explicit [`Transport`] (the harness injects its
/// fault-injecting virtual transport here).
///
/// # Panics
/// Panics on size mismatches, like [`run_mm`].
pub fn run_mm_on(
    transport: &impl Transport,
    a: &Matrix,
    b: &Matrix,
    dist: &(dyn BlockDist + Sync),
    nb: usize,
    r: usize,
    weights: &[Vec<u64>],
) -> (Matrix, ExecReport) {
    run_mm_rect_on(transport, a, b, dist, (nb, nb, nb), r, weights)
}

/// Rectangular variant: `C(mb x nb) = A(mb x kb) * B(kb x nb)` in `r`-sized
/// blocks, all three matrices laid out by the same distribution.
///
/// # Panics
/// Panics on size mismatches, like [`run_mm`].
pub fn run_mm_rect(
    a: &Matrix,
    b: &Matrix,
    dist: &(dyn BlockDist + Sync),
    dims: (usize, usize, usize),
    r: usize,
    weights: &[Vec<u64>],
) -> (Matrix, ExecReport) {
    run_mm_rect_on(&ChannelTransport, a, b, dist, dims, r, weights)
}

/// [`run_mm_rect`] over an explicit [`Transport`].
///
/// # Panics
/// Panics on size mismatches, like [`run_mm`].
pub fn run_mm_rect_on(
    transport: &impl Transport,
    a: &Matrix,
    b: &Matrix,
    dist: &(dyn BlockDist + Sync),
    (mb, nb, kb): (usize, usize, usize),
    r: usize,
    weights: &[Vec<u64>],
) -> (Matrix, ExecReport) {
    let (p, q) = dist.grid();
    assert_eq!(weights.len(), p, "run_mm: weights rows mismatch");
    assert!(
        weights.iter().all(|row| row.len() == q),
        "run_mm: weights cols mismatch"
    );
    assert_eq!(a.shape(), (mb * r, kb * r), "run_mm: A shape mismatch");
    assert_eq!(b.shape(), (kb * r, nb * r), "run_mm: B shape mismatch");
    let da = DistributedMatrix::scatter_rect(a, dist, mb, kb, r);
    let db = DistributedMatrix::scatter_rect(b, dist, kb, nb, r);

    let n_procs = p * q;
    let endpoints = transport.connect::<Msg>(n_procs);
    let (done_tx, done_rx) = unbounded::<(usize, BlockStore, f64, u64, u64)>();

    let wall_start = Instant::now();
    std::thread::scope(|scope| {
        for (me, ep) in endpoints.into_iter().enumerate() {
            let (i, j) = (me / q, me % q);
            let my_a = da.stores[me].clone();
            let my_b = db.stores[me].clone();
            let done = done_tx.clone();
            let w = weights[i][j];
            scope.spawn(move || {
                worker(dist, (mb, nb, kb), r, (i, j), my_a, my_b, w, ep, done);
            });
        }
    });
    drop(done_tx);

    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let mut c = Matrix::zeros(mb * r, nb * r);
    let mut busy = vec![vec![0.0f64; q]; p];
    let mut work = vec![vec![0u64; q]; p];
    let mut msgs = vec![vec![0u64; q]; p];
    let mut blocks_seen = 0usize;
    while let Ok((me, store, busy_s, units, sent)) = done_rx.recv() {
        let (i, j) = (me / q, me % q);
        busy[i][j] = busy_s;
        work[i][j] = units;
        msgs[i][j] = sent;
        for ((bi, bj), block) in store {
            c.set_block(bi * r, bj * r, &block);
            blocks_seen += 1;
        }
    }
    assert_eq!(blocks_seen, mb * nb, "run_mm: missing result blocks");
    (
        c,
        ExecReport {
            wall_seconds,
            busy_seconds: busy,
            work_units: work,
            messages_sent: msgs,
        },
    )
}

/// Distinct owners of block row `bi` (linear ids), excluding `me`.
fn row_owner_ids(dist: &dyn BlockDist, bi: usize, nb: usize, me: usize) -> Vec<usize> {
    let (_, q) = dist.grid();
    let mut set: Vec<usize> = Vec::new();
    for bj in 0..nb {
        let (oi, oj) = dist.owner(bi, bj);
        let id = oi * q + oj;
        if id != me && !set.contains(&id) {
            set.push(id);
        }
    }
    set
}

/// Distinct owners of block column `bj` (linear ids), excluding `me`.
fn col_owner_ids(dist: &dyn BlockDist, bj: usize, nb: usize, me: usize) -> Vec<usize> {
    let (_, q) = dist.grid();
    let mut set: Vec<usize> = Vec::new();
    for bi in 0..nb {
        let (oi, oj) = dist.owner(bi, bj);
        let id = oi * q + oj;
        if id != me && !set.contains(&id) {
            set.push(id);
        }
    }
    set
}

#[allow(clippy::too_many_arguments)]
fn worker(
    dist: &dyn BlockDist,
    (mb, nb, kb): (usize, usize, usize),
    r: usize,
    (i, j): (usize, usize),
    my_a: BlockStore,
    my_b: BlockStore,
    weight: u64,
    ep: Box<dyn Endpoint<Msg>>,
    done: Sender<(usize, BlockStore, f64, u64, u64)>,
) {
    let (p, q) = dist.grid();
    let me = i * q + j;
    let mut probe = Probe::new((i, j), (p, q));

    // Owned C blocks (same layout as A and B by construction).
    let owned: Vec<(usize, usize)> = {
        let mut v: Vec<(usize, usize)> = (0..mb)
            .flat_map(|bi| (0..nb).map(move |bj| (bi, bj)))
            .filter(|&(bi, bj)| {
                let (oi, oj) = dist.owner(bi, bj);
                oi == i && oj == j
            })
            .collect();
        v.sort_unstable();
        v
    };
    let mut c_blocks: BlockStore = owned
        .iter()
        .map(|&key| (key, Matrix::zeros(r, r)))
        .collect();

    // Buffers for messages that arrive ahead of their step.
    let mut a_pending: HashMap<(usize, usize), Arc<Matrix>> = HashMap::new(); // (step, bi)
    let mut b_pending: HashMap<(usize, usize), Arc<Matrix>> = HashMap::new(); // (step, bj)

    let mut busy = 0.0f64;
    let mut units = 0u64;
    let mut sent = 0u64;
    let mut scratch = Matrix::zeros(r, r);

    let block_bytes = (r * r * std::mem::size_of::<f64>()) as u64;
    for k in 0..kb {
        // --- Send phase: my A blocks of column k, my B blocks of row k.
        let mut bcast_span = probe.as_ref().map(|pr| pr.span(format!("bcast {k}")));
        let sent_before = sent;
        for bi in 0..mb {
            if let Some(data) = my_a.get(&(bi, k)) {
                let dests = row_owner_ids(dist, bi, nb, me);
                if dests.is_empty() {
                    continue;
                }
                // One deep copy per hop; recipients share it via the Arc.
                let payload = Arc::new(data.clone());
                for dest in dests {
                    ep.send(
                        dest,
                        Msg::A {
                            step: k,
                            bi,
                            data: Arc::clone(&payload),
                        },
                    )
                    .expect("receiver hung up");
                    sent += 1;
                    if let Some(pr) = probe.as_mut() {
                        pr.sent(dest, k, block_bytes);
                    }
                }
            }
        }
        for bj in 0..nb {
            if let Some(data) = my_b.get(&(k, bj)) {
                let dests = col_owner_ids(dist, bj, mb, me);
                if dests.is_empty() {
                    continue;
                }
                let payload = Arc::new(data.clone());
                for dest in dests {
                    ep.send(
                        dest,
                        Msg::B {
                            step: k,
                            bj,
                            data: Arc::clone(&payload),
                        },
                    )
                    .expect("receiver hung up");
                    sent += 1;
                    if let Some(pr) = probe.as_mut() {
                        pr.sent(dest, k, block_bytes);
                    }
                }
            }
        }
        if let Some(g) = bcast_span.as_mut() {
            g.arg_u64("msgs", sent - sent_before);
        }
        drop(bcast_span);

        // --- Receive phase: wait for every foreign block this step needs.
        let mut need_a: HashSet<usize> = HashSet::new(); // bi values
        let mut need_b: HashSet<usize> = HashSet::new(); // bj values
        for &(bi, bj) in &owned {
            if !my_a.contains_key(&(bi, k)) {
                need_a.insert(bi);
            }
            if !my_b.contains_key(&(k, bj)) {
                need_b.insert(bj);
            }
        }
        need_a.retain(|&bi| !a_pending.contains_key(&(k, bi)));
        need_b.retain(|&bj| !b_pending.contains_key(&(k, bj)));
        let wait_span = probe.as_ref().map(|pr| pr.span(format!("wait {k}")));
        while !(need_a.is_empty() && need_b.is_empty()) {
            match ep.recv().expect("sender hung up") {
                Msg::A { step, bi, data } => {
                    if step == k {
                        need_a.remove(&bi);
                    }
                    a_pending.insert((step, bi), data);
                }
                Msg::B { step, bj, data } => {
                    if step == k {
                        need_b.remove(&bj);
                    }
                    b_pending.insert((step, bj), data);
                }
            }
        }

        drop(wait_span);

        // --- Compute phase: C_bi,bj += A_bi,k * B_k,bj (repeated for
        // the slowdown weight).
        let mut compute_span = probe.as_ref().map(|pr| pr.span(format!("compute {k}")));
        let units_before = units;
        let t0 = Instant::now();
        for &(bi, bj) in &owned {
            let ablk: &Matrix = match my_a.get(&(bi, k)) {
                Some(m) => m,
                None => a_pending.get(&(k, bi)).expect("A block missing"),
            };
            let bblk: &Matrix = match my_b.get(&(k, bj)) {
                Some(m) => m,
                None => b_pending.get(&(k, bj)).expect("B block missing"),
            };
            let c = c_blocks.get_mut(&(bi, bj)).expect("C block missing");
            gemm(1.0, ablk, bblk, 1.0, c);
            for _ in 1..weight {
                gemm(1.0, ablk, bblk, 0.0, &mut scratch);
            }
            units += weight;
        }
        busy += t0.elapsed().as_secs_f64();
        if let Some(pr) = &probe {
            pr.step_done(t0.elapsed().as_secs_f64());
        }
        if let Some(g) = compute_span.as_mut() {
            g.arg_u64("units", units - units_before);
        }
        drop(compute_span);
        // Drop buffered blocks of this step.
        a_pending.retain(|&(s, _), _| s > k);
        b_pending.retain(|&(s, _), _| s > k);
    }

    if let Some(pr) = &probe {
        pr.finish(units);
    }
    done.send((me, c_blocks, busy, units, sent))
        .expect("main hung up");
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_core::{exact, Arrangement};
    use hetgrid_dist::{BlockCyclic, KlDist, PanelDist, PanelOrdering};
    use hetgrid_linalg::gemm::matmul;

    fn test_matrix(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    fn uniform_weights(p: usize, q: usize) -> Vec<Vec<u64>> {
        vec![vec![1; q]; p]
    }

    #[test]
    fn mm_matches_sequential_cyclic() {
        let nb = 4;
        let r = 3;
        let a = test_matrix(nb * r, 1);
        let b = test_matrix(nb * r, 2);
        let dist = BlockCyclic::new(2, 2);
        let (c, report) = run_mm(&a, &b, &dist, nb, r, &uniform_weights(2, 2));
        assert!(c.approx_eq(&matmul(&a, &b), 1e-10));
        assert_eq!(
            report.work_units.iter().flatten().sum::<u64>() as usize,
            nb * nb * nb
        );
    }

    #[test]
    fn mm_matches_sequential_panel() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let sol = exact::solve_arrangement(&arr);
        let dist = PanelDist::from_allocation(&arr, &sol.alloc, 4, 3, PanelOrdering::Contiguous);
        let nb = 8;
        let r = 2;
        let a = test_matrix(nb * r, 3);
        let b = test_matrix(nb * r, 4);
        let w = crate::store::slowdown_weights(&arr);
        let (c, report) = run_mm(&a, &b, &dist, nb, r, &w);
        assert!(c.approx_eq(&matmul(&a, &b), 1e-10));
        // Weighted work should be close to balanced for this rank-1 grid.
        assert!(
            report.work_imbalance() < 1.4,
            "work imbalance {}",
            report.work_imbalance()
        );
    }

    #[test]
    fn mm_matches_sequential_kl() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let dist = KlDist::new(&arr, 4, 6);
        let nb = 6;
        let r = 2;
        let a = test_matrix(nb * r, 5);
        let b = test_matrix(nb * r, 6);
        let (c, _) = run_mm(&a, &b, &dist, nb, r, &uniform_weights(2, 2));
        assert!(c.approx_eq(&matmul(&a, &b), 1e-10));
    }

    #[test]
    fn cyclic_work_imbalance_reflects_heterogeneity() {
        // With slowdown weights on a uniform distribution, the weighted
        // work is imbalanced by ~max(w)/mean(w).
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let dist = BlockCyclic::new(2, 2);
        let nb = 4;
        let r = 2;
        let a = test_matrix(nb * r, 7);
        let b = test_matrix(nb * r, 8);
        let w = crate::store::slowdown_weights(&arr);
        let (_, report) = run_mm(&a, &b, &dist, nb, r, &w);
        // weights 1,2,3,6, equal counts -> imbalance 6 / 3 = 2.
        assert!((report.work_imbalance() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_processor() {
        let a = test_matrix(6, 9);
        let b = test_matrix(6, 10);
        let dist = BlockCyclic::new(1, 1);
        let (c, report) = run_mm(&a, &b, &dist, 3, 2, &uniform_weights(1, 1));
        assert!(c.approx_eq(&matmul(&a, &b), 1e-10));
        assert_eq!(report.total_messages(), 0, "no peers, no messages");
    }

    #[test]
    fn rect_mm_matches_sequential() {
        // C(8x4 blocks) = A(8x6) * B(6x4), r = 2.
        let (mb, nb, kb) = (8usize, 4usize, 6usize);
        let r = 2;
        let a = {
            let mut s = 0x31u64 | 1;
            Matrix::from_fn(mb * r, kb * r, |_, _| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
        };
        let b = {
            let mut s = 0x32u64 | 1;
            Matrix::from_fn(kb * r, nb * r, |_, _| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
        };
        let dist = BlockCyclic::new(2, 2);
        let (c, _) = run_mm_rect(&a, &b, &dist, (mb, nb, kb), r, &uniform_weights(2, 2));
        assert!(c.approx_eq(&matmul(&a, &b), 1e-10));
    }

    #[test]
    fn message_volume_equal_panel_vs_kl() {
        // Per-block payload volume is the same for panel and KL layouts
        // (each block of the pivot column/row reaches one processor per
        // grid column/row); KL's penalty is in the number of *distinct
        // broadcasts* — i.e. per-message latency — which the simulator
        // measures (see hetgrid-sim's kl_pays_more_messages_than_panel).
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let panel = PanelDist::from_allocation(&arr, &sol.alloc, 4, 3, PanelOrdering::Contiguous);
        let kl = KlDist::new(&arr, 4, 6);
        let nb = 12;
        let r = 2;
        let a = test_matrix(nb * r, 21);
        let b = test_matrix(nb * r, 22);
        let w = uniform_weights(2, 2);
        let (_, rep_panel) = run_mm(&a, &b, &panel, nb, r, &w);
        let (_, rep_kl) = run_mm(&a, &b, &kl, nb, r, &w);
        assert!(rep_panel.total_messages() > 0);
        assert_eq!(rep_kl.total_messages(), rep_panel.total_messages());
    }
}
