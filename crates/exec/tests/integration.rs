//! Integration tests: the distributed kernels on heterogeneous
//! 2x2 - 3x3 grids, checked element-wise against the single-node
//! `hetgrid-linalg` references.
//!
//! The unit tests inside each kernel module cover one distribution
//! each; this suite sweeps every kernel over every distribution family
//! on genuinely heterogeneous arrangements (distinct cycle-times, so
//! the panel shares are uneven and the slowdown weights differ per
//! processor).

use hetgrid_core::{exact, Arrangement};
use hetgrid_dist::{BlockCyclic, BlockDist, KlDist, PanelDist, PanelOrdering};
use hetgrid_exec::{run_cholesky, run_lu, run_mm, slowdown_weights};
use hetgrid_linalg::gemm::matmul;
use hetgrid_linalg::tri::{unit_lower_from_packed, upper_from_packed};
use hetgrid_linalg::Matrix;

/// Deterministic dense matrix with entries in `[-1, 1)`.
fn dense(n: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    Matrix::from_fn(n, n, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn dominant(n: usize, seed: u64) -> Matrix {
    let mut m = dense(n, seed);
    for i in 0..n {
        m[(i, i)] += 2.0 * n as f64;
    }
    m
}

fn spd(n: usize, seed: u64) -> Matrix {
    let b = dense(n, seed);
    let mut a = matmul(&b.transpose(), &b);
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

/// Heterogeneous arrangements for each grid shape under test: distinct
/// cycle-times, spread by roughly a factor of five.
fn arrangements() -> Vec<Arrangement> {
    vec![
        Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]),
        Arrangement::from_rows(&[vec![1.0, 2.5, 4.0], vec![1.5, 3.0, 5.0]]),
        Arrangement::from_rows(&[vec![1.0, 2.0], vec![2.5, 4.0], vec![1.5, 5.0]]),
        Arrangement::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![2.5, 4.0, 1.5],
            vec![5.0, 1.2, 2.2],
        ]),
    ]
}

/// Every distribution family over `arr`, with a name for messages.
fn distributions(arr: &Arrangement) -> Vec<(Box<dyn BlockDist + Sync>, &'static str)> {
    let (p, q) = (arr.p(), arr.q());
    let sol = exact::solve_arrangement(arr);
    vec![
        (Box::new(BlockCyclic::new(p, q)), "cyclic"),
        (
            Box::new(PanelDist::from_allocation(
                arr,
                &sol.alloc,
                2 * p,
                2 * q,
                PanelOrdering::Contiguous,
            )),
            "panel-contiguous",
        ),
        (
            Box::new(PanelDist::from_allocation(
                arr,
                &sol.alloc,
                2 * p,
                2 * q,
                PanelOrdering::Interleaved,
            )),
            "panel-interleaved",
        ),
        (Box::new(KlDist::new(arr, 2 * p, 2 * q)), "kl"),
    ]
}

#[test]
fn mm_matches_reference_on_heterogeneous_grids() {
    for (ai, arr) in arrangements().iter().enumerate() {
        let w = slowdown_weights(arr);
        let (nb, r) = (6, 2);
        let a = dense(nb * r, 100 + ai as u64);
        let b = dense(nb * r, 200 + ai as u64);
        let reference = matmul(&a, &b);
        for (dist, name) in distributions(arr) {
            let (c, report) = run_mm(&a, &b, dist.as_ref(), nb, r, &w).unwrap();
            assert!(
                c.approx_eq(&reference, 1e-9),
                "MM mismatch on {}x{} {}: max err {:.3e}",
                arr.p(),
                arr.q(),
                name,
                c.sub(&reference).max_abs()
            );
            assert!(
                report.total_messages() > 0,
                "{name}: grid never communicated"
            );
        }
    }
}

#[test]
fn lu_matches_reference_on_heterogeneous_grids() {
    for (ai, arr) in arrangements().iter().enumerate() {
        let w = slowdown_weights(arr);
        let (nb, r) = (6, 2);
        let a = dominant(nb * r, 300 + ai as u64);
        for (dist, name) in distributions(arr) {
            let (f, _) = run_lu(&a, dist.as_ref(), nb, r, &w).unwrap();
            let lu = matmul(&unit_lower_from_packed(&f), &upper_from_packed(&f));
            assert!(
                lu.approx_eq(&a, 1e-8),
                "LU mismatch on {}x{} {}: max err {:.3e}",
                arr.p(),
                arr.q(),
                name,
                lu.sub(&a).max_abs()
            );
        }
    }
}

#[test]
fn cholesky_matches_reference_on_heterogeneous_grids() {
    for (ai, arr) in arrangements().iter().enumerate() {
        let w = slowdown_weights(arr);
        let (nb, r) = (6, 2);
        let a = spd(nb * r, 400 + ai as u64);
        for (dist, name) in distributions(arr) {
            let (l, _) = run_cholesky(&a, dist.as_ref(), nb, r, &w).unwrap();
            let llt = matmul(&l, &l.transpose());
            assert!(
                llt.approx_eq(&a, 1e-8),
                "Cholesky mismatch on {}x{} {}: max err {:.3e}",
                arr.p(),
                arr.q(),
                name,
                llt.sub(&a).max_abs()
            );
        }
    }
}

#[test]
fn weighted_work_reflects_the_arrangement() {
    // On a uniform distribution the weighted work tables must scale
    // exactly with the slowdown weights: every processor owns the same
    // number of blocks under 2x2 cyclic with nb divisible by 2.
    let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
    let w = slowdown_weights(&arr);
    let dist = BlockCyclic::new(2, 2);
    let (nb, r) = (4, 2);
    let a = dense(nb * r, 77);
    let b = dense(nb * r, 78);
    let (_, report) = run_mm(&a, &b, &dist, nb, r, &w).unwrap();
    let blocks_each = (nb * nb / 4) as u64;
    for (i, row) in w.iter().enumerate() {
        for (j, &wij) in row.iter().enumerate() {
            assert_eq!(
                report.work_units[i][j],
                blocks_each * nb as u64 * wij,
                "processor ({i}, {j})"
            );
        }
    }
}
