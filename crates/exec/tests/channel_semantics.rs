//! Edge-semantics tests for `hetgrid_exec::channel` — the contracts the
//! executor's shutdown path and the harness's virtual transport both
//! depend on:
//!
//! * dropping the *last* sender wakes every blocked receiver (shutdown
//!   cannot deadlock, no matter how many receivers are parked);
//! * `send` fails only when *every* receiver is gone, and hands the
//!   undelivered message back;
//! * clonable receivers partition the stream — each message is consumed
//!   exactly once even under heavy contention.

use hetgrid_exec::channel::unbounded;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

#[test]
fn dropping_last_sender_wakes_all_blocked_receivers() {
    let (tx, rx) = unbounded::<u32>();
    let parked = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let rx = rx.clone();
            let parked = Arc::clone(&parked);
            thread::spawn(move || {
                parked.fetch_add(1, Ordering::SeqCst);
                // Blocks on the empty channel until shutdown.
                rx.recv().is_err()
            })
        })
        .collect();
    drop(rx);
    // Let every receiver actually park before shutting down.
    while parked.load(Ordering::SeqCst) < 6 {
        thread::yield_now();
    }
    thread::sleep(Duration::from_millis(20));
    let tx2 = tx.clone();
    drop(tx);
    drop(tx2); // the *last* sender drop triggers the wake-all
    for h in handles {
        assert!(
            h.join().unwrap(),
            "a blocked receiver woke with a message on an empty closed channel"
        );
    }
}

#[test]
fn intermediate_sender_drops_do_not_wake_receivers() {
    let (tx, rx) = unbounded::<u32>();
    let keep = tx.clone();
    let h = thread::spawn(move || rx.recv());
    thread::sleep(Duration::from_millis(20));
    drop(tx); // one sender remains — receiver must stay parked
    thread::sleep(Duration::from_millis(20));
    keep.send(42).unwrap();
    assert_eq!(h.join().unwrap().unwrap(), 42);
}

#[test]
fn send_succeeds_while_any_receiver_lives() {
    let (tx, rx1) = unbounded::<u32>();
    let rx2 = rx1.clone();
    let rx3 = rx2.clone();
    drop(rx1);
    drop(rx3);
    // One receiver clone still alive: sends must succeed.
    tx.send(7).unwrap();
    assert_eq!(rx2.recv().unwrap(), 7);
    drop(rx2);
    // Now every receiver is gone: the send fails and returns the value.
    let err = tx.send(9).unwrap_err();
    assert_eq!(err.0, 9, "SendError must carry the undelivered message");
}

#[test]
fn queued_messages_are_lost_when_receivers_vanish() {
    // Documented consequence of "send fails only when every receiver is
    // gone": a message queued while receivers existed is dropped with
    // the state when the last receiver goes — later sends fail, earlier
    // ones do not retroactively error.
    let (tx, rx) = unbounded::<u32>();
    tx.send(1).unwrap();
    drop(rx);
    assert!(tx.send(2).is_err());
}

#[test]
fn cloned_receivers_consume_each_message_exactly_once_under_contention() {
    const MESSAGES: u64 = 20_000;
    const RECEIVERS: usize = 8;
    let (tx, rx) = unbounded::<u64>();
    let handles: Vec<_> = (0..RECEIVERS)
        .map(|_| {
            let rx = rx.clone();
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            })
        })
        .collect();
    drop(rx);
    let producer = thread::spawn(move || {
        for v in 0..MESSAGES {
            tx.send(v).unwrap();
        }
    });
    producer.join().unwrap();

    let mut seen = BTreeSet::new();
    let mut total = 0usize;
    for h in handles {
        for v in h.join().unwrap() {
            assert!(seen.insert(v), "message {v} delivered twice");
            total += 1;
        }
    }
    assert_eq!(total as u64, MESSAGES, "some messages were never delivered");
    assert_eq!(seen.len() as u64, MESSAGES);
}

#[test]
fn contended_receivers_all_make_progress() {
    // Fairness in the weak sense the executor needs: with a sustained
    // stream and several blocked receivers, no receiver starves
    // forever. (The channel wakes one receiver per send, so every
    // parked receiver is eventually the one notified.)
    const MESSAGES: u64 = 50_000;
    const RECEIVERS: usize = 4;
    let (tx, rx) = unbounded::<u64>();
    let handles: Vec<_> = (0..RECEIVERS)
        .map(|_| {
            let rx = rx.clone();
            thread::spawn(move || {
                let mut got = 0u64;
                while rx.recv().is_ok() {
                    got += 1;
                    // Hold the message briefly so the queue backs up and
                    // other receivers get woken too.
                    std::hint::spin_loop();
                }
                got
            })
        })
        .collect();
    drop(rx);
    for v in 0..MESSAGES {
        tx.send(v).unwrap();
    }
    drop(tx);
    let counts: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(counts.iter().sum::<u64>(), MESSAGES);
    assert!(
        counts.iter().all(|&c| c > 0),
        "a receiver starved completely: {counts:?}"
    );
}
