//! Property-based tests for the load-balancing solvers.

use hetgrid_core::arrangement::{enumerate_nondecreasing, sorted_row_major, Arrangement};
use hetgrid_core::objective::{is_feasible, workload_matrix};
use hetgrid_core::{alternating, certify, exact, heuristic, oned, rounding};
use proptest::prelude::*;

/// Strategy: `n` cycle-times in (0.05, 1.0].
fn times_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05f64..1.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_beats_every_alternating_fixpoint(times in times_strategy(4)) {
        let arr = sorted_row_major(&times, 2, 2);
        let ex = exact::solve_arrangement(&arr);
        let alt = alternating::optimize(&arr, 10_000);
        prop_assert!(ex.obj2 >= alt.alloc.obj2() - 1e-9);
        prop_assert!(is_feasible(&arr, &ex.alloc, 1e-9));
    }

    #[test]
    fn exact_global_beats_heuristic(times in times_strategy(6)) {
        let g = exact::solve_global(&times, 2, 3);
        let h = heuristic::solve_default(&times, 2, 3);
        prop_assert!(g.obj2 >= h.best().obj2 - 1e-9,
            "heuristic {} beat exact {}", h.best().obj2, g.obj2);
        // The heuristic is usually within ~15% of optimal (EXPERIMENTS.md
        // E12); extreme heterogeneity can push the gap further, but it
        // must never be catastrophic.
        prop_assert!(h.best().obj2 >= 0.55 * g.obj2,
            "heuristic too weak: {} vs {}", h.best().obj2, g.obj2);
    }

    #[test]
    fn heuristic_always_feasible_and_tight(times in times_strategy(12)) {
        let res = heuristic::solve_default(&times, 3, 4);
        for step in &res.steps {
            prop_assert!(is_feasible(&step.arrangement, &step.alloc, 1e-8));
            let b = workload_matrix(&step.arrangement, &step.alloc);
            // Every row and column carries a tight constraint.
            for i in 0..3 {
                let m = (0..4).map(|j| b[(i, j)]).fold(0.0f64, f64::max);
                prop_assert!((m - 1.0).abs() < 1e-7);
            }
            for j in 0..4 {
                let m = (0..3).map(|i| b[(i, j)]).fold(0.0f64, f64::max);
                prop_assert!((m - 1.0).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn heuristic_obj_at_least_ideal_over_nmax(times in times_strategy(9)) {
        // obj2 >= sum of rates of the slowest-row? A universal sanity
        // bound: obj2 is at least 1 (the single slowest processor can
        // always take everything: r = c = gauge with products <= 1).
        let res = heuristic::solve_default(&times, 3, 3);
        let tmax = times.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(res.best().obj2 * tmax >= 1.0 - 1e-9);
    }

    #[test]
    fn workload_never_exceeds_one(times in times_strategy(9)) {
        let res = heuristic::solve_default(&times, 3, 3);
        let b = workload_matrix(&res.best().arrangement, &res.best().alloc);
        for &v in b.as_slice() {
            prop_assert!(v <= 1.0 + 1e-9);
            prop_assert!(v > 0.0);
        }
    }

    #[test]
    fn exact_solutions_always_certify(times in times_strategy(6)) {
        let arr = sorted_row_major(&times, 2, 3);
        let sol = exact::solve_arrangement(&arr);
        let cert = certify::certify(&arr, &sol.alloc);
        prop_assert!(cert.locally_optimal(),
            "exact solution failed its own certificate: {:?}", cert);
        prop_assert!(cert.gap_bound() >= -1e-12);
    }

    #[test]
    fn heuristic_results_are_tight_fixpoints(times in times_strategy(6)) {
        let res = heuristic::solve_default(&times, 2, 3);
        let best = res.best();
        let cert = certify::certify(&best.arrangement, &best.alloc);
        prop_assert!(cert.feasible);
        prop_assert!(cert.rows_tight);
        prop_assert!(cert.cols_tight);
    }

    #[test]
    fn oned_greedy_sum_and_monotone(times in times_strategy(5), blocks in 0usize..40) {
        let alloc = oned::allocate_1d(&times, blocks);
        prop_assert_eq!(alloc.counts.iter().sum::<usize>(), blocks);
        prop_assert_eq!(alloc.order.len(), blocks);
        // Faster processors never get fewer blocks than slower ones.
        for i in 0..5 {
            for j in 0..5 {
                if times[i] < times[j] {
                    prop_assert!(alloc.counts[i] >= alloc.counts[j],
                        "faster processor got fewer blocks");
                }
            }
        }
    }

    #[test]
    fn oned_makespan_lower_bound(times in times_strategy(4), blocks in 1usize..30) {
        // Makespan >= blocks / total_rate (perfect-sharing bound).
        let alloc = oned::allocate_1d(&times, blocks);
        let rate: f64 = times.iter().map(|t| 1.0 / t).sum();
        prop_assert!(alloc.makespan(&times) >= blocks as f64 / rate - 1e-9);
    }

    #[test]
    fn rounding_preserves_total_and_order(weights in prop::collection::vec(0.01f64..1.0, 6), total in 1usize..500) {
        let counts = rounding::round_proportional(&weights, total);
        prop_assert_eq!(counts.iter().sum::<usize>(), total);
        // Counts are within 1 of the exact quota.
        let sum: f64 = weights.iter().sum();
        for (w, &c) in weights.iter().zip(&counts) {
            let quota = w * total as f64 / sum;
            prop_assert!((c as f64 - quota).abs() < 1.0 + 1e-9);
        }
    }

    #[test]
    fn nondecreasing_enumeration_is_sound(times in times_strategy(4)) {
        let mut count = 0usize;
        enumerate_nondecreasing(&times, 2, 2, |a| {
            count += 1;
            assert!(a.is_nondecreasing());
            // The multiset of values must match the input.
            let mut got: Vec<f64> = a.times().to_vec();
            let mut want = times.clone();
            got.sort_by(|x, y| x.partial_cmp(y).unwrap());
            want.sort_by(|x, y| x.partial_cmp(y).unwrap());
            assert_eq!(got, want);
        });
        // 2x2 distinct values -> exactly 2 tableaux; duplicates -> fewer.
        prop_assert!((1..=2).contains(&count));
    }

    #[test]
    fn theorem1_on_random_2x2(times in times_strategy(4)) {
        // Best over all 24 arrangements == best over non-decreasing ones.
        let g = exact::solve_global(&times, 2, 2);
        let mut best_any = 0.0f64;
        hetgrid_core::arrangement::enumerate_all(&times, 2, 2, |arr| {
            let s = exact::solve_arrangement(arr);
            if s.obj2 > best_any {
                best_any = s.obj2;
            }
        });
        prop_assert!((g.obj2 - best_any).abs() < 1e-9,
            "Theorem 1 violated: {} vs {}", g.obj2, best_any);
    }

    #[test]
    fn gauge_invariance_of_exact(times in times_strategy(4), scale in 0.1f64..10.0) {
        // Scaling all cycle-times by a constant scales obj2 by 1/scale
        // (both r and c scale by 1/sqrt... actually products r t c <= 1:
        // t -> s*t allows r*c -> r*c/s, so obj2 -> obj2 / s).
        let arr = sorted_row_major(&times, 2, 2);
        let scaled: Vec<f64> = times.iter().map(|t| t * scale).collect();
        let arr2 = sorted_row_major(&scaled, 2, 2);
        let o1 = exact::solve_arrangement(&arr).obj2;
        let o2 = exact::solve_arrangement(&arr2).obj2;
        prop_assert!((o1 / scale - o2).abs() < 1e-6 * o1.max(o2));
    }

    #[test]
    fn integer_allocation_consistency(times in times_strategy(6), bp in 2usize..12, bq in 3usize..12) {
        let arr = sorted_row_major(&times, 2, 3);
        let alt = alternating::optimize(&arr, 10_000);
        let (rows, cols) = rounding::integer_allocation(&arr, &alt.alloc, bp, bq);
        prop_assert_eq!(rows.iter().sum::<usize>(), bp);
        prop_assert_eq!(cols.iter().sum::<usize>(), bq);
        prop_assert!(rows.iter().all(|&x| x >= 1));
        prop_assert!(cols.iter().all(|&x| x >= 1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bnb_optimum_matches_exhaustive_3x4(times in times_strategy(12)) {
        // The branch-and-bound search must return the same optimum as the
        // plain spanning-tree enumerator (3^3 * 4^2 = 432 trees).
        let arr = sorted_row_major(&times, 3, 4);
        let bnb = exact::solve_arrangement(&arr);
        let full = exact::solve_arrangement_with(&arr, &exact::ExactOptions::exhaustive());
        prop_assert_eq!(full.trees_examined, 432);
        prop_assert_eq!(full.trees_pruned, 0);
        prop_assert!((bnb.obj2 - full.obj2).abs() < 1e-9 * full.obj2,
            "bnb {} vs exhaustive {}", bnb.obj2, full.obj2);
    }

    #[test]
    fn pruning_never_changes_global_optimum(times in times_strategy(6)) {
        // solve_global with the default pruned search vs the exhaustive
        // enumerator over the same non-decreasing arrangements.
        let pruned = exact::solve_global(&times, 2, 3);
        let full = exact::solve_global_with(&times, 2, 3, &exact::ExactOptions::exhaustive());
        prop_assert_eq!(pruned.arrangements_examined, full.arrangements_examined);
        prop_assert!((pruned.obj2 - full.obj2).abs() < 1e-9 * full.obj2,
            "pruned {} vs exhaustive {}", pruned.obj2, full.obj2);
    }
}

proptest! {
    // 4^4 * 5^3 = 32,000 trees per exhaustive run — keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn bnb_optimum_matches_exhaustive_4x5(times in times_strategy(20)) {
        let arr = sorted_row_major(&times, 4, 5);
        let bnb = exact::solve_arrangement(&arr);
        let full = exact::solve_arrangement_with(&arr, &exact::ExactOptions::exhaustive());
        prop_assert_eq!(full.trees_examined, 32_000);
        prop_assert!(bnb.trees_examined + bnb.trees_pruned < full.trees_examined,
            "pruning should cut the 4x5 search");
        prop_assert!((bnb.obj2 - full.obj2).abs() < 1e-9 * full.obj2,
            "bnb {} vs exhaustive {}", bnb.obj2, full.obj2);
    }
}

/// Deterministic regression: Theorem 1 holds on a 2x3 grid too (heavier,
/// so not a proptest).
#[test]
fn theorem1_on_2x3_instance() {
    let times = [0.21, 0.34, 0.55, 0.89, 0.13, 0.77];
    let g = exact::solve_global(&times, 2, 3);
    let mut best_any = 0.0f64;
    hetgrid_core::arrangement::enumerate_all(&times, 2, 3, |arr| {
        let s = exact::solve_arrangement(arr);
        if s.obj2 > best_any {
            best_any = s.obj2;
        }
    });
    assert!((g.obj2 - best_any).abs() < 1e-9);
}

/// The heuristic's arrangement stays a permutation of the input multiset
/// throughout refinement.
#[test]
fn heuristic_preserves_multiset() {
    let times = [0.9, 0.1, 0.4, 0.6, 0.3, 0.8, 0.2, 0.7, 0.5];
    let res = heuristic::solve_default(&times, 3, 3);
    let mut want: Vec<f64> = times.to_vec();
    want.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for step in &res.steps {
        let mut got: Vec<f64> = step.arrangement.times().to_vec();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, want);
        // Proc ids stay a permutation pointing at matching times.
        let arr: &Arrangement = &step.arrangement;
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(times[arr.proc(i, j)], arr.time(i, j));
            }
        }
    }
}
