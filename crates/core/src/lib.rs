//! # hetgrid-core
//!
//! The 2D heterogeneous-grid load-balancing problem of Beaumont, Boudet,
//! Rastello & Robert, *"Load Balancing Strategies for Dense Linear
//! Algebra Kernels on Heterogeneous Two-dimensional Grids"* (IPPS 2000).
//!
//! Given `p * q` processors with cycle-times `t_ij` (normalized time per
//! `r x r` block update), choose an arrangement on the grid and row /
//! column shares `r_i`, `c_j` maximizing `(sum r)(sum c)` subject to
//! `r_i t_ij c_j <= 1` — equivalently, minimizing the normalized parallel
//! time of the ScaLAPACK outer-product / right-looking kernels while
//! keeping the strict grid communication pattern.
//!
//! Modules, following the paper's structure:
//!
//! * [`arrangement`] — grids of processors; non-decreasing canonical
//!   form (Theorem 1) and enumeration;
//! * [`objective`] — `Obj1`/`Obj2`, workload matrices, feasibility;
//! * [`oned`] — optimal 1D heterogeneous allocation with dealing order
//!   (the `ABAABA` patterns of Section 3.2.2);
//! * [`alternating`] — coordinate-ascent optimization for a fixed
//!   arrangement (also the heuristic's normalization);
//! * [`exact`] — spanning-tree exact solver (Section 4.3.1) and global
//!   exhaustive search;
//! * [`rank1`] — perfect balance for rank-1 matrices (Section 4.3.2) and
//!   a multiset rank-1 factorization search;
//! * [`heuristic`] — the polynomial SVD heuristic with iterative
//!   refinement (Section 4.4);
//! * [`rounding`] — integer block counts from rational shares;
//! * [`search`] — swap-based local search and simulated annealing over
//!   arrangements (the metaheuristic answer to the NP-completeness
//!   conjecture of Section 4.1).
//!
//! ```
//! use hetgrid_core::heuristic;
//! // Nine processors with cycle-times 1..9 on a 3x3 grid (Section 4.4).
//! let times: Vec<f64> = (1..=9).map(|x| x as f64).collect();
//! let result = heuristic::solve_default(&times, 3, 3);
//! assert!(result.converged);
//! // Converged objective ~2.5889, as the paper reports.
//! assert!((result.last().obj2 - 2.5889).abs() < 1e-2);
//! ```

#![warn(missing_docs)]
// Grid code indexes `owned[i][j]`-style tables with `for i in 0..p`
// loops and passes several aggregated message maps around; the clippy
// style suggestions (iterator rewrites, type aliases, argument structs)
// would obscure the 2D-grid idiom the paper's algorithms are written in.
#![allow(
    clippy::needless_range_loop,
    clippy::type_complexity,
    clippy::too_many_arguments
)]

pub mod alternating;
pub mod arrangement;
pub mod bounds;
pub mod certify;
pub mod exact;
pub mod heuristic;
pub mod objective;
pub mod oned;
pub mod problem;
pub mod rank1;
pub mod rounding;
pub mod search;
pub mod topology;

pub use arrangement::{
    enumerate_nondecreasing, sorted_row_major, validate_times, Arrangement, TimesError,
};
pub use objective::Allocation;
pub use problem::{Method, Problem, Solution};
pub use topology::Topology;
