//! Analytic bounds on the objective `Obj2 = (sum r)(sum c)`.
//!
//! These bracket every solver's output and quantify the *price of the
//! grid*: how much throughput the strict grid communication pattern
//! costs compared to an unconstrained (Kalinov–Lastovetsky-style)
//! distribution of the same processors.

use crate::arrangement::Arrangement;

/// Upper bound: the total-rate bound `sum_ij 1/t_ij`.
///
/// Since every constraint gives `r_i c_j <= 1/t_ij` and
/// `(sum r)(sum c) = sum_ij r_i c_j`, no allocation — with or without
/// the grid constraint — can exceed the aggregate rate of the machine.
/// It is attained exactly for rank-1 arrangements (Section 4.3.2).
pub fn total_rate_upper_bound(arr: &Arrangement) -> f64 {
    arr.times().iter().map(|&t| 1.0 / t).sum()
}

/// Upper bound independent of the arrangement: the same aggregate rate,
/// computed from a bare multiset of cycle-times.
pub fn total_rate_of(times: &[f64]) -> f64 {
    times.iter().map(|&t| 1.0 / t).sum()
}

/// Lower bound: the slowest-processor gauge. Setting every share so the
/// *slowest* processor meets its constraint (uniform block-cyclic
/// shares) yields `obj2 = p * q / t_max`; the optimum can only improve
/// on it.
pub fn cyclic_lower_bound(arr: &Arrangement) -> f64 {
    let tmax = arr.times().iter().cloned().fold(0.0f64, f64::max);
    (arr.p() * arr.q()) as f64 / tmax
}

/// Lower bound from the row/column harmonic structure of a *given*
/// arrangement: balance rows as aggregated 1D processors (each grid row
/// `i` has rate `sum_j 1/t_ij`) and set uniform column shares scaled to
/// the worst column. This is a valid feasible construction, so its
/// objective bounds the optimum from below.
pub fn row_harmonic_lower_bound(arr: &Arrangement) -> f64 {
    let (p, q) = (arr.p(), arr.q());
    // Row shares proportional to row rates, columns uniform, then scale
    // to feasibility: products r_i t_ij c_j <= 1.
    let r: Vec<f64> = (0..p)
        .map(|i| (0..q).map(|j| 1.0 / arr.time(i, j)).sum::<f64>())
        .collect();
    let c = vec![1.0f64; q];
    let mut worst: f64 = 0.0;
    for i in 0..p {
        for j in 0..q {
            worst = worst.max(r[i] * arr.time(i, j) * c[j]);
        }
    }
    let sr: f64 = r.iter().sum();
    let sc: f64 = c.iter().sum();
    sr * sc / worst
}

/// The "price of the grid" for an arrangement: the ratio between the
/// total-rate upper bound (what an unconstrained distribution could
/// theoretically reach) and a given achieved objective, `>= 1`.
pub fn grid_price(arr: &Arrangement, achieved_obj2: f64) -> f64 {
    total_rate_upper_bound(arr) / achieved_obj2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{alternating, exact};

    fn check_bracket(arr: &Arrangement) {
        let opt = exact::solve_arrangement(arr).obj2;
        let ub = total_rate_upper_bound(arr);
        let lb_cyc = cyclic_lower_bound(arr);
        let lb_row = row_harmonic_lower_bound(arr);
        assert!(opt <= ub + 1e-9, "optimum {} above upper bound {}", opt, ub);
        assert!(
            opt >= lb_cyc - 1e-9,
            "optimum {} below cyclic bound {}",
            opt,
            lb_cyc
        );
        assert!(
            opt >= lb_row - 1e-9,
            "optimum {} below row-harmonic bound {}",
            opt,
            lb_row
        );
    }

    #[test]
    fn bounds_bracket_exact_optimum() {
        for rows in [
            vec![vec![1.0, 2.0], vec![3.0, 5.0]],
            vec![vec![1.0, 2.0], vec![3.0, 6.0]],
            vec![vec![0.4, 0.9, 1.1], vec![0.7, 1.3, 2.2]],
            vec![vec![1.0; 3], vec![1.0; 3], vec![1.0; 3]],
        ] {
            check_bracket(&Arrangement::from_rows(&rows));
        }
    }

    #[test]
    fn rank1_attains_upper_bound() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let opt = exact::solve_arrangement(&arr).obj2;
        assert!((opt - total_rate_upper_bound(&arr)).abs() < 1e-9);
        assert!((grid_price(&arr, opt) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn non_rank1_pays_a_grid_price() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let opt = exact::solve_arrangement(&arr).obj2;
        let price = grid_price(&arr, opt);
        // sum 1/t = 1 + 1/2 + 1/3 + 1/5 = 61/30; optimum 2.
        assert!((price - (61.0 / 30.0) / 2.0).abs() < 1e-9);
        assert!(price > 1.0);
    }

    #[test]
    fn bounds_bracket_alternating_fixpoint_too() {
        let arr = Arrangement::from_rows(&[vec![0.3, 0.8], vec![0.5, 0.9]]);
        let alt = alternating::optimize(&arr, 10_000).alloc.obj2();
        assert!(alt <= total_rate_upper_bound(&arr) + 1e-9);
        assert!(alt >= cyclic_lower_bound(&arr) - 1e-9);
    }

    #[test]
    fn homogeneous_bounds_coincide() {
        let arr = Arrangement::from_rows(&vec![vec![2.0; 4]; 4]);
        let ub = total_rate_upper_bound(&arr);
        let lb = cyclic_lower_bound(&arr);
        assert!((ub - lb).abs() < 1e-12);
        assert!((ub - 8.0).abs() < 1e-12);
    }
}
