//! Processor arrangements on a 2D grid (Section 4.1–4.2 of the paper).
//!
//! An [`Arrangement`] fixes which processor sits at which grid position.
//! The paper's Theorem 1 shows the search for an optimal arrangement can
//! be restricted to *non-decreasing* arrangements (cycle-times sorted
//! along every grid row and every grid column); [`enumerate_nondecreasing`]
//! generates exactly those, and [`sorted_row_major`] builds the heuristic's
//! canonical starting arrangement of Section 4.4.1.

use std::fmt;

/// Index of a processor in the original (unarranged) processor list.
pub type ProcId = usize;

/// Why a cycle-time specification cannot form an [`Arrangement`].
///
/// The panicking constructors ([`Arrangement::from_times`] and friends)
/// are right for in-process callers whose inputs are program invariants;
/// code fed by *untrusted* input — the CLI argument parser, the
/// `hetgrid serve` wire protocol — validates first with
/// [`validate_times`] / [`Arrangement::try_from_times`] so a malformed
/// request degrades to a typed error instead of a panic.
#[derive(Clone, Debug, PartialEq)]
pub enum TimesError {
    /// `p == 0` or `q == 0`.
    EmptyGrid,
    /// `times.len()` is not `p * q`.
    SizeMismatch {
        /// `p * q`.
        expected: usize,
        /// `times.len()`.
        got: usize,
    },
    /// A cycle-time is not strictly positive and finite.
    BadCycleTime {
        /// Row-major index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for TimesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimesError::EmptyGrid => write!(f, "grid must have p >= 1 and q >= 1"),
            TimesError::SizeMismatch { expected, got } => {
                write!(f, "expected {expected} cycle-times, got {got}")
            }
            TimesError::BadCycleTime { index, value } => write!(
                f,
                "cycle-time [{index}] = {value} must be strictly positive and finite"
            ),
        }
    }
}

impl std::error::Error for TimesError {}

/// Checks that `times` is a well-formed row-major `p x q` cycle-time
/// matrix: non-empty grid, exact length, every entry strictly positive
/// and finite. The non-panicking counterpart of the
/// [`Arrangement::from_times`] assertions.
pub fn validate_times(times: &[f64], p: usize, q: usize) -> Result<(), TimesError> {
    if p == 0 || q == 0 {
        return Err(TimesError::EmptyGrid);
    }
    if times.len() != p * q {
        return Err(TimesError::SizeMismatch {
            expected: p * q,
            got: times.len(),
        });
    }
    for (index, &value) in times.iter().enumerate() {
        if !(value > 0.0 && value.is_finite()) {
            return Err(TimesError::BadCycleTime { index, value });
        }
    }
    Ok(())
}

/// A concrete placement of `p * q` heterogeneous processors on a `p x q`
/// grid.
///
/// `times[i * q + j]` is the *cycle-time* `t_ij` of the processor at grid
/// position `(i, j)` — the normalized time it needs to update one
/// `r x r` matrix block. `procs[i * q + j]` remembers which original
/// processor that is.
#[derive(Clone, PartialEq)]
pub struct Arrangement {
    p: usize,
    q: usize,
    times: Vec<f64>,
    procs: Vec<ProcId>,
}

impl Arrangement {
    /// Builds an arrangement from a row-major cycle-time matrix; processor
    /// ids are assigned row-major.
    ///
    /// # Panics
    /// Panics if `times.len() != p * q` or any cycle-time is not strictly
    /// positive and finite.
    pub fn from_times(p: usize, q: usize, times: Vec<f64>) -> Self {
        assert_eq!(times.len(), p * q, "Arrangement: size mismatch");
        assert!(p > 0 && q > 0, "Arrangement: empty grid");
        assert!(
            times.iter().all(|&t| t > 0.0 && t.is_finite()),
            "Arrangement: cycle-times must be positive and finite"
        );
        let procs = (0..p * q).collect();
        Arrangement { p, q, times, procs }
    }

    /// Non-panicking [`Arrangement::from_times`]: validates first and
    /// reports a typed [`TimesError`] on malformed input. Use this on
    /// untrusted input paths (CLI arguments, the serve wire protocol).
    pub fn try_from_times(p: usize, q: usize, times: Vec<f64>) -> Result<Self, TimesError> {
        validate_times(&times, p, q)?;
        let procs = (0..p * q).collect();
        Ok(Arrangement { p, q, times, procs })
    }

    /// Builds an arrangement from rows of cycle-times.
    ///
    /// # Panics
    /// Panics on ragged input or non-positive cycle-times.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let p = rows.len();
        assert!(p > 0, "Arrangement: no rows");
        let q = rows[0].len();
        let mut times = Vec::with_capacity(p * q);
        for r in rows {
            assert_eq!(r.len(), q, "Arrangement: ragged rows");
            times.extend_from_slice(r);
        }
        Self::from_times(p, q, times)
    }

    /// Builds an arrangement with an explicit processor-id mapping.
    ///
    /// # Panics
    /// Panics if lengths mismatch or `procs` is not a permutation-like
    /// assignment of distinct ids.
    pub fn with_procs(p: usize, q: usize, times: Vec<f64>, procs: Vec<ProcId>) -> Self {
        assert_eq!(procs.len(), p * q, "Arrangement: procs size mismatch");
        let mut seen = vec![false; procs.len()];
        for &id in &procs {
            assert!(
                id < procs.len() && !seen[id],
                "Arrangement: procs not a permutation"
            );
            seen[id] = true;
        }
        let mut a = Self::from_times(p, q, times);
        a.procs = procs;
        a
    }

    /// Number of grid rows `p`.
    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of grid columns `q`.
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Total number of processors `p * q`.
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Always false: arrangements are non-empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Cycle-time `t_ij` of the processor at grid position `(i, j)`.
    #[inline]
    pub fn time(&self, i: usize, j: usize) -> f64 {
        self.times[i * self.q + j]
    }

    /// Original processor id at grid position `(i, j)`.
    #[inline]
    pub fn proc(&self, i: usize, j: usize) -> ProcId {
        self.procs[i * self.q + j]
    }

    /// Row-major cycle-times.
    #[inline]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Cycle-times of grid row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.times[i * self.q..(i + 1) * self.q]
    }

    /// `true` iff cycle-times are non-decreasing along every row and every
    /// column (the canonical form of Theorem 1).
    pub fn is_nondecreasing(&self) -> bool {
        for i in 0..self.p {
            for j in 0..self.q {
                if j + 1 < self.q && self.time(i, j) > self.time(i, j + 1) {
                    return false;
                }
                if i + 1 < self.p && self.time(i, j) > self.time(i + 1, j) {
                    return false;
                }
            }
        }
        true
    }

    /// The inverse cycle-time matrix `T^inv = (1 / t_ij)` used by the
    /// heuristic (Section 4.4.2), as a dense matrix.
    pub fn inverse_times(&self) -> hetgrid_linalg::Matrix {
        hetgrid_linalg::Matrix::from_fn(self.p, self.q, |i, j| 1.0 / self.time(i, j))
    }

    /// Rank of the cycle-time matrix is 1 within tolerance `tol`
    /// (every 2x2 minor vanishes relative to its entries).
    pub fn is_rank1(&self, tol: f64) -> bool {
        for i in 1..self.p {
            for j in 1..self.q {
                let det = self.time(0, 0) * self.time(i, j) - self.time(0, j) * self.time(i, 0);
                let scale = self.time(0, 0) * self.time(i, j) + self.time(0, j) * self.time(i, 0);
                if det.abs() > tol * scale {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Debug for Arrangement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Arrangement {}x{} [", self.p, self.q)?;
        for i in 0..self.p {
            write!(f, "  [")?;
            for j in 0..self.q {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.time(i, j))?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Arrangement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Sorts the cycle-times ascending and fills the grid row-major — the
/// initial arrangement of the polynomial heuristic (Section 4.4.1):
/// `t_{i,j} <= t_{i,j+1}` and `t_{i,q} <= t_{i+1,1}`.
///
/// Processor ids follow their cycle-times.
///
/// # Panics
/// Panics if `times.len() != p * q` or a cycle-time is not positive.
pub fn sorted_row_major(times: &[f64], p: usize, q: usize) -> Arrangement {
    assert_eq!(times.len(), p * q, "sorted_row_major: size mismatch");
    let mut idx: Vec<usize> = (0..times.len()).collect();
    idx.sort_by(|&a, &b| times[a].partial_cmp(&times[b]).expect("NaN cycle-time"));
    let sorted: Vec<f64> = idx.iter().map(|&k| times[k]).collect();
    Arrangement::with_procs(p, q, sorted, idx)
}

/// Enumerates every *non-decreasing* arrangement of `times` on a `p x q`
/// grid, invoking `visit` for each. Duplicate cycle-times are handled so
/// that each distinct cycle-time *matrix* is produced exactly once
/// (processor ids are assigned in sorted order for equal times).
///
/// The count for distinct values is the number of standard Young tableaux
/// of rectangular shape `p x q` (e.g. 42 for 3x3) — small enough to
/// enumerate exhaustively for the grid sizes where the exact solver is
/// practical.
///
/// # Panics
/// Panics if `times.len() != p * q`.
pub fn enumerate_nondecreasing(
    times: &[f64],
    p: usize,
    q: usize,
    mut visit: impl FnMut(&Arrangement),
) {
    enumerate_nondecreasing_grids(times, p, q, |grid_times, grid_procs| {
        let a = Arrangement::with_procs(p, q, grid_times.to_vec(), grid_procs.to_vec());
        visit(&a);
    });
}

/// Raw variant of [`enumerate_nondecreasing`]: invokes `visit` with the
/// row-major cycle-time grid and the matching processor-id grid instead
/// of a constructed [`Arrangement`]. The slices are reused between
/// callbacks — clone them if a candidate must outlive its visit. Used by
/// the exact solver's fused enumeration loop, where building (and
/// validating) an `Arrangement` per candidate would rival the
/// per-arrangement solve cost.
///
/// # Panics
/// Panics if `times.len() != p * q`.
pub fn enumerate_nondecreasing_grids(
    times: &[f64],
    p: usize,
    q: usize,
    visit: impl FnMut(&[f64], &[ProcId]),
) {
    assert_eq!(times.len(), p * q, "enumerate_nondecreasing: size mismatch");
    let mut idx: Vec<usize> = (0..times.len()).collect();
    idx.sort_by(|&a, &b| times[a].partial_cmp(&times[b]).expect("NaN cycle-time"));
    let sorted_t: Vec<f64> = idx.iter().map(|&k| times[k]).collect();

    struct Ctx<'a, F> {
        p: usize,
        q: usize,
        /// Candidate cycle-times, ascending.
        sorted_t: &'a [f64],
        /// Processor id of each candidate.
        sorted_id: &'a [ProcId],
        used: Vec<bool>,
        grid_times: Vec<f64>,
        grid_procs: Vec<ProcId>,
        visit: F,
    }

    // Fill positions row-major; at each cell the value must be >= the cell
    // above and to the left. Skip equal candidate values (only take the
    // first unused index of a run of equals) to avoid duplicates.
    fn rec<F: FnMut(&[f64], &[ProcId])>(ctx: &mut Ctx<'_, F>, pos: usize) {
        if pos == ctx.p * ctx.q {
            (ctx.visit)(&ctx.grid_times, &ctx.grid_procs);
            return;
        }
        let (i, j) = (pos / ctx.q, pos % ctx.q);
        let min_left = if j > 0 { ctx.grid_times[pos - 1] } else { 0.0 };
        let min_up = if i > 0 {
            ctx.grid_times[pos - ctx.q]
        } else {
            0.0
        };
        let lower = min_left.max(min_up);

        // Candidates are sorted, so everything below `lower` is one
        // contiguous prefix — skip it wholesale.
        let start = ctx.sorted_t.partition_point(|&t| t < lower);
        let mut last_val = f64::NEG_INFINITY;
        for k in start..ctx.sorted_t.len() {
            if ctx.used[k] {
                continue;
            }
            let t = ctx.sorted_t[k];
            if t == last_val {
                // An equal value was already tried at this cell; taking a
                // different copy yields the same cycle-time matrix.
                continue;
            }
            last_val = t;
            ctx.used[k] = true;
            ctx.grid_times[pos] = t;
            ctx.grid_procs[pos] = ctx.sorted_id[k];
            rec(ctx, pos + 1);
            ctx.used[k] = false;
        }
    }

    let n = times.len();
    let mut ctx = Ctx {
        p,
        q,
        sorted_t: &sorted_t,
        sorted_id: &idx,
        used: vec![false; n],
        grid_times: vec![0.0f64; n],
        grid_procs: vec![0usize; n],
        visit,
    };
    rec(&mut ctx, 0);
}

/// Enumerates *all* arrangements (every permutation of `times` on the
/// grid). Exponential; only for cross-checking Theorem 1 on tiny inputs.
pub fn enumerate_all(times: &[f64], p: usize, q: usize, mut visit: impl FnMut(&Arrangement)) {
    assert_eq!(times.len(), p * q, "enumerate_all: size mismatch");
    let n = times.len();
    let mut perm: Vec<usize> = (0..n).collect();
    // Heap's algorithm, iterative.
    let mut c = vec![0usize; n];
    let emit = |perm: &[usize], visit: &mut dyn FnMut(&Arrangement)| {
        let t: Vec<f64> = perm.iter().map(|&k| times[k]).collect();
        let a = Arrangement::with_procs(p, q, t, perm.to_vec());
        visit(&a);
    };
    emit(&perm, &mut visit);
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            emit(&perm, &mut visit);
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_row_major_matches_paper_example() {
        // Section 4.4.1: nine processors with cycle-times 1..9.
        let times: Vec<f64> = vec![5.0, 3.0, 9.0, 1.0, 7.0, 2.0, 8.0, 6.0, 4.0];
        let a = sorted_row_major(&times, 3, 3);
        assert_eq!(a.times(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        assert!(a.is_nondecreasing());
        // Processor ids must point back at the original positions.
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(times[a.proc(i, j)], a.time(i, j));
            }
        }
    }

    #[test]
    fn nondecreasing_detection() {
        let good = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        assert!(good.is_nondecreasing());
        let bad_row = Arrangement::from_rows(&[vec![2.0, 1.0], vec![3.0, 6.0]]);
        assert!(!bad_row.is_nondecreasing());
        let bad_col = Arrangement::from_rows(&[vec![3.0, 4.0], vec![1.0, 6.0]]);
        assert!(!bad_col.is_nondecreasing());
    }

    #[test]
    fn rank1_detection() {
        // Figure 1: [[1,2],[3,6]] is rank-1; the modified [[1,2],[3,5]] is not.
        let r1 = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        assert!(r1.is_rank1(1e-12));
        let r2 = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        assert!(!r2.is_rank1(1e-6));
    }

    #[test]
    fn enumerate_3x3_distinct_counts_young_tableaux() {
        // 42 standard Young tableaux of shape 3x3.
        let times: Vec<f64> = (1..=9).map(|x| x as f64).collect();
        let mut count = 0;
        enumerate_nondecreasing(&times, 3, 3, |a| {
            assert!(a.is_nondecreasing());
            count += 1;
        });
        assert_eq!(count, 42);
    }

    #[test]
    fn enumerate_2x2_distinct() {
        // Shape 2x2 has 2 standard Young tableaux.
        let times = vec![1.0, 2.0, 3.0, 6.0];
        let mut seen = Vec::new();
        enumerate_nondecreasing(&times, 2, 2, |a| seen.push(a.times().to_vec()));
        assert_eq!(seen.len(), 2);
        assert!(seen.contains(&vec![1.0, 2.0, 3.0, 6.0]));
        assert!(seen.contains(&vec![1.0, 3.0, 2.0, 6.0]));
    }

    #[test]
    fn enumerate_handles_duplicates_without_repeats() {
        // All-equal times: exactly one non-decreasing matrix.
        let times = vec![2.0; 6];
        let mut count = 0;
        enumerate_nondecreasing(&times, 2, 3, |_| count += 1);
        assert_eq!(count, 1);

        // 1,1,2,2 on a 2x2 grid: matrices [[1,1],[2,2]], [[1,2],[1,2]] and
        // [[1,2],[2, ...]] wait — [[1,2],[2,1]] is not valid. Valid distinct
        // matrices: [[1,1],[2,2]] and [[1,2],[1,2]].
        let times = vec![1.0, 1.0, 2.0, 2.0];
        let mut seen = Vec::new();
        enumerate_nondecreasing(&times, 2, 2, |a| seen.push(a.times().to_vec()));
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn enumerate_all_counts_factorial() {
        let times = vec![1.0, 2.0, 3.0, 4.0];
        let mut count = 0;
        enumerate_all(&times, 2, 2, |_| count += 1);
        assert_eq!(count, 24);
    }

    #[test]
    fn inverse_times() {
        let a = Arrangement::from_rows(&[vec![1.0, 2.0], vec![4.0, 8.0]]);
        let inv = a.inverse_times();
        assert_eq!(inv[(1, 1)], 0.125);
        assert_eq!(inv[(0, 0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cycle_time_rejected() {
        Arrangement::from_times(1, 2, vec![0.0, 1.0]);
    }
}
