//! Metaheuristic arrangement search: swap-based local search and
//! simulated annealing over processor placements.
//!
//! The paper conjectures the 2D load-balancing decision problem is
//! NP-complete (Section 4.1) and offers an exponential exact search plus
//! the polynomial SVD heuristic. This module adds the natural third
//! option: neighbourhood search over arrangements, with the fast
//! alternating fixpoint of [`crate::alternating`] as the evaluator.
//! It is used in the benches as an ablation against the SVD heuristic
//! (see DESIGN.md).

use crate::alternating;
use crate::arrangement::{sorted_row_major, Arrangement};
use crate::objective::Allocation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How each candidate arrangement is scored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Evaluator {
    /// Alternating fixpoint from a uniform start — cheapest, may settle
    /// in a suboptimal fixpoint.
    Alternating,
    /// One SVD step + fixpoint normalization (the heuristic's inner
    /// solver) — better seeds, still polynomial. The default.
    SvdSeeded,
    /// The exact spanning-tree solver — exponential; only for grids
    /// within [`crate::exact::solve_arrangement`]'s limits.
    Exact,
}

/// Options for [`local_search`] and [`anneal`].
#[derive(Clone, Copy, Debug)]
pub struct SearchOptions {
    /// Maximum sweeps of the alternating evaluator per arrangement.
    pub eval_sweeps: usize,
    /// Random restarts (local search) / chain length factor (annealing).
    pub restarts: usize,
    /// RNG seed for restarts and annealing proposals.
    pub seed: u64,
    /// Scoring method per candidate arrangement.
    pub evaluator: Evaluator,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            eval_sweeps: 500,
            restarts: 3,
            seed: 0x5EA_12C4,
            evaluator: Evaluator::SvdSeeded,
        }
    }
}

/// Result of a metaheuristic search.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// Best arrangement found.
    pub arrangement: Arrangement,
    /// Its alternating-fixpoint allocation.
    pub alloc: Allocation,
    /// Its objective `(sum r)(sum c)`.
    pub obj2: f64,
    /// Number of arrangements evaluated.
    pub evaluations: u64,
}

fn evaluate(arr: &Arrangement, opts: &SearchOptions) -> (Allocation, f64) {
    let alloc = match opts.evaluator {
        Evaluator::Alternating => alternating::optimize(arr, opts.eval_sweeps).alloc,
        Evaluator::SvdSeeded => {
            crate::heuristic::solve_arrangement(arr, crate::heuristic::NormalizeMode::Fixpoint)
        }
        Evaluator::Exact => crate::exact::solve_arrangement(arr).alloc,
    };
    let obj = alloc.obj2();
    (alloc, obj)
}

fn swap_positions(arr: &Arrangement, a: usize, b: usize) -> Arrangement {
    let (p, q) = (arr.p(), arr.q());
    let mut times: Vec<f64> = arr.times().to_vec();
    let mut procs: Vec<usize> = (0..p * q).map(|k| arr.proc(k / q, k % q)).collect();
    times.swap(a, b);
    procs.swap(a, b);
    Arrangement::with_procs(p, q, times, procs)
}

/// Derives an independent per-restart seed so restarts can run in any
/// order (or concurrently) and still be reproducible.
fn restart_seed(seed: u64, restart: usize) -> u64 {
    seed ^ (restart as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One hill-climbing descent from a fixed start; returns the local
/// optimum and how many arrangements it evaluated.
fn climb(mut current: Arrangement, opts: &SearchOptions) -> (SearchResult, u64) {
    let n = current.p() * current.q();
    let (mut cur_alloc, mut cur_obj) = evaluate(&current, opts);
    let mut evaluations = 1u64;
    loop {
        let mut improved: Option<(Arrangement, Allocation, f64)> = None;
        for a in 0..n {
            for b in a + 1..n {
                if current.times()[a] == current.times()[b] {
                    continue; // identical processors: no-op swap
                }
                let cand = swap_positions(&current, a, b);
                let (alloc, obj) = evaluate(&cand, opts);
                evaluations += 1;
                if obj > cur_obj + 1e-12 && improved.as_ref().is_none_or(|(_, _, o)| obj > *o) {
                    improved = Some((cand, alloc, obj));
                }
            }
        }
        match improved {
            Some((cand, alloc, obj)) => {
                current = cand;
                cur_alloc = alloc;
                cur_obj = obj;
            }
            None => break,
        }
    }
    (
        SearchResult {
            arrangement: current,
            alloc: cur_alloc,
            obj2: cur_obj,
            evaluations: 0,
        },
        evaluations,
    )
}

/// Hill-climbing over pairwise swaps of grid positions, with random
/// restarts. Each restart shuffles the placement, then applies
/// best-improvement swaps until no swap helps. Restarts are independent
/// (each has its own derived RNG seed) and run concurrently on the
/// shared [`hetgrid_par`] pool; results are reduced deterministically in
/// restart order, so the answer does not depend on the thread count.
///
/// # Panics
/// Panics if `times.len() != p * q`.
pub fn local_search(times: &[f64], p: usize, q: usize, opts: SearchOptions) -> SearchResult {
    assert_eq!(times.len(), p * q, "local_search: size mismatch");
    let n = p * q;

    // Build every restart's starting arrangement up front: restart 0 is
    // the canonical sorted arrangement, later ones random shuffles.
    let starts: Vec<Arrangement> = (0..=opts.restarts)
        .map(|restart| {
            if restart == 0 {
                sorted_row_major(times, p, q)
            } else {
                let mut rng = StdRng::seed_from_u64(restart_seed(opts.seed, restart));
                let mut idx: Vec<usize> = (0..n).collect();
                for i in (1..n).rev() {
                    let j = rng.gen_range(0..=i);
                    idx.swap(i, j);
                }
                let t: Vec<f64> = idx.iter().map(|&k| times[k]).collect();
                Arrangement::with_procs(p, q, t, idx)
            }
        })
        .collect();

    let outcomes = hetgrid_par::global().parallel_map(starts, |start| climb(start, &opts));

    let mut evaluations = 0u64;
    let mut best: Option<SearchResult> = None;
    for (result, evals) in outcomes {
        evaluations += evals;
        if best.as_ref().is_none_or(|b| result.obj2 > b.obj2) {
            best = Some(result);
        }
    }
    let mut out = best.expect("at least one restart ran");
    out.evaluations = evaluations;
    out
}

/// One annealing chain of `n^2 * 4` steps from the sorted arrangement
/// with the given seed.
fn anneal_chain(
    times: &[f64],
    p: usize,
    q: usize,
    opts: &SearchOptions,
    seed: u64,
) -> (SearchResult, u64) {
    let n = p * q;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = sorted_row_major(times, p, q);
    let (mut cur_alloc, mut cur_obj) = evaluate(&current, opts);
    let mut evaluations = 1u64;

    let mut best = SearchResult {
        arrangement: current.clone(),
        alloc: cur_alloc.clone(),
        obj2: cur_obj,
        evaluations: 0,
    };

    let steps = n * n * 4;
    let t0 = (cur_obj * 0.05).max(1e-6);
    for step in 0..steps {
        let temp = t0 * (1.0 - step as f64 / steps as f64).max(1e-9);
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n);
        if a == b {
            b = (b + 1) % n;
        }
        if current.times()[a] == current.times()[b] {
            continue;
        }
        let cand = swap_positions(&current, a, b);
        let (alloc, obj) = evaluate(&cand, opts);
        evaluations += 1;
        let delta = obj - cur_obj;
        if delta >= 0.0 || rng.gen::<f64>() < (delta / temp).exp() {
            current = cand;
            cur_alloc = alloc;
            cur_obj = obj;
            if cur_obj > best.obj2 {
                best = SearchResult {
                    arrangement: current.clone(),
                    alloc: cur_alloc.clone(),
                    obj2: cur_obj,
                    evaluations: 0,
                };
            }
        }
    }
    let _ = cur_alloc;
    (best, evaluations)
}

/// Simulated annealing over random swaps with geometric cooling. Accepts
/// worse moves with probability `exp(delta / T)`; each chain cools from
/// the observed objective scale to near zero over `n^2 * 4` steps.
/// `opts.restarts.max(1)` independent chains (distinct derived seeds)
/// run concurrently on the shared [`hetgrid_par`] pool and the best
/// chain wins; the reduction is in chain order, so the result does not
/// depend on the thread count.
///
/// # Panics
/// Panics if `times.len() != p * q`.
pub fn anneal(times: &[f64], p: usize, q: usize, opts: SearchOptions) -> SearchResult {
    assert_eq!(times.len(), p * q, "anneal: size mismatch");
    let chains = opts.restarts.max(1);
    let seeds: Vec<u64> = (0..chains)
        .map(|c| restart_seed(opts.seed ^ 0xA44EA1, c))
        .collect();
    let outcomes =
        hetgrid_par::global().parallel_map(seeds, |seed| anneal_chain(times, p, q, &opts, seed));

    let mut evaluations = 0u64;
    let mut best: Option<SearchResult> = None;
    for (result, evals) in outcomes {
        evaluations += evals;
        if best.as_ref().is_none_or(|b| result.obj2 > b.obj2) {
            best = Some(result);
        }
    }
    let mut out = best.expect("at least one chain ran");
    out.evaluations = evaluations;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::is_feasible;

    #[test]
    fn local_search_matches_exact_on_2x2() {
        for times in [
            [1.0, 2.0, 3.0, 5.0],
            [0.3, 0.9, 0.4, 0.7],
            [1.0, 1.0, 1.0, 10.0],
        ] {
            let global = crate::exact::solve_global(&times, 2, 2);
            let ls = local_search(
                &times,
                2,
                2,
                SearchOptions {
                    evaluator: Evaluator::Exact,
                    ..Default::default()
                },
            );
            // With the exact evaluator the search must find the global
            // optimum (2x2 has only two non-decreasing arrangements and
            // the search also visits decreasing ones).
            assert!(
                ls.obj2 >= global.obj2 - 1e-9,
                "local search {} far from exact {} on {:?}",
                ls.obj2,
                global.obj2,
                times
            );
            assert!(ls.obj2 <= global.obj2 + 1e-9, "evaluator overshoots");
        }
    }

    #[test]
    fn local_search_beats_or_ties_its_start() {
        let times = [0.11, 0.47, 0.23, 0.95, 0.61, 0.38];
        let start = sorted_row_major(&times, 2, 3);
        let (_, start_obj) = evaluate(&start, &SearchOptions::default());
        let ls = local_search(&times, 2, 3, SearchOptions::default());
        assert!(ls.obj2 >= start_obj - 1e-12);
        assert!(is_feasible(&ls.arrangement, &ls.alloc, 1e-9));
    }

    #[test]
    fn anneal_feasible_and_not_worse_than_start() {
        let times = [0.8, 0.2, 0.5, 0.9, 0.4, 0.6, 0.1, 0.3, 0.7];
        let start = sorted_row_major(&times, 3, 3);
        let (_, start_obj) = evaluate(&start, &SearchOptions::default());
        let an = anneal(
            &times,
            3,
            3,
            SearchOptions {
                restarts: 2,
                ..Default::default()
            },
        );
        assert!(an.obj2 >= start_obj - 1e-12);
        assert!(is_feasible(&an.arrangement, &an.alloc, 1e-9));
        assert!(an.evaluations > 1);
    }

    #[test]
    fn search_preserves_multiset() {
        let times = [0.9, 0.1, 0.4, 0.6, 0.3, 0.8];
        let ls = local_search(&times, 2, 3, SearchOptions::default());
        let mut got: Vec<f64> = ls.arrangement.times().to_vec();
        let mut want = times.to_vec();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, want);
    }

    #[test]
    fn homogeneous_terminates_immediately() {
        // All swaps are no-ops; the search must not loop.
        let times = [2.0; 6];
        let ls = local_search(&times, 2, 3, SearchOptions::default());
        assert!((ls.obj2 - 3.0).abs() < 1e-9); // 6 procs at t=2: obj2 = 6/2
    }
}
