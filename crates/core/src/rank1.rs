//! Rank-1 cycle-time matrices (Section 4.3.2): the case where perfect
//! load balance is achievable, plus a practical factorization algorithm
//! deciding whether a *set* of cycle-times can be arranged as a rank-1
//! `p x q` matrix at all (the paper notes this is "very difficult" in
//! general; the multiset-factorization search below is exact and fast for
//! the grid sizes that occur in practice).

use crate::arrangement::Arrangement;
use crate::objective::Allocation;

/// Closed-form optimal shares for a rank-1 arrangement:
/// `r_i = 1/t_{i,1}`, `c_j = t_{1,1}/t_{1,j}` make every product
/// `r_i t_ij c_j` equal to 1, so every processor is busy 100% of the
/// time. Returns `None` if the arrangement is not rank-1 within `tol`.
pub fn rank1_allocation(arr: &Arrangement, tol: f64) -> Option<Allocation> {
    if !arr.is_rank1(tol) {
        return None;
    }
    let r: Vec<f64> = (0..arr.p()).map(|i| 1.0 / arr.time(i, 0)).collect();
    let c: Vec<f64> = (0..arr.q())
        .map(|j| arr.time(0, 0) / arr.time(0, j))
        .collect();
    Some(Allocation::new(r, c))
}

/// Tries to arrange the multiset `times` as a rank-1 `p x q` matrix
/// `t_ij = u_i * v_j`.
///
/// The search maintains the invariant that all products of the factors
/// found so far have been matched against the multiset. The smallest
/// unmatched value must then be (new smallest row factor) x (smallest
/// column factor) or vice versa — a two-way branch, at most
/// `2^(p+q-2)` paths, with heavy pruning from the product matching.
///
/// Returns a non-decreasing rank-1 [`Arrangement`] if one exists.
pub fn try_rank1_arrangement(
    times: &[f64],
    p: usize,
    q: usize,
    rel_tol: f64,
) -> Option<Arrangement> {
    assert_eq!(times.len(), p * q, "try_rank1_arrangement: size mismatch");
    assert!(
        times.iter().all(|&t| t > 0.0 && t.is_finite()),
        "try_rank1_arrangement: cycle-times must be positive"
    );
    let mut sorted: Vec<f64> = times.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN cycle-time"));

    // Multiset as a sorted vector + used flags.
    let mut used = vec![false; sorted.len()];

    // Gauge: u_0 = 1, v_0 = smallest value.
    let v0 = sorted[0];
    used[0] = true;
    let mut u = vec![1.0f64];
    let mut v = vec![v0];

    fn take(sorted: &[f64], used: &mut [bool], value: f64, rel_tol: f64) -> Option<usize> {
        // Find an unused element approximately equal to `value`.
        let mut best: Option<(usize, f64)> = None;
        for (k, &s) in sorted.iter().enumerate() {
            if used[k] {
                continue;
            }
            let err = (s - value).abs();
            if err <= rel_tol * value.max(s) && best.is_none_or(|(_, e)| err < e) {
                best = Some((k, err));
            }
        }
        best.map(|(k, _)| {
            used[k] = true;
            k
        })
    }

    fn untake(used: &mut [bool], k: usize) {
        used[k] = false;
    }

    fn first_unused(sorted: &[f64], used: &[bool]) -> Option<usize> {
        used.iter().position(|&b| !b).inspect(|_k| {
            let _ = sorted;
        })
    }

    fn rec(
        sorted: &[f64],
        used: &mut [bool],
        u: &mut Vec<f64>,
        v: &mut Vec<f64>,
        p: usize,
        q: usize,
        rel_tol: f64,
    ) -> bool {
        if u.len() == p && v.len() == q {
            return used.iter().all(|&b| b);
        }
        let Some(k0) = first_unused(sorted, used) else {
            return false;
        };
        let x = sorted[k0];

        // Branch A: x = u_new * v[0]  (a new row factor).
        if u.len() < p {
            let u_new = x / v[0];
            // All products u_new * v_j must be present.
            let mut taken = Vec::with_capacity(v.len());
            let mut ok = true;
            for &vj in v.iter() {
                match take(sorted, used, u_new * vj, rel_tol) {
                    Some(k) => taken.push(k),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                u.push(u_new);
                if rec(sorted, used, u, v, p, q, rel_tol) {
                    return true;
                }
                u.pop();
            }
            for k in taken {
                untake(used, k);
            }
        }

        // Branch B: x = u[0] * v_new = v_new  (a new column factor).
        if v.len() < q {
            let v_new = x;
            let mut taken = Vec::with_capacity(u.len());
            let mut ok = true;
            for &ui in u.iter() {
                match take(sorted, used, ui * v_new, rel_tol) {
                    Some(k) => taken.push(k),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                v.push(v_new);
                if rec(sorted, used, u, v, p, q, rel_tol) {
                    return true;
                }
                v.pop();
            }
            for k in taken {
                untake(used, k);
            }
        }
        false
    }

    if rec(&sorted, &mut used, &mut u, &mut v, p, q, rel_tol) {
        // Factors come out ascending by construction; build the matrix
        // from the *actual* multiset values so no precision is lost:
        // greedily match each u_i * v_j against the closest input value.
        u.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
        let mut remaining: Vec<f64> = sorted.clone();
        let mut grid = vec![0.0f64; p * q];
        for i in 0..p {
            for j in 0..q {
                let target = u[i] * v[j];
                let (k, _) = remaining
                    .iter()
                    .enumerate()
                    .map(|(k, &s)| (k, (s - target).abs()))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN"))
                    .expect("remaining non-empty");
                grid[i * q + j] = remaining.remove(k);
            }
        }
        let arr = Arrangement::from_times(p, q, grid);
        debug_assert!(arr.is_nondecreasing());
        Some(arr)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::workload_matrix;

    #[test]
    fn fig1_rank1_closed_form() {
        // Figure 1: [[1,2],[3,6]]; r = (1, 1/3), c = (1, 1/2).
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let alloc = rank1_allocation(&arr, 1e-12).expect("rank-1");
        assert!((alloc.r[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((alloc.c[1] - 0.5).abs() < 1e-12);
        let b = workload_matrix(&arr, &alloc);
        for x in b.as_slice() {
            assert!((x - 1.0).abs() < 1e-12, "not perfectly balanced");
        }
    }

    #[test]
    fn non_rank1_returns_none() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        assert!(rank1_allocation(&arr, 1e-9).is_none());
    }

    #[test]
    fn factorization_finds_hidden_arrangement() {
        // u = (1, 2), v = (1, 3, 5): the sorted-row-major arrangement of
        // {1,2,3,5,6,10} is NOT rank-1, but a rank-1 arrangement exists.
        let times = [1.0, 2.0, 3.0, 5.0, 6.0, 10.0];
        let sorted = crate::arrangement::sorted_row_major(&times, 2, 3);
        assert!(!sorted.is_rank1(1e-9));
        let arr = try_rank1_arrangement(&times, 2, 3, 1e-9).expect("rank-1 arrangement exists");
        assert!(arr.is_rank1(1e-9));
        // It must use exactly the input multiset.
        let mut got: Vec<f64> = arr.times().to_vec();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, vec![1.0, 2.0, 3.0, 5.0, 6.0, 10.0]);
    }

    #[test]
    fn factorization_rejects_impossible_sets() {
        // {1,2,3,5}: 1*5 != 2*3 is fine, but no rank-1 2x2 arrangement:
        // any arrangement needs t11*t22 == t12*t21 for some pairing;
        // 1*5 != 2*3 (5 != 6), 1*3 != 2*5, 1*2 != 3*5 -> none.
        assert!(try_rank1_arrangement(&[1.0, 2.0, 3.0, 5.0], 2, 2, 1e-9).is_none());
    }

    #[test]
    fn factorization_accepts_fig1_set() {
        // Either [[1,2],[3,6]] or its transpose-flavor [[1,3],[2,6]] is a
        // valid rank-1 non-decreasing arrangement of this multiset.
        let arr = try_rank1_arrangement(&[6.0, 1.0, 3.0, 2.0], 2, 2, 1e-9).expect("rank-1");
        assert!(arr.is_rank1(1e-12));
        assert!(arr.is_nondecreasing());
        let mut got: Vec<f64> = arr.times().to_vec();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, vec![1.0, 2.0, 3.0, 6.0]);
    }

    #[test]
    fn factorization_with_duplicates() {
        // u = (1, 1), v = (2, 2): all entries 2.
        let arr = try_rank1_arrangement(&[2.0, 2.0, 2.0, 2.0], 2, 2, 1e-9).expect("rank-1");
        assert!(arr.is_rank1(1e-12));
    }

    #[test]
    fn factorization_3x3_powers() {
        // u = (1, 2, 4), v = (1, 2, 4): products are powers of two with
        // multiplicity — a stress test for the multiset matching.
        let mut times = Vec::new();
        for a in [1.0, 2.0, 4.0] {
            for b in [1.0, 2.0, 4.0] {
                times.push(a * b);
            }
        }
        let arr = try_rank1_arrangement(&times, 3, 3, 1e-9).expect("rank-1");
        assert!(arr.is_rank1(1e-9));
    }

    #[test]
    fn rank1_arrangement_gives_ideal_objective() {
        // For a rank-1 arrangement the exact optimum equals the ideal
        // aggregate-rate bound: obj2 = sum(1/t) achieved... specifically
        // obj2 = (sum_i 1/u_i)(sum_j v0/v_j) with gauge; simply check the
        // exact solver agrees with the closed form.
        let arr = try_rank1_arrangement(&[1.0, 2.0, 3.0, 6.0], 2, 2, 1e-9).unwrap();
        let closed = rank1_allocation(&arr, 1e-9).unwrap();
        let exact = crate::exact::solve_arrangement(&arr);
        assert!((closed.obj2() - exact.obj2).abs() < 1e-9);
    }
}
