//! High-level entry point: describe the machine pool once, then solve
//! with any of the library's strategies.
//!
//! ```
//! use hetgrid_core::problem::Problem;
//!
//! let solution = Problem::new(vec![1.0, 2.0, 3.0, 5.0])
//!     .grid(2, 2)
//!     .solve();
//! assert!(solution.obj2 > 1.9); // exact optimum for this pool is 2.0
//! ```

use crate::arrangement::Arrangement;
use crate::heuristic::{self, HeuristicOptions};
use crate::objective::{average_workload, Allocation};
use crate::search::{self, SearchOptions};
use crate::{exact, rank1};

/// Which solver to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Method {
    /// The paper's polynomial SVD heuristic with iterative refinement
    /// (Section 4.4). The default.
    #[default]
    Heuristic,
    /// Exhaustive search over non-decreasing arrangements with the
    /// spanning-tree exact solver (Sections 4.2–4.3). Exponential; small
    /// grids only.
    Exact,
    /// Swap-based local search with random restarts.
    LocalSearch,
    /// Simulated annealing.
    Annealing,
}

/// A machine pool plus a grid shape, ready to solve.
#[derive(Clone, Debug)]
pub struct Problem {
    times: Vec<f64>,
    p: Option<usize>,
    q: Option<usize>,
    method: Method,
    heuristic_options: HeuristicOptions,
    search_options: SearchOptions,
}

/// The outcome of [`Problem::solve`].
#[derive(Clone, Debug)]
pub struct Solution {
    /// The chosen arrangement of the processors.
    pub arrangement: Arrangement,
    /// The row/column shares.
    pub alloc: Allocation,
    /// The objective value `(sum r)(sum c)`.
    pub obj2: f64,
    /// Mean of the workload matrix (fraction of time the average
    /// processor is busy).
    pub average_workload: f64,
    /// The solver that produced this solution.
    pub method: Method,
    /// Whether this solution achieves perfect balance (every processor
    /// busy 100% of the time — possible exactly for rank-1
    /// arrangements, Section 4.3.2).
    pub perfectly_balanced: bool,
}

impl Problem {
    /// Starts a problem from processor cycle-times.
    ///
    /// # Panics
    /// Panics if `times` is empty or contains non-positive values.
    pub fn new(times: Vec<f64>) -> Self {
        assert!(!times.is_empty(), "Problem: no processors");
        assert!(
            times.iter().all(|&t| t > 0.0 && t.is_finite()),
            "Problem: cycle-times must be positive and finite"
        );
        Problem {
            times,
            p: None,
            q: None,
            method: Method::default(),
            heuristic_options: HeuristicOptions::default(),
            search_options: SearchOptions::default(),
        }
    }

    /// Fixes the grid shape. Without this, [`solve`](Self::solve) picks
    /// the most square factorization `p x q = n` with `p <= q`.
    ///
    /// # Panics
    /// Panics if `p * q` does not match the processor count.
    pub fn grid(mut self, p: usize, q: usize) -> Self {
        assert_eq!(p * q, self.times.len(), "Problem: grid size mismatch");
        self.p = Some(p);
        self.q = Some(q);
        self
    }

    /// Selects the solver.
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Overrides the heuristic options.
    pub fn heuristic_options(mut self, opts: HeuristicOptions) -> Self {
        self.heuristic_options = opts;
        self
    }

    /// Overrides the metaheuristic options.
    pub fn search_options(mut self, opts: SearchOptions) -> Self {
        self.search_options = opts;
        self
    }

    /// The grid shape that will be used.
    pub fn shape(&self) -> (usize, usize) {
        match (self.p, self.q) {
            (Some(p), Some(q)) => (p, q),
            _ => {
                // Most square factorization with p <= q.
                let n = self.times.len();
                let mut best = (1, n);
                for p in 1..=n {
                    if n.is_multiple_of(p) && p <= n / p {
                        best = (p, n / p);
                    }
                }
                best
            }
        }
    }

    /// Runs the selected solver.
    pub fn solve(&self) -> Solution {
        let (p, q) = self.shape();

        // Fast path: if a perfectly balancing rank-1 arrangement exists,
        // no solver can beat it (every processor 100% busy).
        if let Some(arr) = rank1::try_rank1_arrangement(&self.times, p, q, 1e-9) {
            let alloc = rank1::rank1_allocation(&arr, 1e-9).expect("rank-1 by construction");
            let obj2 = alloc.obj2();
            let avg = average_workload(&arr, &alloc);
            return Solution {
                arrangement: arr,
                alloc,
                obj2,
                average_workload: avg,
                method: self.method,
                perfectly_balanced: true,
            };
        }

        let (arrangement, alloc) = match self.method {
            Method::Heuristic => {
                let res = heuristic::solve(&self.times, p, q, self.heuristic_options);
                let b = res.best();
                (b.arrangement.clone(), b.alloc.clone())
            }
            Method::Exact => {
                let g = exact::solve_global(&self.times, p, q);
                (g.arrangement, g.alloc)
            }
            Method::LocalSearch => {
                let r = search::local_search(&self.times, p, q, self.search_options);
                (r.arrangement, r.alloc)
            }
            Method::Annealing => {
                let r = search::anneal(&self.times, p, q, self.search_options);
                (r.arrangement, r.alloc)
            }
        };
        let obj2 = alloc.obj2();
        let average_workload = average_workload(&arrangement, &alloc);
        let perfectly_balanced = (average_workload - 1.0).abs() < 1e-9;
        Solution {
            arrangement,
            alloc,
            obj2,
            average_workload,
            method: self.method,
            perfectly_balanced,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape_is_most_square() {
        assert_eq!(Problem::new(vec![1.0; 12]).shape(), (3, 4));
        assert_eq!(Problem::new(vec![1.0; 16]).shape(), (4, 4));
        assert_eq!(Problem::new(vec![1.0; 7]).shape(), (1, 7));
    }

    #[test]
    fn rank1_fast_path() {
        // {1,2,3,6} hides the rank-1 arrangement [[1,2],[3,6]].
        let s = Problem::new(vec![6.0, 2.0, 1.0, 3.0]).grid(2, 2).solve();
        assert!(s.perfectly_balanced);
        assert!((s.average_workload - 1.0).abs() < 1e-9);
        assert!((s.obj2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn methods_agree_on_easy_instance() {
        let times = vec![1.0, 2.0, 3.0, 5.0];
        let exact = Problem::new(times.clone())
            .grid(2, 2)
            .method(Method::Exact)
            .solve();
        let heur = Problem::new(times.clone()).grid(2, 2).solve();
        let ls = Problem::new(times)
            .grid(2, 2)
            .method(Method::LocalSearch)
            .solve();
        assert!(heur.obj2 <= exact.obj2 + 1e-9);
        assert!(ls.obj2 <= exact.obj2 + 1e-9);
        assert!(heur.obj2 >= 0.9 * exact.obj2);
    }

    #[test]
    fn solution_is_always_feasible() {
        let times = vec![0.3, 0.9, 0.5, 0.2, 0.7, 0.4];
        for method in [
            Method::Heuristic,
            Method::Exact,
            Method::LocalSearch,
            Method::Annealing,
        ] {
            let s = Problem::new(times.clone())
                .grid(2, 3)
                .method(method)
                .solve();
            assert!(
                crate::objective::is_feasible(&s.arrangement, &s.alloc, 1e-9),
                "{:?} produced an infeasible allocation",
                method
            );
        }
    }

    #[test]
    #[should_panic(expected = "grid size mismatch")]
    fn wrong_grid_rejected() {
        let _ = Problem::new(vec![1.0; 4]).grid(2, 3);
    }
}
