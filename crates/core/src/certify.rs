//! Solution certificates: machine-checkable evidence about an
//! allocation's quality, independent of which solver produced it.
//!
//! The exact solver's structure (Section 4.3.1) says the optimum sits on
//! a spanning tree of *tight* constraints. A certificate reports, for
//! any `(arrangement, allocation)` pair:
//!
//! * feasibility (every `r_i t_ij c_j <= 1`);
//! * per-row / per-column tightness (the coordinate-ascent fixpoint
//!   condition — necessary for optimality);
//! * whether the tight-constraint graph connects all rows and columns
//!   (the spanning-structure condition the optimum must satisfy);
//! * the certified optimality gap against the total-rate upper bound.

use crate::arrangement::Arrangement;
use crate::bounds::total_rate_upper_bound;
use crate::objective::{workload_matrix, Allocation};

/// Tolerance for counting a constraint as tight.
const TIGHT_TOL: f64 = 1e-7;

/// Machine-checkable quality evidence for an allocation.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Every constraint `r_i t_ij c_j <= 1` holds (within 1e-9).
    pub feasible: bool,
    /// Every grid row has a tight constraint.
    pub rows_tight: bool,
    /// Every grid column has a tight constraint.
    pub cols_tight: bool,
    /// The tight constraints, as `(i, j)` pairs.
    pub tight: Vec<(usize, usize)>,
    /// The tight-constraint bipartite graph connects all `p + q`
    /// vertices (a necessary condition for `Obj2` optimality).
    pub tight_graph_connected: bool,
    /// The achieved objective `(sum r)(sum c)`.
    pub obj2: f64,
    /// The total-rate upper bound `sum 1/t_ij`.
    pub upper_bound: f64,
}

impl Certificate {
    /// `true` when every necessary optimality condition holds:
    /// feasible, tight in every row and column, and the tight graph
    /// spans the grid. (Sufficient only together with an exact search;
    /// a certificate can hold at a non-global fixpoint.)
    pub fn locally_optimal(&self) -> bool {
        self.feasible && self.rows_tight && self.cols_tight && self.tight_graph_connected
    }

    /// Certified bound on the relative optimality gap:
    /// `1 - obj2 / upper_bound` — the true gap is at most this.
    pub fn gap_bound(&self) -> f64 {
        1.0 - self.obj2 / self.upper_bound
    }
}

/// Builds the certificate for an allocation on an arrangement.
///
/// # Panics
/// Panics if the shapes disagree.
pub fn certify(arr: &Arrangement, alloc: &Allocation) -> Certificate {
    let (p, q) = (arr.p(), arr.q());
    let b = workload_matrix(arr, alloc);
    let feasible = b.as_slice().iter().all(|&x| x <= 1.0 + 1e-9);

    let mut tight = Vec::new();
    for i in 0..p {
        for j in 0..q {
            if (b[(i, j)] - 1.0).abs() <= TIGHT_TOL {
                tight.push((i, j));
            }
        }
    }
    let rows_tight = (0..p).all(|i| tight.iter().any(|&(ti, _)| ti == i));
    let cols_tight = (0..q).all(|j| tight.iter().any(|&(_, tj)| tj == j));

    // Union-find over p + q vertices (rows then columns).
    let mut parent: Vec<usize> = (0..p + q).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(i, j) in &tight {
        let a = find(&mut parent, i);
        let c = find(&mut parent, p + j);
        if a != c {
            parent[a] = c;
        }
    }
    let root = find(&mut parent, 0);
    let tight_graph_connected = (0..p + q).all(|v| find(&mut parent, v) == root);

    Certificate {
        feasible,
        rows_tight,
        cols_tight,
        tight,
        tight_graph_connected,
        obj2: alloc.obj2(),
        upper_bound: total_rate_upper_bound(arr),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{alternating, exact};

    #[test]
    fn exact_solution_certifies() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let cert = certify(&arr, &sol.alloc);
        assert!(cert.feasible);
        assert!(cert.locally_optimal(), "{:?}", cert);
        // Tight edges of the optimal tree are among the certificate's.
        for e in &sol.tree {
            assert!(cert.tight.contains(e), "missing tight edge {:?}", e);
        }
        assert!(cert.gap_bound() >= 0.0);
        assert!(cert.gap_bound() < 0.03, "gap bound {}", cert.gap_bound());
    }

    #[test]
    fn rank1_certificate_has_zero_gap() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let sol = exact::solve_arrangement(&arr);
        let cert = certify(&arr, &sol.alloc);
        assert!(cert.locally_optimal());
        assert!(cert.gap_bound().abs() < 1e-9);
        // Every constraint is tight on a rank-1 grid.
        assert_eq!(cert.tight.len(), 4);
    }

    #[test]
    fn alternating_fixpoint_is_tight_but_maybe_disconnected() {
        // The coordinate-ascent fixpoint guarantees row/column tightness;
        // connectivity may fail at a suboptimal fixpoint, which the
        // certificate exposes.
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let alt = alternating::optimize(&arr, 10_000);
        let cert = certify(&arr, &alt.alloc);
        assert!(cert.feasible);
        assert!(cert.rows_tight);
        assert!(cert.cols_tight);
        // This particular fixpoint (obj 28/15 < 2) must NOT certify as
        // optimal-shaped if its objective is below the exact optimum...
        let exact_obj = exact::solve_arrangement(&arr).obj2;
        if cert.obj2 < exact_obj - 1e-9 {
            // Suboptimal: the certificate is still internally consistent.
            assert!(cert.gap_bound() > 0.0);
        }
    }

    #[test]
    fn infeasible_allocation_flagged() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let alloc = Allocation::new(vec![1.0, 1.0], vec![1.0, 1.0]);
        let cert = certify(&arr, &alloc);
        assert!(!cert.feasible);
        assert!(!cert.locally_optimal());
    }

    #[test]
    fn slack_allocation_not_tight() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        // Uniformly scaled-down shares: feasible but nothing tight.
        let alloc = Allocation::new(vec![0.1, 0.1], vec![0.1, 0.1]);
        let cert = certify(&arr, &alloc);
        assert!(cert.feasible);
        assert!(!cert.rows_tight);
        assert!(cert.tight.is_empty());
        assert!(!cert.locally_optimal());
    }
}
