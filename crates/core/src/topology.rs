//! Platform models: the shape of the machine a schedule targets.
//!
//! The paper's load-balancing objective assumes a 2D processor grid
//! ([`Topology::Grid2D`]), and historically that assumption was
//! hard-wired through every layer. *Revisiting Matrix Product on
//! Master-Worker Platforms* (Dongarra et al.; see PAPERS.md) studies a
//! genuinely different platform — bounded-memory workers fed by a
//! bandwidth-limited one-port master ([`Topology::Star`]) — and this
//! enum is the seam the plan/sim/exec layers branch on. A topology is
//! pure description: plan generators consume it to pick a schedule
//! family, `hetgrid_sim::counts` to pick a closed form, and the
//! executor to pick a worker layout; none of them hard-code a grid any
//! more.

/// The platform model a kernel schedule targets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Topology {
    /// The paper's `p x q` processor grid: every processor owns blocks
    /// per a [`hetgrid_dist`-style] distribution, broadcasts travel
    /// along grid rows and columns, and all inputs are pre-scattered.
    Grid2D {
        /// Grid rows.
        p: usize,
        /// Grid columns.
        q: usize,
    },
    /// A master-worker star: one master holds every input block and
    /// collects every output block; `workers` bounded-memory workers
    /// hold at most `worker_mem` blocks each and receive/return blocks
    /// over the master's **one-port** link (at most one send or receive
    /// in flight at the master at a time).
    Star {
        /// Number of workers (the master is extra).
        workers: usize,
        /// Per-worker block capacity (must be at least 3: one `C`, one
        /// `A` and one `B` block is the minimum streaming footprint).
        worker_mem: usize,
        /// Master link bandwidth in blocks/second — a modelling input
        /// for bandwidth-bound makespan estimates, not enforced by the
        /// executor (real transports have their own timing).
        master_bw: f64,
    },
}

impl Topology {
    /// Total processor count: `p * q` for a grid, `workers + 1` for a
    /// star (the master counts).
    pub fn n_procs(&self) -> usize {
        match *self {
            Topology::Grid2D { p, q } => p * q,
            Topology::Star { workers, .. } => workers + 1,
        }
    }

    /// The `(rows, cols)` layout the executor spawns: the grid itself,
    /// or a `1 x (workers + 1)` row with the master at column 0.
    pub fn exec_shape(&self) -> (usize, usize) {
        match *self {
            Topology::Grid2D { p, q } => (p, q),
            Topology::Star { workers, .. } => (1, workers + 1),
        }
    }

    /// Short display name (`"grid"` / `"star"`).
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Grid2D { .. } => "grid",
            Topology::Star { .. } => "star",
        }
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Topology::Grid2D { p, q } => write!(f, "grid {p}x{q}"),
            Topology::Star {
                workers,
                worker_mem,
                ..
            } => write!(f, "star {workers}w mem {worker_mem}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_counts() {
        let g = Topology::Grid2D { p: 2, q: 3 };
        assert_eq!(g.n_procs(), 6);
        assert_eq!(g.exec_shape(), (2, 3));
        assert_eq!(g.name(), "grid");
        let s = Topology::Star {
            workers: 4,
            worker_mem: 7,
            master_bw: 1.0,
        };
        assert_eq!(s.n_procs(), 5);
        assert_eq!(s.exec_shape(), (1, 5));
        assert_eq!(s.name(), "star");
        assert_eq!(s.to_string(), "star 4w mem 7");
    }
}
