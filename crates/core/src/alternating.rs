//! Alternating (coordinate-ascent) optimization of `Obj2` for a *fixed*
//! arrangement.
//!
//! The manipulation at the end of Section 4.1 shows that for fixed row
//! shares the optimal column shares are `c_j = 1 / max_i (r_i t_ij)`, and
//! symmetrically for rows. Alternating the two half-steps is therefore a
//! coordinate ascent on `(sum r)(sum c)`:
//!
//! * after a column step every constraint `r_i t_ij c_j <= 1` holds and
//!   every *column* has a tight constraint;
//! * after a row step every constraint holds and every *row* is tight.
//!
//! The objective is non-decreasing and bounded, so the iteration
//! converges; at a fixpoint every row *and* every column carries an
//! equality — exactly the normalization postcondition the heuristic of
//! Section 4.4.2 requires after seeding `r`, `c` from the SVD.

use crate::arrangement::Arrangement;
use crate::objective::Allocation;

/// Outcome of the alternating iteration.
#[derive(Clone, Debug)]
pub struct AlternatingResult {
    /// The fixpoint allocation (feasible; tight in every row and column).
    pub alloc: Allocation,
    /// Number of full (column + row) sweeps performed.
    pub sweeps: usize,
    /// `true` if the sweep limit was hit before the fixpoint.
    pub truncated: bool,
}

/// Runs the alternating iteration to convergence from initial row shares
/// `r0`.
///
/// # Panics
/// Panics if `r0.len() != arr.p()` or any share is not positive.
pub fn optimize_from(arr: &Arrangement, r0: &[f64], max_sweeps: usize) -> AlternatingResult {
    assert_eq!(r0.len(), arr.p(), "optimize_from: r0 length mismatch");
    assert!(
        r0.iter().all(|&x| x > 0.0 && x.is_finite()),
        "optimize_from: r0 must be positive"
    );
    let (p, q) = (arr.p(), arr.q());
    let mut r = r0.to_vec();
    let mut c = vec![0.0f64; q];

    let mut sweeps = 0;
    let mut truncated = true;
    while sweeps < max_sweeps {
        sweeps += 1;
        // Column step: c_j = 1 / max_i (r_i t_ij).
        for (j, cj) in c.iter_mut().enumerate() {
            let mut m: f64 = 0.0;
            for (i, &ri) in r.iter().enumerate() {
                m = m.max(ri * arr.time(i, j));
            }
            *cj = 1.0 / m;
        }
        // Row step: r_i = 1 / max_j (t_ij c_j); track movement.
        let mut delta: f64 = 0.0;
        for (i, ri) in r.iter_mut().enumerate() {
            let mut m: f64 = 0.0;
            for (j, &cj) in c.iter().enumerate() {
                m = m.max(arr.time(i, j) * cj);
            }
            let new = 1.0 / m;
            delta = delta.max((new - *ri).abs() / new.max(*ri));
            *ri = new;
        }
        if delta <= 1e-14 {
            truncated = false;
            break;
        }
    }
    // One final column step so the returned pair is consistent (each
    // column tight for the final r).
    for (j, cj) in c.iter_mut().enumerate() {
        let mut m: f64 = 0.0;
        for (i, &ri) in r.iter().enumerate() {
            m = m.max(ri * arr.time(i, j));
        }
        *cj = 1.0 / m;
    }
    let _ = p;
    AlternatingResult {
        alloc: Allocation::new(r, c),
        sweeps,
        truncated,
    }
}

/// Runs the alternating iteration from uniform row shares.
pub fn optimize(arr: &Arrangement, max_sweeps: usize) -> AlternatingResult {
    optimize_from(arr, &vec![1.0; arr.p()], max_sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{is_feasible, workload_matrix};

    #[test]
    fn converges_and_is_feasible() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let res = optimize(&arr, 1000);
        assert!(!res.truncated);
        assert!(is_feasible(&arr, &res.alloc, 1e-12));
    }

    #[test]
    fn fixpoint_tight_in_every_row_and_column() {
        let arr = Arrangement::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        let res = optimize(&arr, 1000);
        let b = workload_matrix(&arr, &res.alloc);
        for i in 0..3 {
            let row_max = (0..3).map(|j| b[(i, j)]).fold(0.0f64, f64::max);
            assert!((row_max - 1.0).abs() < 1e-10, "row {} not tight", i);
        }
        for j in 0..3 {
            let col_max = (0..3).map(|i| b[(i, j)]).fold(0.0f64, f64::max);
            assert!((col_max - 1.0).abs() < 1e-10, "col {} not tight", j);
        }
    }

    #[test]
    fn rank1_grid_reaches_perfect_balance() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let res = optimize(&arr, 1000);
        let b = workload_matrix(&arr, &res.alloc);
        for i in 0..2 {
            for j in 0..2 {
                assert!((b[(i, j)] - 1.0).abs() < 1e-10);
            }
        }
        assert!((res.alloc.obj2() - 2.0).abs() < 1e-10);
    }

    #[test]
    fn objective_not_worse_than_uniform_start() {
        let arr = Arrangement::from_rows(&[vec![0.9, 2.3], vec![1.7, 4.1]]);
        // Feasible baseline from the uniform start after one column step:
        let r = vec![1.0, 1.0];
        let c: Vec<f64> = (0..2)
            .map(|j| 1.0 / (0..2).map(|i| r[i] * arr.time(i, j)).fold(0.0f64, f64::max))
            .collect();
        let baseline = Allocation::new(r, c).obj2();
        let res = optimize(&arr, 1000);
        assert!(res.alloc.obj2() >= baseline - 1e-12);
    }

    #[test]
    fn homogeneous_grid_uniform_solution() {
        let arr = Arrangement::from_rows(&[vec![2.0, 2.0], vec![2.0, 2.0]]);
        let res = optimize(&arr, 100);
        let b = workload_matrix(&arr, &res.alloc);
        for v in b.as_slice() {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_processor() {
        let arr = Arrangement::from_rows(&[vec![3.0]]);
        let res = optimize(&arr, 10);
        let b = workload_matrix(&arr, &res.alloc);
        assert!((b[(0, 0)] - 1.0).abs() < 1e-12);
    }
}
