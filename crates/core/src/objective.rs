//! The optimization objective of Section 4.1.
//!
//! Given an arrangement `T = (t_ij)` and row/column shares `r_i`, `c_j`,
//! processor `(i, j)` computes an `r_i x c_j` rectangle of the result in
//! time `r_i * t_ij * c_j`. The two equivalent formulations:
//!
//! * `Obj1`: minimize `max_ij r_i t_ij c_j` with `sum r_i = sum c_j = 1`;
//! * `Obj2`: maximize `(sum r_i)(sum c_j)` with every `r_i t_ij c_j <= 1`.
//!
//! [`Allocation`] stores the (rational) shares; this module evaluates
//! feasibility, the objective value, and the per-processor workload
//! matrix `B = (r_i t_ij c_j)` whose mean is the "average workload"
//! reported in Figure 6.

use crate::arrangement::Arrangement;
use hetgrid_linalg::Matrix;

/// Row and column shares `r_1..r_p`, `c_1..c_q` for a `p x q` grid.
#[derive(Clone, Debug, PartialEq)]
pub struct Allocation {
    /// Row shares `r_i` (positive).
    pub r: Vec<f64>,
    /// Column shares `c_j` (positive).
    pub c: Vec<f64>,
}

impl Allocation {
    /// Creates an allocation, validating positivity.
    ///
    /// # Panics
    /// Panics if any share is not strictly positive and finite.
    pub fn new(r: Vec<f64>, c: Vec<f64>) -> Self {
        assert!(
            r.iter().chain(c.iter()).all(|&x| x > 0.0 && x.is_finite()),
            "Allocation: shares must be positive and finite"
        );
        Allocation { r, c }
    }

    /// The `Obj2` value `(sum r_i) * (sum c_j)`.
    pub fn obj2(&self) -> f64 {
        self.r.iter().sum::<f64>() * self.c.iter().sum::<f64>()
    }

    /// Rescales so that `sum r_i = sum c_j = 1` (the `Obj1` normalization).
    pub fn normalized(&self) -> Allocation {
        let sr: f64 = self.r.iter().sum();
        let sc: f64 = self.c.iter().sum();
        Allocation {
            r: self.r.iter().map(|x| x / sr).collect(),
            c: self.c.iter().map(|x| x / sc).collect(),
        }
    }

    /// Rescales the `r` shares so `r[0] = 1` (the gauge freedom noted in
    /// Section 4.1), compensating on `c` so products are unchanged.
    pub fn gauge_r1(&self) -> Allocation {
        let s = self.r[0];
        Allocation {
            r: self.r.iter().map(|x| x / s).collect(),
            c: self.c.iter().map(|x| x * s).collect(),
        }
    }
}

/// The workload matrix `B = (r_i t_ij c_j)`.
///
/// # Panics
/// Panics if the allocation shape does not match the arrangement.
pub fn workload_matrix(arr: &Arrangement, alloc: &Allocation) -> Matrix {
    assert_eq!(alloc.r.len(), arr.p(), "workload_matrix: r length mismatch");
    assert_eq!(alloc.c.len(), arr.q(), "workload_matrix: c length mismatch");
    Matrix::from_fn(arr.p(), arr.q(), |i, j| {
        alloc.r[i] * arr.time(i, j) * alloc.c[j]
    })
}

/// `true` iff every product `r_i t_ij c_j <= 1 + tol` (the `Obj2`
/// feasibility constraint).
pub fn is_feasible(arr: &Arrangement, alloc: &Allocation, tol: f64) -> bool {
    workload_matrix(arr, alloc)
        .as_slice()
        .iter()
        .all(|&b| b <= 1.0 + tol)
}

/// The `Obj1` value for the *normalized* shares: `max_ij r_i t_ij c_j`
/// after rescaling `sum r = sum c = 1`. Lower is better; this equals
/// `1 / obj2` for feasible allocations at the `Obj2` optimum boundary.
pub fn obj1(arr: &Arrangement, alloc: &Allocation) -> f64 {
    let n = alloc.normalized();
    workload_matrix(arr, &n).max_abs()
}

/// Mean of the workload matrix — the fraction of time the average
/// processor is busy (Figure 6 reports this after heuristic convergence).
pub fn average_workload(arr: &Arrangement, alloc: &Allocation) -> f64 {
    workload_matrix(arr, alloc).mean()
}

/// Parallel execution time for an `N x N` problem under integer counts:
/// `T_exe = max_ij r_i t_ij c_j` (Section 4.1), in block-update units.
pub fn t_exe(arr: &Arrangement, rows: &[usize], cols: &[usize]) -> f64 {
    let mut m: f64 = 0.0;
    for i in 0..arr.p() {
        for j in 0..arr.q() {
            m = m.max(rows[i] as f64 * arr.time(i, j) * cols[j] as f64);
        }
    }
    m
}

/// Normalized average time per data element,
/// `T_ave = max_ij (r_i t_ij c_j) / (sum r * sum c)` for integer counts.
pub fn t_ave(arr: &Arrangement, rows: &[usize], cols: &[usize]) -> f64 {
    let sr: usize = rows.iter().sum();
    let sc: usize = cols.iter().sum();
    t_exe(arr, rows, cols) / (sr as f64 * sc as f64)
}

/// Lower bound on `Obj1` for *any* distribution (even ignoring the grid
/// constraint): one time unit of the whole machine computes at most
/// `sum_ij 1/t_ij` elements, so `T_ave >= 1 / sum(1/t)`.
pub fn ideal_obj1_lower_bound(arr: &Arrangement) -> f64 {
    let rate: f64 = arr.times().iter().map(|&t| 1.0 / t).sum();
    1.0 / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_arrangement() -> Arrangement {
        Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]])
    }

    #[test]
    fn fig1_perfect_balance() {
        // Figure 1: r = (3, 1), c = (2, 1) on [[1,2],[3,6]] gives every
        // processor a product of 6 -> perfectly balanced after scaling.
        let arr = fig1_arrangement();
        let alloc = Allocation::new(vec![3.0, 1.0], vec![2.0, 1.0]);
        let b = workload_matrix(&arr, &alloc);
        for i in 0..2 {
            for j in 0..2 {
                assert!((b[(i, j)] - 6.0).abs() < 1e-12);
            }
        }
        // Normalized shares (sum r = sum c = 1): every product equals the
        // ideal lower bound 0.5, i.e. the load is perfectly balanced.
        let scaled = Allocation::new(vec![0.75, 0.25], vec![2.0 / 3.0, 1.0 / 3.0]);
        assert!(is_feasible(&arr, &scaled, 1e-12));
        let bs = workload_matrix(&arr, &scaled);
        for v in bs.as_slice() {
            assert!((v - 0.5).abs() < 1e-12);
        }
        assert!((obj1(&arr, &scaled) - ideal_obj1_lower_bound(&arr)).abs() < 1e-12);
    }

    #[test]
    fn obj2_and_normalization() {
        let alloc = Allocation::new(vec![1.0, 0.5], vec![2.0, 1.0]);
        assert!((alloc.obj2() - 4.5).abs() < 1e-12);
        let n = alloc.normalized();
        assert!((n.r.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((n.c.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gauge_preserves_products() {
        let arr = fig1_arrangement();
        let alloc = Allocation::new(vec![2.0, 0.7], vec![0.3, 0.1]);
        let g = alloc.gauge_r1();
        assert!((g.r[0] - 1.0).abs() < 1e-12);
        let b0 = workload_matrix(&arr, &alloc);
        let b1 = workload_matrix(&arr, &g);
        assert!(b0.approx_eq(&b1, 1e-12));
        assert!((alloc.obj2() - g.obj2()).abs() < 1e-12);
    }

    #[test]
    fn obj1_is_inverse_obj2_at_tight_allocations() {
        // For an allocation where max product == 1 (tight), obj1 of the
        // normalized shares is 1 / obj2.
        let arr = fig1_arrangement();
        let alloc = Allocation::new(vec![1.0, 1.0 / 3.0], vec![1.0, 0.5]);
        let b = workload_matrix(&arr, &alloc);
        assert!((b.max_abs() - 1.0).abs() < 1e-12);
        assert!((obj1(&arr, &alloc) - 1.0 / alloc.obj2()).abs() < 1e-12);
    }

    #[test]
    fn t_exe_integer_counts() {
        let arr = fig1_arrangement();
        // Figure 1 panel: rows (3, 1), cols (2, 1): every processor takes 6.
        assert!((t_exe(&arr, &[3, 1], &[2, 1]) - 6.0).abs() < 1e-12);
        // T_ave = 6 / (4 * 3).
        assert!((t_ave(&arr, &[3, 1], &[2, 1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ideal_lower_bound_reached_for_rank1() {
        let arr = fig1_arrangement();
        // sum 1/t = 1 + 1/2 + 1/3 + 1/6 = 2 -> bound 0.5 = t_ave above.
        assert!((ideal_obj1_lower_bound(&arr) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn infeasible_detected() {
        let arr = fig1_arrangement();
        let alloc = Allocation::new(vec![1.0, 1.0], vec![1.0, 1.0]);
        assert!(!is_feasible(&arr, &alloc, 1e-9));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_share_rejected() {
        Allocation::new(vec![1.0, -1.0], vec![1.0]);
    }
}
