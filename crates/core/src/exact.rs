//! Exact solution of the optimization problem (Section 4.3), as a
//! branch-and-bound search over spanning trees.
//!
//! For a *fixed* arrangement the optimum of `Obj2` is attained with at
//! least `p + q - 1` tight constraints, and the tight constraints must
//! connect all rows and columns: they form a spanning tree of the
//! complete bipartite graph `K_{p,q}` whose vertices are the `r_i` and
//! `c_j` and whose edge `(r_i, c_j)` carries weight `t_ij`. Walking an
//! *acceptable* tree (all non-tree products `<= 1`) from `r_1 = 1`
//! determines every share; the optimum is the acceptable tree of maximal
//! value `(sum r)(sum c)`.
//!
//! The number of spanning trees of `K_{p,q}` is `p^(q-1) * q^(p-1)` —
//! `81` for 3x3, `~6x10^7` for 6x6, `~1.8x10^15` for 9x9 — so plain
//! enumeration stops being viable around 6x6. The solver therefore runs
//! a branch-and-bound (bound derivation in DESIGN.md):
//!
//! * **Incremental share propagation.** Edges are added one by one to a
//!   rollback union-find. Inside a connected component all shares are
//!   determined up to the component's scale `s` (`r_i = s * rho_i`,
//!   `c_j = gamma_j / s`), so every *product* `r_i c_j = rho_i gamma_j`
//!   of a row and a column in the same component is already absolute.
//!   Each merge checks the newly-determined pairs: a forced
//!   `r_i t_ij c_j > 1` kills the whole subtree, because every
//!   completion of the partial tree forces the same violation.
//! * **Admissible bound.** `Obj2 = (sum r)(sum c) = sum_ij r_i c_j`.
//!   Pairs inside one component contribute their exact, already-forced
//!   products. For two components `A`, `B` the only remaining freedom
//!   is the single scale ratio `x = s_A / s_B`: their cross pairs
//!   contribute `x * S_AB + S_BA / x` with `S_AB = sum(rho_i gamma_j)`
//!   over A-rows x B-cols (`S_BA` symmetric), and every cross constraint
//!   `r_i t_ij c_j <= 1` narrows `x` to the window
//!   `[1 / m_BA, m_AB]`, `m_AB = min 1/(t_ij rho_i gamma_j)`. The
//!   contribution is convex in `x`, so its maximum over the window sits
//!   at an endpoint — and an *empty* window (`m_AB * m_BA < 1`) proves
//!   the two components can never coexist in an acceptable tree,
//!   pruning the subtree outright. Summing intra-component exact terms
//!   and per-component-pair endpoint maxima (capped by the trivial
//!   `sum 1/t_ij`) yields an admissible bound that tightens as edges
//!   are added; a subtree whose bound cannot beat the incumbent is cut.
//!   The incumbent is seeded with the alternating fixpoint of
//!   [`crate::alternating`] (feasible, hence a true lower bound), so
//!   pruning has teeth from the very first branch.
//! * **No allocation in the hot loop.** The rollback journal, component
//!   member lists and share values live in preallocated buffers;
//!   including an edge pushes undo records, backtracking pops them (the
//!   old enumerator cloned the whole union-find per included edge and
//!   rebuilt a `Vec<Vec<_>>` adjacency per examined tree).
//!
//! The *global* problem additionally searches over arrangements; by the
//! paper's Theorem 1 only non-decreasing arrangements need to be
//! considered. [`solve_global`] fans the arrangements out over the
//! `hetgrid-par` work-stealing pool and shares the incumbent across
//! them through an atomic, so a good arrangement solved early prunes
//! the rest.

use crate::arrangement::{enumerate_nondecreasing, Arrangement};
use crate::objective::{workload_matrix, Allocation};
use std::sync::atomic::{AtomicU64, Ordering};

/// Feasibility slack on `r_i t_ij c_j <= 1`, matching the tolerance the
/// rest of the crate uses for acceptability checks.
const ACCEPT_TOL: f64 = 1e-9;

/// Hard grid limit for the exact solver. Beyond this even the pruned
/// search is astronomical; use the heuristic instead.
const MAX_DIM: usize = 10;

/// Options for [`solve_arrangement_with`].
#[derive(Clone, Copy, Debug)]
pub struct ExactOptions {
    /// Cut subtrees on forced constraint violations and on the
    /// admissible `(sum r)(sum c)` bound. Disabling reproduces the plain
    /// spanning-tree enumerator (every tree is examined) — used by tests
    /// that check the Cayley counts and that pruning never changes the
    /// optimum.
    pub prune: bool,
    /// Seed the incumbent with the alternating-fixpoint objective before
    /// the search starts. Only meaningful with `prune`.
    pub seed_incumbent: bool,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            prune: true,
            seed_incumbent: true,
        }
    }
}

impl ExactOptions {
    /// The plain exhaustive enumerator (no pruning, no seeding) — every
    /// spanning tree is examined, like the pre-branch-and-bound solver.
    pub fn exhaustive() -> Self {
        ExactOptions {
            prune: false,
            seed_incumbent: false,
        }
    }
}

/// Search-effort counters for one or more branch-and-bound runs.
///
/// The per-run numbers stay deterministic fields of [`ExactSolution`] /
/// [`GlobalSolution`] (tests pin the Cayley counts to them); this struct
/// exists to aggregate them across arrangements and publish the totals
/// to the `hetgrid-obs` metrics registry exactly once per top-level
/// solve — never from the per-arrangement hot path.
#[derive(Clone, Copy, Debug, Default)]
struct Effort {
    examined: u64,
    acceptable: u64,
    pruned: u64,
    /// Times the incumbent was created or improved at a leaf.
    improvements: u64,
}

impl Effort {
    fn of(bnb: &Bnb) -> Effort {
        Effort {
            examined: bnb.examined,
            acceptable: bnb.acceptable,
            pruned: bnb.pruned,
            improvements: bnb.improvements,
        }
    }

    fn absorb(&mut self, other: Effort) {
        self.examined += other.examined;
        self.acceptable += other.acceptable;
        self.pruned += other.pruned;
        self.improvements += other.improvements;
    }

    /// Adds the effort to the cumulative `solver.*` series. Five
    /// registry lookups once per solve — negligible next to the search,
    /// so not gated on tracing being enabled.
    fn publish(&self, arrangements: u64) {
        let m = hetgrid_obs::metrics();
        m.counter("solver.arrangements.examined").add(arrangements);
        m.counter("solver.trees.examined").add(self.examined);
        m.counter("solver.trees.acceptable").add(self.acceptable);
        m.counter("solver.trees.pruned").add(self.pruned);
        m.counter("solver.incumbent.improvements")
            .add(self.improvements);
    }
}

/// Exact optimum for a fixed arrangement.
#[derive(Clone, Debug)]
pub struct ExactSolution {
    /// Optimal shares (gauge: `r[0] = 1`).
    pub alloc: Allocation,
    /// The optimal `Obj2` value `(sum r)(sum c)`.
    pub obj2: f64,
    /// Edges `(i, j)` of the optimal acceptable spanning tree (the tight
    /// constraints `r_i t_ij c_j = 1`).
    pub tree: Vec<(usize, usize)>,
    /// Number of complete spanning trees examined (leaves reached). With
    /// pruning disabled this equals the Cayley count `p^(q-1) q^(p-1)`.
    pub trees_examined: u64,
    /// Number of acceptable trees found among those examined.
    pub trees_acceptable: u64,
    /// Number of branch-and-bound cuts (subtrees abandoned because of a
    /// forced violation or a hopeless bound). Zero when pruning is off.
    pub trees_pruned: u64,
}

/// Solves `Obj2` exactly for the given arrangement with the default
/// branch-and-bound options.
///
/// # Panics
/// Panics if the grid is larger than 10x10 (the search would be
/// astronomically large; use the heuristic instead).
pub fn solve_arrangement(arr: &Arrangement) -> ExactSolution {
    solve_arrangement_with(arr, &ExactOptions::default())
}

/// Solves `Obj2` exactly with explicit [`ExactOptions`].
///
/// # Panics
/// Panics if the grid is larger than 10x10.
pub fn solve_arrangement_with(arr: &Arrangement, opts: &ExactOptions) -> ExactSolution {
    let (sol, eff) = solve_arrangement_counted(arr, opts, f64::NEG_INFINITY);
    eff.publish(1);
    sol.expect("K_{p,q} always has an acceptable spanning tree")
}

/// Internal entry point allowing an externally-known lower bound (used
/// by [`solve_global`] to share the incumbent across arrangements). The
/// external bound may exceed this arrangement's optimum — then the
/// search returns `None` and the caller discards this arrangement. Also
/// reports the search [`Effort`] even when the arrangement is disproved,
/// so [`solve_global_with`] can aggregate effort across arrangements.
fn solve_arrangement_counted(
    arr: &Arrangement,
    opts: &ExactOptions,
    external_lb: f64,
) -> (Option<ExactSolution>, Effort) {
    let (p, q) = (arr.p(), arr.q());
    let mut lb = external_lb;
    if opts.prune && opts.seed_incumbent {
        // The alternating fixpoint is feasible, so its objective is a
        // true lower bound. Shave a relative epsilon so a tree *equal*
        // to the seed (the common case: the fixpoint often is optimal)
        // is still found rather than pruned.
        let alt = crate::alternating::optimize(arr, 1_000).alloc.obj2();
        lb = lb.max(alt * (1.0 - 1e-9));
    }

    let (sol, mut eff) = solve_slice_counted(p, q, arr.times(), opts.prune, lb);
    match sol {
        Some(sol) => (Some(sol), eff),
        None if external_lb == f64::NEG_INFINITY && !opts.seed_incumbent => (None, eff),
        None => {
            // Everything was pruned by the external/seeded bound. For a
            // lone arrangement that means the seed was too tight
            // (defensive; should not happen) — rerun unseeded so the
            // always-existing acceptable tree is found. With an external
            // bound the caller interprets `None` as "cannot beat the
            // incumbent", but only after this unseeded check confirms the
            // arrangement's own optimum does not beat it either.
            if external_lb == f64::NEG_INFINITY {
                let (sol2, eff2) =
                    solve_slice_counted(p, q, arr.times(), opts.prune, f64::NEG_INFINITY);
                eff.absorb(eff2);
                (sol2, eff)
            } else {
                (None, eff)
            }
        }
    }
}

/// Lowest-level solver entry: branch-and-bound over the row-major
/// cycle-time grid `times` with an optional externally-known lower
/// bound. Returns `None` iff every branch was cut by that bound (i.e.
/// this arrangement cannot beat it). Taking a plain slice (rather than
/// an [`Arrangement`]) lets [`solve_global_with`]'s fused enumeration
/// loop skip per-candidate arrangement construction entirely. The extra
/// [`Effort`] counters survive a disproof so global aggregation stays
/// accurate.
fn solve_slice_counted(
    p: usize,
    q: usize,
    times: &[f64],
    prune: bool,
    lower_bound: f64,
) -> (Option<ExactSolution>, Effort) {
    assert!(
        p <= MAX_DIM && q <= MAX_DIM,
        "solve_arrangement: exact solver limited to grids up to {MAX_DIM}x{MAX_DIM}"
    );
    let mut bnb = Bnb::new(p, q, times, prune);
    if prune {
        bnb.best_lb = lower_bound;
    }
    bnb.search();
    let eff = Effort::of(&bnb);
    (bnb.finish(times), eff)
}

/// Undo journal frame for one edge inclusion.
struct Undo {
    /// Component that got absorbed.
    victim: usize,
    /// Component it was absorbed into.
    winner: usize,
    /// Lengths of the winner's member lists before the merge.
    rows_len: usize,
    cols_len: usize,
    /// Value-journal watermark: entries above it are `(vertex, old_val)`.
    vals_mark: usize,
    /// Bound-state journal watermark.
    mat_mark: usize,
    /// Bound and violation counter before the merge.
    total: f64,
    viol: u32,
}

/// Branch-and-bound state. Rows are vertices `0..p`, columns `p..p+q`.
struct Bnb {
    p: usize,
    q: usize,
    n: usize,
    need: usize,
    n_edges: usize,
    /// Edges sorted by cycle-time ascending: `(i, j)`. Cheap edges are
    /// likely tight in the optimum, so trying them first finds strong
    /// incumbents early.
    edges: Vec<(u32, u32)>,
    /// `(t_ij, 1/t_ij)` in grid order, indexed `i * q + j`.
    time_table: Vec<(f64, f64)>,
    prune: bool,

    /// Component id per vertex (component ids are vertex ids).
    comp_of: Vec<u32>,
    /// Relative share per vertex: `rho_i` for rows, `gamma_j` for cols.
    val: Vec<f64>,
    /// Member rows / columns per component id.
    comp_rows: Vec<Vec<u32>>,
    comp_cols: Vec<Vec<u32>>,
    /// Value journal for rollback: `(vertex, previous value)`.
    val_journal: Vec<(u32, f64)>,

    /// Incrementally-maintained bound state, one flat array (see the
    /// `M0`/`S0`/`C0`/`P0`/`SR0`/`SC0` offsets): per ordered component
    /// pair `(a, b)` the scale-window limit `m = min 1/(t rho gamma)`,
    /// product sum `S = sum rho gamma` and trivial cap `sum 1/t` over
    /// rows of `a` x cols of `b`; per unordered pair its bound term; per
    /// component its row-share and col-share sums.
    mat: Vec<f64>,
    /// Bound-state journal for rollback: `(flat index, previous value)`.
    mat_journal: Vec<(u32, f64)>,
    /// Current admissible bound: `sum_a sr_a * sc_a + sum_{a<b} pt_ab`.
    total: f64,

    /// Number of determined pairs violating `r_i t_ij c_j <= 1`.
    viol: u32,
    /// Edge indices (into `edges`) of the current partial tree.
    chosen: Vec<u32>,

    /// Incumbent lower bound (seeded and/or best tree found so far).
    best_lb: f64,
    /// Best acceptable tree: objective and its `chosen` snapshot.
    best: Option<(f64, Vec<u32>)>,

    examined: u64,
    acceptable: u64,
    pruned: u64,
    /// Incumbent creations/improvements at leaves (see [`Effort`]).
    improvements: u64,
}

impl Bnb {
    /// `times` is the row-major `p x q` cycle-time grid.
    fn new(p: usize, q: usize, times: &[f64], prune: bool) -> Self {
        debug_assert_eq!(times.len(), p * q);
        let n = p + q;
        let mut bnb = Bnb {
            p,
            q,
            n,
            need: n - 1,
            n_edges: p * q,
            edges: Vec::with_capacity(p * q),
            time_table: vec![(0.0, 0.0); p * q],
            prune,
            comp_of: vec![0; n],
            val: vec![1.0; n],
            comp_rows: vec![Vec::new(); n],
            comp_cols: vec![Vec::new(); n],
            val_journal: Vec::with_capacity(n * n),
            mat: vec![0.0f64; 4 * n * n + 2 * n],
            mat_journal: Vec::with_capacity(8 * n * n),
            total: 0.0,
            viol: 0,
            chosen: Vec::with_capacity(n - 1),
            best_lb: f64::NEG_INFINITY,
            best: None,
            examined: 0,
            acceptable: 0,
            pruned: 0,
            improvements: 0,
        };
        bnb.reset(times);
        bnb
    }

    /// Reinitializes the solver for a new cycle-time grid of the *same*
    /// `p x q` shape without reallocating any buffer. Lets
    /// [`solve_global_with`]'s fused serial loop amortize the ~2n inner
    /// allocations of [`Bnb::new`] across all arrangements.
    fn reset(&mut self, times: &[f64]) {
        debug_assert_eq!(times.len(), self.n_edges);
        let (p, q, n) = (self.p, self.q, self.n);
        for (slot, &t) in self.time_table.iter_mut().zip(times) {
            *slot = (t, 1.0 / t);
        }
        self.edges.clear();
        self.edges
            .extend((0..p * q).map(|e| ((e / q) as u32, (e % q) as u32)));
        let tt = &self.time_table;
        self.edges.sort_by(|a, b| {
            let ta = tt[a.0 as usize * q + a.1 as usize].0;
            let tb = tt[b.0 as usize * q + b.1 as usize].0;
            tb.partial_cmp(&ta).expect("NaN cycle-time")
        });
        for (v, c) in self.comp_of.iter_mut().enumerate() {
            *c = v as u32;
        }
        self.val.fill(1.0);
        for (v, rows) in self.comp_rows.iter_mut().enumerate() {
            rows.clear();
            if v < p {
                rows.push(v as u32);
            }
        }
        for (v, cols) in self.comp_cols.iter_mut().enumerate() {
            cols.clear();
            if v >= p {
                cols.push(v as u32);
            }
        }
        self.val_journal.clear();
        self.mat_journal.clear();
        self.chosen.clear();

        // Bound state for all-singleton components: the only non-empty
        // directional pairs are (row a, col b) with m = cap = 1/t and
        // S = 1; every pair term is then 1/t and the starting bound is
        // sum 1/t_ij — exactly the total-rate bound of `crate::bounds`.
        self.mat.fill(0.0);
        for cell in &mut self.mat[..n * n] {
            *cell = f64::INFINITY; // m segment
        }
        let mut total = 0.0;
        for a in 0..p {
            self.mat[4 * n * n + a] = 1.0; // sr: singleton row share
            for b in p..n {
                let inv_t = self.time_table[a * q + (b - p)].1;
                self.mat[a * n + b] = inv_t; // m
                self.mat[n * n + a * n + b] = 1.0; // S
                self.mat[2 * n * n + a * n + b] = inv_t; // cap
                self.mat[3 * n * n + a * n + b] = inv_t; // pair term (a < b)
                total += inv_t;
            }
        }
        for b in p..n {
            self.mat[4 * n * n + n + b] = 1.0; // sc: singleton col share
        }
        self.total = total;
        self.viol = 0;
        self.best_lb = f64::NEG_INFINITY;
        self.best = None;
        self.examined = 0;
        self.acceptable = 0;
        self.pruned = 0;
        self.improvements = 0;
    }

    // Flat offsets into `mat`.
    #[inline]
    fn m_idx(&self, a: usize, b: usize) -> usize {
        a * self.n + b
    }
    #[inline]
    fn s_idx(&self, a: usize, b: usize) -> usize {
        self.n * self.n + a * self.n + b
    }
    #[inline]
    fn cap_idx(&self, a: usize, b: usize) -> usize {
        2 * self.n * self.n + a * self.n + b
    }
    /// Pair-term slot for the unordered pair `{a, b}`.
    #[inline]
    fn pt_idx(&self, a: usize, b: usize) -> usize {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        3 * self.n * self.n + lo * self.n + hi
    }
    #[inline]
    fn sr_idx(&self, a: usize) -> usize {
        4 * self.n * self.n + a
    }
    #[inline]
    fn sc_idx(&self, a: usize) -> usize {
        4 * self.n * self.n + self.n + a
    }

    /// Journaled write into the bound state.
    #[inline]
    fn jset(&mut self, idx: usize, new: f64) {
        self.mat_journal.push((idx as u32, self.mat[idx]));
        self.mat[idx] = new;
    }

    /// Admissible bound term for a component pair from its directional
    /// aggregates: the cross contribution `x S_ab + S_ba / x` is convex
    /// in the scale ratio `x`, so its maximum over the feasibility
    /// window `[1/m_ba, m_ab]` sits at an endpoint; the per-pair cap
    /// `sum 1/t` bounds it too. `S > 0` implies the matching `m` is
    /// finite, and `S = 0` means that direction has no pairs.
    #[inline]
    fn pair_term(m_ab: f64, s_ab: f64, m_ba: f64, s_ba: f64, cap: f64) -> f64 {
        let v = if s_ab == 0.0 && s_ba == 0.0 {
            0.0
        } else if s_ab == 0.0 {
            s_ba * m_ba // f(x) decreasing: max at x = 1/m_ba
        } else if s_ba == 0.0 {
            s_ab * m_ab // f(x) increasing: max at x = m_ab
        } else {
            let hi = m_ab * s_ab + s_ba / m_ab;
            let lo = s_ab / m_ba + s_ba * m_ba;
            hi.max(lo)
        };
        v.min(cap)
    }

    fn search(&mut self) {
        self.rec(0);
    }

    /// `true` when a subtree with admissible bound `bound` cannot beat
    /// the incumbent by more than a hair. Ties prune: a completion
    /// merely equal to the incumbent adds nothing, and in
    /// perfect-balance instances the bound equals the optimum in most of
    /// the tree — keeping ties alive there would degenerate to
    /// exhaustive search. The relative `TIE_TOL` absorbs the few-ulp
    /// jitter between equal objectives computed through different merge
    /// orders (instances with repeated cycle-times produce vast plateaus
    /// of floating-point-almost-equal optima); it concedes at most
    /// 1e-12 relative optimality, three orders below `ACCEPT_TOL`, and
    /// is dominated by the 1e-9 incumbent-seed slack so the true optimum
    /// itself is never cut.
    #[inline]
    fn cut(&self, bound: f64) -> bool {
        const TIE_TOL: f64 = 1e-12;
        bound <= self.best_lb * (1.0 + TIE_TOL)
    }

    fn rec(&mut self, e: usize) {
        if self.chosen.len() == self.need {
            self.leaf();
            return;
        }
        if e == self.n_edges || self.n_edges - e < self.need - self.chosen.len() {
            return;
        }
        // The incumbent may have improved since this subtree's bound was
        // computed (a sibling found a better tree), so re-check. Skipping
        // an edge leaves `total` untouched, so skip chains re-use it.
        if self.prune && self.cut(self.total) {
            self.pruned += 1;
            return;
        }
        let (i, j) = self.edges[e];
        let u = self.comp_of[i as usize];
        let v = self.comp_of[self.p + j as usize];
        if u != v {
            // Include edge e: merge the two components.
            let (undo, window_dead) = self.merge(e, u as usize, v as usize);
            let dead = self.prune && (window_dead || self.viol > 0 || self.cut(self.total));
            if dead {
                self.pruned += 1;
            } else {
                self.chosen.push(e as u32);
                self.rec(e + 1);
                self.chosen.pop();
            }
            self.rollback(undo);
        }
        // Skip edge e.
        self.rec(e + 1);
    }

    /// Merges the components of edge `e`'s endpoints, rescaling the
    /// smaller one so the edge constraint `r_i t_ij c_j = 1` holds,
    /// checks every newly-determined pair for a forced violation, and
    /// folds the merge into the incremental bound state. Returns the
    /// undo frame and whether some surviving component pair now has an
    /// empty scale window (no completion can be acceptable).
    fn merge(&mut self, e: usize, cu: usize, cv: usize) -> (Undo, bool) {
        let (ei, ej) = self.edges[e];
        let (ri, cj) = (ei as usize, self.p + ej as usize);
        let t = self.time_table[ri * self.q + ej as usize].0;

        // Absorb the smaller component (fewer members) into the larger.
        let size = |c: usize| self.comp_rows[c].len() + self.comp_cols[c].len();
        let (winner, victim) = if size(cu) >= size(cv) {
            (cu, cv)
        } else {
            (cv, cu)
        };
        let undo = Undo {
            victim,
            winner,
            rows_len: self.comp_rows[winner].len(),
            cols_len: self.comp_cols[winner].len(),
            vals_mark: self.val_journal.len(),
            mat_mark: self.mat_journal.len(),
            total: self.total,
            viol: self.viol,
        };

        // Rescale factor for the victim: its rows multiply by f, its
        // columns divide by f, chosen so rho_i * gamma_j = 1 / t_ij
        // holds for the merge edge afterwards.
        let f = if self.comp_of[ri] as usize == winner {
            // Row endpoint keeps its value; solve for the column side:
            // rho_i * (gamma_j / f) = 1/t  =>  f = rho_i * t * gamma_j.
            self.val[ri] * t * self.val[cj]
        } else {
            // Column endpoint keeps its value; solve for the row side:
            // (rho_i * f) * gamma_j = 1/t  =>  f = 1 / (rho_i * t * gamma_j).
            1.0 / (self.val[ri] * t * self.val[cj])
        };

        // Move the victim's members over, journaling previous values.
        let mut vrows = std::mem::take(&mut self.comp_rows[victim]);
        for &r in &vrows {
            self.val_journal.push((r, self.val[r as usize]));
            self.val[r as usize] *= f;
            self.comp_of[r as usize] = winner as u32;
        }
        let mut vcols = std::mem::take(&mut self.comp_cols[victim]);
        for &c in &vcols {
            self.val_journal.push((c, self.val[c as usize]));
            self.val[c as usize] /= f;
            self.comp_of[c as usize] = winner as u32;
        }

        // Newly-determined pairs: winner-rows x victim-cols, victim-rows
        // x winner-cols and victim-rows x victim-cols (the victim's own
        // cross pairs were already determined *relative to its own
        // scale* — but they were accounted when the victim was built, so
        // only cross pairs between the two components are new).
        for wi in 0..undo.rows_len {
            let r = self.comp_rows[winner][wi] as usize;
            let rho = self.val[r];
            for &c in &vcols {
                self.account_pair(r, c as usize - self.p, rho * self.val[c as usize]);
            }
        }
        for &r in &vrows {
            let rho = self.val[r as usize];
            for wi in 0..undo.cols_len {
                let c = self.comp_cols[winner][wi] as usize;
                self.account_pair(r as usize, c - self.p, rho * self.val[c]);
            }
        }

        self.comp_rows[winner].append(&mut vrows);
        self.comp_cols[winner].append(&mut vcols);
        // Park the victim's (now empty) buffers back for reuse.
        self.comp_rows[victim] = vrows;
        self.comp_cols[victim] = vcols;

        // The bound state is only consulted when pruning; the exhaustive
        // enumerator skips its upkeep to stay a lean baseline.
        let window_dead = if self.prune {
            self.fold_bound_state(winner, victim, f)
        } else {
            false
        };
        (undo, window_dead)
    }

    /// Folds a completed `victim -> winner` merge (victim rows scaled by
    /// `f`, victim cols by `1/f`) into the incremental bound state.
    ///
    /// The winner absorbs the victim's directional aggregates against
    /// every other live component `x`: scaling the victim's rows by `f`
    /// scales its row-direction product sums by `f` and window limits by
    /// `1/f` (and symmetrically for columns), so aggregates combine in
    /// O(1) per component. The victim's cross pairs against the winner
    /// become intra-component (their exact contribution is covered by
    /// the updated `sr * sc` term), and the victim drops out of the live
    /// set. Returns `true` if some updated window is empty.
    fn fold_bound_state(&mut self, winner: usize, victim: usize, f: f64) -> bool {
        // Intra term: replace winner's and victim's own terms and the
        // winner-victim pair term by the merged component's exact term.
        // The victim's `sr * sc` is invariant under its rescale.
        let sr_w = self.mat[self.sr_idx(winner)];
        let sc_w = self.mat[self.sc_idx(winner)];
        let sr_v = self.mat[self.sr_idx(victim)];
        let sc_v = self.mat[self.sc_idx(victim)];
        let (sr_new, sc_new) = (sr_w + f * sr_v, sc_w + sc_v / f);
        let pt_wv = self.mat[self.pt_idx(winner, victim)];
        let mut total = self.total + sr_new * sc_new - sr_w * sc_w - sr_v * sc_v - pt_wv;
        self.jset(self.sr_idx(winner), sr_new);
        self.jset(self.sc_idx(winner), sc_new);

        let mut window_dead = false;
        for x in 0..self.n {
            if x == winner
                || x == victim
                || (self.comp_rows[x].is_empty() && self.comp_cols[x].is_empty())
            {
                continue;
            }
            // If the victim never interacted with x (no row-col pair in
            // either direction: S = 0 and m = infinity), folding it in
            // changes nothing for the winner-x pair — and the victim's
            // own pair term is 0 — so the whole update is a no-op. This
            // skips roughly the same-side components (row comps vs row
            // comps, col vs col) at shallow depths.
            if self.mat[self.s_idx(victim, x)] == 0.0
                && self.mat[self.s_idx(x, victim)] == 0.0
                && self.mat[self.m_idx(victim, x)].is_infinite()
                && self.mat[self.m_idx(x, victim)].is_infinite()
            {
                continue;
            }
            // Winner rows x component-x cols.
            let m_wx = self.mat[self.m_idx(winner, x)].min(self.mat[self.m_idx(victim, x)] / f);
            let s_wx = self.mat[self.s_idx(winner, x)] + f * self.mat[self.s_idx(victim, x)];
            let c_wx = self.mat[self.cap_idx(winner, x)] + self.mat[self.cap_idx(victim, x)];
            // Component-x rows x winner cols.
            let m_xw = self.mat[self.m_idx(x, winner)].min(self.mat[self.m_idx(x, victim)] * f);
            let s_xw = self.mat[self.s_idx(x, winner)] + self.mat[self.s_idx(x, victim)] / f;
            let c_xw = self.mat[self.cap_idx(x, winner)] + self.mat[self.cap_idx(x, victim)];
            self.jset(self.m_idx(winner, x), m_wx);
            self.jset(self.s_idx(winner, x), s_wx);
            self.jset(self.cap_idx(winner, x), c_wx);
            self.jset(self.m_idx(x, winner), m_xw);
            self.jset(self.s_idx(x, winner), s_xw);
            self.jset(self.cap_idx(x, winner), c_xw);
            // Empty window: winner and x can never coexist acceptably.
            // (m is infinite when a direction has no pairs; infinity
            // times a finite positive value stays above 1.)
            if m_wx * m_xw < 1.0 - 2.0 * ACCEPT_TOL {
                window_dead = true;
            }
            let pt = Self::pair_term(m_wx, s_wx, m_xw, s_xw, c_wx + c_xw);
            let pt_slot = self.pt_idx(winner, x);
            total += pt - self.mat[pt_slot] - self.mat[self.pt_idx(victim, x)];
            self.jset(pt_slot, pt);
        }
        self.total = total;
        window_dead
    }

    /// Checks the newly-determined product `r_i * c_j` for grid pair
    /// `(i, j)` against its constraint.
    #[inline]
    fn account_pair(&mut self, i: usize, j: usize, prod: f64) {
        let t = self.time_table[i * self.q + j].0;
        if prod * t > 1.0 + ACCEPT_TOL {
            self.viol += 1;
        }
    }

    fn rollback(&mut self, undo: Undo) {
        let Undo {
            victim,
            winner,
            rows_len,
            cols_len,
            vals_mark,
            mat_mark,
            total,
            viol,
        } = undo;
        // Give the moved members back to the victim.
        let mut vrows = std::mem::take(&mut self.comp_rows[victim]);
        vrows.extend_from_slice(&self.comp_rows[winner][rows_len..]);
        self.comp_rows[winner].truncate(rows_len);
        let mut vcols = std::mem::take(&mut self.comp_cols[victim]);
        vcols.extend_from_slice(&self.comp_cols[winner][cols_len..]);
        self.comp_cols[winner].truncate(cols_len);
        for &r in &vrows {
            self.comp_of[r as usize] = victim as u32;
        }
        for &c in &vcols {
            self.comp_of[c as usize] = victim as u32;
        }
        self.comp_rows[victim] = vrows;
        self.comp_cols[victim] = vcols;
        // Restore exact values from the journal (no floating drift).
        while self.val_journal.len() > vals_mark {
            let (v, old) = self.val_journal.pop().expect("journal underflow");
            self.val[v as usize] = old;
        }
        while self.mat_journal.len() > mat_mark {
            let (idx, old) = self.mat_journal.pop().expect("journal underflow");
            self.mat[idx as usize] = old;
        }
        self.total = total;
        self.viol = viol;
    }

    fn leaf(&mut self) {
        self.examined += 1;
        if self.viol != 0 {
            return;
        }
        self.acceptable += 1;
        // All p + q vertices are one component: every pair is determined
        // and Obj2 = (sum rho)(sum gamma), gauge-invariant.
        let sr: f64 = self.val[..self.p].iter().sum();
        let sc: f64 = self.val[self.p..].iter().sum();
        let obj2 = sr * sc;
        if self.best.as_ref().is_none_or(|b| obj2 > b.0) {
            self.best = Some((obj2, self.chosen.clone()));
            self.improvements += 1;
            if self.prune && obj2 > self.best_lb {
                self.best_lb = obj2;
            }
        }
    }

    /// Builds the [`ExactSolution`] from the best tree found, or `None`
    /// when every branch was pruned by an external bound.
    fn finish(&mut self, times: &[f64]) -> Option<ExactSolution> {
        let (obj2, chosen) = self.best.take()?;
        let tree: Vec<(usize, usize)> = chosen
            .iter()
            .map(|&e| {
                let (i, j) = self.edges[e as usize];
                (i as usize, j as usize)
            })
            .collect();
        let alloc = alloc_from_tree(self.p, self.q, times, &tree);
        debug_assert!((alloc.obj2() - obj2).abs() <= 1e-9 * obj2.abs().max(1.0));
        Some(ExactSolution {
            alloc,
            obj2,
            tree,
            trees_examined: self.examined,
            trees_acceptable: self.acceptable,
            trees_pruned: self.pruned,
        })
    }
}

/// Shares forced by a spanning tree, gauge `r[0] = 1`. The tree is
/// already known acceptable, so no feasibility re-check happens here.
/// `times` is the row-major `p x q` cycle-time grid.
fn alloc_from_tree(p: usize, q: usize, times: &[f64], tree: &[(usize, usize)]) -> Allocation {
    let mut r = vec![0.0f64; p];
    let mut c = vec![0.0f64; q];
    let mut r_set = vec![false; p];
    let mut c_set = vec![false; q];
    r[0] = 1.0;
    r_set[0] = true;
    // Fixed-point propagation over the p+q-1 tree edges; terminates in
    // at most p+q sweeps (tree diameter). Called once per solve, so the
    // quadratic worst case is irrelevant.
    loop {
        let mut progressed = false;
        for &(i, j) in tree {
            match (r_set[i], c_set[j]) {
                (true, false) => {
                    c[j] = 1.0 / (r[i] * times[i * q + j]);
                    c_set[j] = true;
                    progressed = true;
                }
                (false, true) => {
                    r[i] = 1.0 / (c[j] * times[i * q + j]);
                    r_set[i] = true;
                    progressed = true;
                }
                _ => {}
            }
        }
        if !progressed {
            break;
        }
    }
    debug_assert!(
        r_set.iter().all(|&x| x) && c_set.iter().all(|&x| x),
        "spanning tree did not reach every vertex"
    );
    Allocation::new(r, c)
}

/// Closed-form exact solution for a 2x2 arrangement (the analytical
/// solution the paper defers to its extended version).
///
/// With the gauge `r_1 = 1`, the four spanning trees of `K_{2,2}`
/// evaluate in closed form; which pair is acceptable is decided by the
/// sign of the determinant `t11 t22 - t12 t21`:
///
/// * `t11 t22 <= t12 t21`: trees {11,12,21} and {12,21,22};
/// * `t11 t22 >= t12 t21`: trees {11,12,22} and {11,21,22};
/// * equality (rank-1): all four coincide with perfect balance.
///
/// # Panics
/// Panics if the arrangement is not 2x2.
pub fn solve_2x2(arr: &Arrangement) -> ExactSolution {
    assert_eq!(
        (arr.p(), arr.q()),
        (2, 2),
        "solve_2x2: arrangement must be 2x2"
    );
    let (t11, t12, t21, t22) = (
        arr.time(0, 0),
        arr.time(0, 1),
        arr.time(1, 0),
        arr.time(1, 1),
    );
    let det = t11 * t22 - t12 * t21;

    // Candidate allocations (r1 = 1).
    let mut candidates: Vec<(Vec<(usize, usize)>, Allocation)> = Vec::new();
    if det <= 0.0 {
        // Tree {(0,0),(0,1),(1,0)}.
        candidates.push((
            vec![(0, 0), (0, 1), (1, 0)],
            Allocation::new(vec![1.0, t11 / t21], vec![1.0 / t11, 1.0 / t12]),
        ));
        // Tree {(0,1),(1,0),(1,1)}.
        candidates.push((
            vec![(0, 1), (1, 0), (1, 1)],
            Allocation::new(vec![1.0, t12 / t22], vec![t22 / (t12 * t21), 1.0 / t12]),
        ));
    }
    if det >= 0.0 {
        // Tree {(0,0),(0,1),(1,1)}.
        candidates.push((
            vec![(0, 0), (0, 1), (1, 1)],
            Allocation::new(vec![1.0, t12 / t22], vec![1.0 / t11, 1.0 / t12]),
        ));
        // Tree {(0,0),(1,0),(1,1)}.
        candidates.push((
            vec![(0, 0), (1, 0), (1, 1)],
            Allocation::new(vec![1.0, t11 / t21], vec![1.0 / t11, t21 / (t11 * t22)]),
        ));
    }
    let trees_examined = candidates.len() as u64;
    let (tree, alloc) = candidates
        .into_iter()
        .max_by(|a, b| a.1.obj2().partial_cmp(&b.1.obj2()).expect("NaN obj2"))
        .expect("at least two candidates");
    debug_assert!(crate::objective::is_feasible(arr, &alloc, 1e-9));
    let obj2 = alloc.obj2();
    Effort {
        examined: trees_examined,
        acceptable: trees_examined,
        pruned: 0,
        // The closed form adopts its best candidate exactly once.
        improvements: 1,
    }
    .publish(1);
    ExactSolution {
        alloc,
        obj2,
        tree,
        trees_examined,
        trees_acceptable: trees_examined,
        trees_pruned: 0,
    }
}

/// Exact global optimum: best non-decreasing arrangement together with
/// its exact shares (Sections 4.2 + 4.3 combined). Exponential in both
/// the arrangement count and the tree count; for small grids only.
#[derive(Clone, Debug)]
pub struct GlobalSolution {
    /// The optimal arrangement.
    pub arrangement: Arrangement,
    /// The optimal shares for that arrangement.
    pub alloc: Allocation,
    /// The optimal `Obj2` value.
    pub obj2: f64,
    /// Number of non-decreasing arrangements examined.
    pub arrangements_examined: u64,
    /// Total spanning-tree leaves reached across all arrangements.
    pub trees_examined: u64,
    /// Total branch-and-bound cuts across all arrangements (zero with
    /// pruning disabled).
    pub trees_pruned: u64,
}

/// Searches all non-decreasing arrangements of `times` on a `p x q`
/// grid, solving each exactly with branch-and-bound. The arrangements
/// are fanned out over the `hetgrid-par` pool, and the best objective
/// found so far is shared across workers, seeding each arrangement's
/// incumbent so later arrangements mostly prune immediately.
///
/// # Panics
/// Panics if `times.len() != p * q` or the grid exceeds the exact-solver
/// limit.
pub fn solve_global(times: &[f64], p: usize, q: usize) -> GlobalSolution {
    solve_global_with(times, p, q, &ExactOptions::default())
}

/// [`solve_global`] with explicit per-arrangement [`ExactOptions`].
/// With `ExactOptions::exhaustive()` every arrangement is solved by
/// plain enumeration serially — the pre-branch-and-bound reference used
/// by the `solver_scaling` bench as a speedup baseline.
///
/// # Panics
/// Panics if `times.len() != p * q` or the grid exceeds the exact-solver
/// limit.
pub fn solve_global_with(times: &[f64], p: usize, q: usize, opts: &ExactOptions) -> GlobalSolution {
    // Shared incumbent as f64 bits. Obj2 is positive, so the IEEE bit
    // pattern order matches numeric order and fetch_max works; 0 means
    // "no objective found yet".
    let shared_lb = AtomicU64::new(0);
    let solve_one = |arr: &Arrangement| -> (Option<ExactSolution>, Effort) {
        if !opts.prune {
            return solve_arrangement_counted(arr, opts, f64::NEG_INFINITY);
        }
        let lb = f64::from_bits(shared_lb.load(Ordering::Relaxed));
        // Once some arrangement has produced an incumbent, reuse it
        // (slacked like the local seed so ties survive) and skip the
        // per-arrangement alternating fixpoint — the shared bound is
        // almost always at least as strong, and for small grids the
        // fixpoint iteration would dominate the solve time.
        let (external, eff) = if lb > 0.0 {
            (
                lb * (1.0 - 1e-9),
                ExactOptions {
                    seed_incumbent: false,
                    ..*opts
                },
            )
        } else {
            (f64::NEG_INFINITY, *opts)
        };
        let (sol, effort) = solve_arrangement_counted(arr, &eff, external);
        if let Some(s) = &sol {
            shared_lb.fetch_max(s.obj2.to_bits(), Ordering::Relaxed);
        }
        (sol, effort)
    };

    let mut best: Option<GlobalSolution> = None;
    let mut count = 0u64;
    let mut effort = Effort::default();

    let pool = hetgrid_par::global();
    if !opts.prune || pool.threads() == 1 {
        // Serial: solve inside the raw enumeration callback — no
        // per-candidate Arrangement construction, no queue round-trips;
        // an Arrangement is materialized only when a candidate improves
        // the incumbent (or, once, to compute the alternating seed).
        let mut scratch: Option<Bnb> = None;
        crate::arrangement::enumerate_nondecreasing_grids(times, p, q, |grid_times, grid_procs| {
            count += 1;
            let lb = f64::from_bits(shared_lb.load(Ordering::Relaxed));
            let sol = if opts.prune && lb > 0.0 {
                // Disprove-or-improve with the shared incumbent, reusing
                // one solver's buffers across all arrangements.
                let bnb = match &mut scratch {
                    Some(b) => {
                        b.reset(grid_times);
                        b
                    }
                    None => scratch.insert(Bnb::new(p, q, grid_times, true)),
                };
                bnb.best_lb = lb * (1.0 - 1e-9);
                bnb.search();
                effort.absorb(Effort::of(bnb));
                bnb.finish(grid_times)
            } else if !opts.prune {
                let (sol, eff) = solve_slice_counted(p, q, grid_times, false, f64::NEG_INFINITY);
                effort.absorb(eff);
                sol
            } else {
                let arr = Arrangement::with_procs(p, q, grid_times.to_vec(), grid_procs.to_vec());
                let (sol, eff) = solve_arrangement_counted(&arr, opts, f64::NEG_INFINITY);
                effort.absorb(eff);
                sol
            };
            let Some(sol) = sol else { return };
            shared_lb.fetch_max(sol.obj2.to_bits(), Ordering::Relaxed);
            if best.as_ref().is_none_or(|b| sol.obj2 > b.obj2) {
                best = Some(GlobalSolution {
                    arrangement: Arrangement::with_procs(
                        p,
                        q,
                        grid_times.to_vec(),
                        grid_procs.to_vec(),
                    ),
                    alloc: sol.alloc,
                    obj2: sol.obj2,
                    arrangements_examined: 0,
                    trees_examined: 0,
                    trees_pruned: 0,
                });
            }
        });
    } else {
        let mut consider = |arr: &Arrangement, sol: Option<ExactSolution>| {
            let Some(sol) = sol else { return };
            if best.as_ref().is_none_or(|b| sol.obj2 > b.obj2) {
                best = Some(GlobalSolution {
                    arrangement: arr.clone(),
                    alloc: sol.alloc,
                    obj2: sol.obj2,
                    arrangements_examined: 0,
                    trees_examined: 0,
                    trees_pruned: 0,
                });
            }
        };
        let mut arrangements: Vec<Arrangement> = Vec::new();
        enumerate_nondecreasing(times, p, q, |arr| arrangements.push(arr.clone()));
        count = arrangements.len() as u64;
        let indices: Vec<usize> = (0..arrangements.len()).collect();
        let results = {
            let arrs = &arrangements;
            let solve_one = &solve_one;
            pool.parallel_map(indices, move |i| solve_one(&arrs[i]))
        };
        for (arr, (sol, eff)) in arrangements.iter().zip(results) {
            effort.absorb(eff);
            consider(arr, sol);
        }
    }

    effort.publish(count);
    let mut sol = best.expect("at least one arrangement exists");
    sol.arrangements_examined = count;
    sol.trees_examined = effort.examined;
    sol.trees_pruned = effort.pruned;
    sol
}

/// Perfect-balance check: `true` iff the exact optimum uses every
/// processor at 100% (possible exactly when the arrangement behaves like
/// a rank-1 matrix, Section 4.3.2).
pub fn achieves_perfect_balance(arr: &Arrangement, sol: &ExactSolution) -> bool {
    let b = workload_matrix(arr, &sol.alloc);
    b.as_slice().iter().all(|&x| (x - 1.0).abs() < 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::is_feasible;

    #[test]
    fn rank1_2x2_perfect_balance() {
        // Figure 1 grid: perfect balance achievable.
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let sol = solve_arrangement(&arr);
        assert!(achieves_perfect_balance(&arr, &sol));
        // r = (1, 1/3), c = (1, 1/2): obj2 = (4/3)(3/2) = 2.
        assert!((sol.obj2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_counterexample_1235_no_perfect_balance() {
        // Section 3.1.2: with t22 = 5 instead of 6, no allocation balances
        // perfectly; the exact optimum is obj2 = 2 with P22 partly idle.
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = solve_arrangement(&arr);
        assert!(!achieves_perfect_balance(&arr, &sol));
        assert!((sol.obj2 - 2.0).abs() < 1e-9);
        // The optimal shares: r = (1, 1/3), c = (1, 1/2); P22 load 5/6.
        let b = workload_matrix(&arr, &sol.alloc);
        assert!((b[(1, 1)] - 5.0 / 6.0).abs() < 1e-9);
        assert!(is_feasible(&arr, &sol.alloc, 1e-9));
    }

    #[test]
    fn tree_count_matches_cayley_formula_without_pruning() {
        // With pruning disabled the solver walks every spanning tree:
        // K_{2,2} has 2^1 * 2^1 = 4; K_{2,3} has 2^2 * 3 = 12; K_{3,3}
        // has 3^2 * 3^2 = 81 — the counts of the pre-branch-and-bound
        // enumerator.
        let opts = ExactOptions::exhaustive();
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = solve_arrangement_with(&arr, &opts);
        assert_eq!(sol.trees_examined, 4);
        assert_eq!(sol.trees_pruned, 0);

        let arr23 = Arrangement::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let sol23 = solve_arrangement_with(&arr23, &opts);
        assert_eq!(sol23.trees_examined, 12);

        let arr33 = Arrangement::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        let sol33 = solve_arrangement_with(&arr33, &opts);
        assert_eq!(sol33.trees_examined, 81);
    }

    #[test]
    fn pruning_cuts_trees_but_not_the_optimum() {
        let arr = Arrangement::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        let pruned = solve_arrangement(&arr);
        let full = solve_arrangement_with(&arr, &ExactOptions::exhaustive());
        assert!(
            (pruned.obj2 - full.obj2).abs() < 1e-9,
            "pruning changed the optimum: {} vs {}",
            pruned.obj2,
            full.obj2
        );
        assert!(pruned.trees_pruned > 0, "3x3 search should prune branches");
        assert!(
            pruned.trees_examined < full.trees_examined,
            "pruning should examine fewer full trees"
        );
        assert!(is_feasible(&arr, &pruned.alloc, 1e-9));
    }

    #[test]
    fn exact_dominates_alternating_fixpoint() {
        let arrs = [
            Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]),
            Arrangement::from_rows(&[vec![0.7, 1.1, 2.0], vec![1.3, 1.9, 3.1]]),
            Arrangement::from_rows(&[
                vec![1.0, 2.0, 3.0],
                vec![4.0, 5.0, 6.0],
                vec![7.0, 8.0, 9.0],
            ]),
        ];
        for arr in &arrs {
            let exact = solve_arrangement(arr);
            let alt = crate::alternating::optimize(arr, 10_000);
            assert!(
                exact.obj2 >= alt.alloc.obj2() - 1e-9,
                "exact {} < alternating {}",
                exact.obj2,
                alt.alloc.obj2()
            );
        }
    }

    #[test]
    fn homogeneous_grid_exact() {
        // All-equal processors: obj2 = p * q / t... with t = 1:
        // r_i = c_j = 1 and every product is 1, so obj2 = p * q.
        let arr = Arrangement::from_rows(&[vec![1.0; 3], vec![1.0; 3]]);
        let sol = solve_arrangement(&arr);
        assert!((sol.obj2 - 6.0).abs() < 1e-9);
        assert!(achieves_perfect_balance(&arr, &sol));
    }

    #[test]
    fn global_solution_beats_or_ties_fixed_sorted_arrangement() {
        let times = [1.0, 2.0, 3.0, 5.0];
        let sorted = crate::arrangement::sorted_row_major(&times, 2, 2);
        let fixed = solve_arrangement(&sorted);
        let global = solve_global(&times, 2, 2);
        assert!(global.obj2 >= fixed.obj2 - 1e-12);
        assert_eq!(global.arrangements_examined, 2);
    }

    #[test]
    fn theorem1_nondecreasing_suffices_exhaustive_check() {
        // Cross-check Theorem 1 on random-ish 2x2 instances: the best over
        // ALL 24 arrangements equals the best over non-decreasing ones.
        let instances: &[[f64; 4]] = &[
            [1.0, 2.0, 3.0, 5.0],
            [0.5, 0.9, 1.7, 3.3],
            [2.0, 2.0, 4.0, 5.0],
            [1.0, 1.5, 2.25, 4.0],
        ];
        for times in instances {
            let global = solve_global(times, 2, 2);
            let mut best_any = 0.0f64;
            crate::arrangement::enumerate_all(times, 2, 2, |arr| {
                let s = solve_arrangement(arr);
                if s.obj2 > best_any {
                    best_any = s.obj2;
                }
            });
            assert!(
                (global.obj2 - best_any).abs() < 1e-9,
                "non-decreasing search missed optimum: {} vs {} for {:?}",
                global.obj2,
                best_any,
                times
            );
        }
    }

    #[test]
    fn analytic_2x2_matches_tree_enumeration() {
        let cases: &[[f64; 4]] = &[
            [1.0, 2.0, 3.0, 6.0], // rank-1
            [1.0, 2.0, 3.0, 5.0], // det < 0
            [1.0, 2.0, 3.0, 7.0], // det > 0
            [0.4, 0.9, 0.6, 1.3],
            [2.0, 2.0, 2.0, 2.0], // homogeneous
        ];
        for c in cases {
            let arr = Arrangement::from_rows(&[vec![c[0], c[1]], vec![c[2], c[3]]]);
            let enumerated = solve_arrangement(&arr);
            let analytic = solve_2x2(&arr);
            assert!(
                (enumerated.obj2 - analytic.obj2).abs() < 1e-12,
                "analytic {} != enumerated {} for {:?}",
                analytic.obj2,
                enumerated.obj2,
                c
            );
            assert!(crate::objective::is_feasible(&arr, &analytic.alloc, 1e-9));
        }
    }

    #[test]
    fn single_row_grid_reduces_to_1d() {
        // On a 1 x q grid the optimum is c_j = 1/t_j (each column tight).
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0, 4.0]]);
        let sol = solve_arrangement(&arr);
        assert!((sol.obj2 - (1.0 + 0.5 + 0.25)).abs() < 1e-9);
        assert!(achieves_perfect_balance(&arr, &sol));
    }

    #[test]
    fn external_bound_prunes_exactly_the_suboptimal_arrangements() {
        // Replaces a manual timing probe that measured the same sweep
        // but asserted nothing. The contract it exercised: seeding every
        // arrangement with an external bound just below the global
        // optimum must (a) return `None` for arrangements that cannot
        // beat the bound, (b) return the true optimum for the winners,
        // and (c) leave at least one winner — exactly the behaviour
        // `solve_global` relies on when sharing its incumbent.
        let times: Vec<f64> = (1..=9).map(|x| x as f64).collect();
        let g = solve_global(&times, 3, 3);
        let noseed = ExactOptions {
            seed_incumbent: false,
            prune: true,
        };
        let ext = g.obj2 * (1.0 - 1e-9);
        let mut examined = 0usize;
        let mut winners = 0usize;
        crate::arrangement::enumerate_nondecreasing(&times, 3, 3, |a| {
            examined += 1;
            if let Some(s) = solve_arrangement_counted(a, &noseed, ext).0 {
                winners += 1;
                assert!(
                    s.obj2 >= ext,
                    "survivor below the external bound: {} < {}",
                    s.obj2,
                    ext
                );
                assert!(
                    (s.obj2 - g.obj2).abs() <= g.obj2 * 1e-9,
                    "survivor is not the global optimum: {} vs {}",
                    s.obj2,
                    g.obj2
                );
            }
        });
        assert_eq!(examined, g.arrangements_examined as usize);
        assert!(winners >= 1, "external bound pruned the optimum itself");
        assert!(
            winners < examined,
            "bound pruned nothing — pruning has regressed"
        );
    }

    #[test]
    fn larger_grid_is_tractable_with_pruning() {
        // 6x6 takes ~44 s by plain enumeration (6^5 * 6^5 trees); the
        // branch-and-bound must solve it instantly and agree with the
        // alternating lower bound it was seeded with.
        let times: Vec<f64> = (0..36).map(|k| 1.0 + 0.11 * (k + 1) as f64).collect();
        let arr = crate::arrangement::sorted_row_major(&times, 6, 6);
        let sol = solve_arrangement(&arr);
        assert!(sol.trees_pruned > 0);
        assert!(is_feasible(&arr, &sol.alloc, 1e-9));
        let alt = crate::alternating::optimize(&arr, 10_000);
        assert!(sol.obj2 >= alt.alloc.obj2() - 1e-9);
    }
}
