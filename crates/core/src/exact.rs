//! Exact solution of the optimization problem (Section 4.3).
//!
//! For a *fixed* arrangement the optimum of `Obj2` is attained with at
//! least `p + q - 1` tight constraints, and the tight constraints must
//! connect all rows and columns: they form a spanning tree of the
//! complete bipartite graph `K_{p,q}` whose vertices are the `r_i` and
//! `c_j` and whose edge `(r_i, c_j)` carries weight `t_ij`. Walking an
//! *acceptable* tree (all non-tree products `<= 1`) from `r_1 = 1`
//! determines every share; the optimum is the acceptable tree of maximal
//! value `(sum r)(sum c)`.
//!
//! The number of spanning trees of `K_{p,q}` is `p^(q-1) * q^(p-1)` —
//! exponential, but perfectly feasible for the small grids where exact
//! answers are wanted (81 trees for 3x3, 4096 for 4x4, ~4x10^5 for 5x5).
//!
//! The *global* problem additionally searches over arrangements; by the
//! paper's Theorem 1 only non-decreasing arrangements need to be
//! considered.

use crate::arrangement::{enumerate_nondecreasing, Arrangement};
use crate::objective::{workload_matrix, Allocation};

/// Exact optimum for a fixed arrangement.
#[derive(Clone, Debug)]
pub struct ExactSolution {
    /// Optimal shares (gauge: `r[0] = 1`).
    pub alloc: Allocation,
    /// The optimal `Obj2` value `(sum r)(sum c)`.
    pub obj2: f64,
    /// Edges `(i, j)` of the optimal acceptable spanning tree (the tight
    /// constraints `r_i t_ij c_j = 1`).
    pub tree: Vec<(usize, usize)>,
    /// Total number of spanning trees examined.
    pub trees_examined: u64,
    /// Number of acceptable trees found.
    pub trees_acceptable: u64,
}

/// Solves `Obj2` exactly for the given arrangement by enumerating the
/// spanning trees of `K_{p,q}`.
///
/// # Panics
/// Panics if the grid is larger than 8x8 (the enumeration would be
/// astronomically large; use the heuristic instead).
pub fn solve_arrangement(arr: &Arrangement) -> ExactSolution {
    let (p, q) = (arr.p(), arr.q());
    assert!(
        p <= 8 && q <= 8,
        "solve_arrangement: exact solver limited to grids up to 8x8"
    );
    let n_vertices = p + q;
    let n_edges = p * q;
    let need = n_vertices - 1;

    // Edge e = i * q + j joins row-vertex i and column-vertex p + j.
    let mut best: Option<ExactSolution> = None;
    let mut chosen: Vec<usize> = Vec::with_capacity(need);
    let mut parent: Vec<usize> = (0..n_vertices).collect();
    let mut examined = 0u64;
    let mut acceptable = 0u64;

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    // Depth-first enumeration over edges in index order: at each edge
    // either include it (if it joins two components) or skip it. Prune
    // when the remaining edges cannot complete a tree.
    fn rec(
        e: usize,
        n_edges: usize,
        need: usize,
        p: usize,
        q: usize,
        arr: &Arrangement,
        chosen: &mut Vec<usize>,
        parent: &mut Vec<usize>,
        best: &mut Option<ExactSolution>,
        examined: &mut u64,
        acceptable: &mut u64,
    ) {
        if chosen.len() == need {
            *examined += 1;
            if let Some(sol) = evaluate_tree(arr, chosen) {
                *acceptable += 1;
                if best.as_ref().is_none_or(|b| sol.obj2 > b.obj2) {
                    *best = Some(sol);
                }
            }
            return;
        }
        if e == n_edges || n_edges - e < need - chosen.len() {
            return;
        }
        let (i, j) = (e / q, e % q);
        let u = find(parent, i);
        let v = find(parent, p + j);
        if u != v {
            // Include edge e.
            let saved = parent.clone();
            parent[u] = v;
            chosen.push(e);
            rec(
                e + 1,
                n_edges,
                need,
                p,
                q,
                arr,
                chosen,
                parent,
                best,
                examined,
                acceptable,
            );
            chosen.pop();
            *parent = saved;
        }
        // Skip edge e.
        rec(
            e + 1,
            n_edges,
            need,
            p,
            q,
            arr,
            chosen,
            parent,
            best,
            examined,
            acceptable,
        );
    }

    rec(
        0,
        n_edges,
        need,
        p,
        q,
        arr,
        &mut chosen,
        &mut parent,
        &mut best,
        &mut examined,
        &mut acceptable,
    );

    let mut sol = best.expect("K_{p,q} always has an acceptable spanning tree");
    sol.trees_examined = examined;
    sol.trees_acceptable = acceptable;
    sol
}

/// Computes the shares forced by a spanning tree and checks
/// acceptability. Returns `None` if some non-tree product exceeds 1.
fn evaluate_tree(arr: &Arrangement, edges: &[usize]) -> Option<ExactSolution> {
    let (p, q) = (arr.p(), arr.q());
    let mut r = vec![0.0f64; p];
    let mut c = vec![0.0f64; q];
    let mut r_set = vec![false; p];
    let mut c_set = vec![false; q];

    // Adjacency over tree edges only.
    let mut adj: Vec<Vec<(usize, bool)>> = vec![Vec::new(); p + q]; // (edge idx, _)
    for &e in edges {
        let (i, j) = (e / q, e % q);
        adj[i].push((e, true));
        adj[p + j].push((e, false));
    }

    r[0] = 1.0;
    r_set[0] = true;
    let mut stack = vec![0usize]; // vertex ids; rows: 0..p, cols: p..p+q
    while let Some(v) = stack.pop() {
        for &(e, _) in &adj[v] {
            let (i, j) = (e / q, e % q);
            if v < p {
                // From row i determine column j.
                if !c_set[j] {
                    c[j] = 1.0 / (r[i] * arr.time(i, j));
                    c_set[j] = true;
                    stack.push(p + j);
                }
            } else if !r_set[i] {
                r[i] = 1.0 / (c[j] * arr.time(i, j));
                r_set[i] = true;
                stack.push(i);
            }
        }
    }
    debug_assert!(
        r_set.iter().all(|&x| x) && c_set.iter().all(|&x| x),
        "spanning tree did not reach every vertex"
    );

    // Acceptability: every product <= 1 (tree edges are exactly 1).
    for i in 0..p {
        for j in 0..q {
            if r[i] * arr.time(i, j) * c[j] > 1.0 + 1e-9 {
                return None;
            }
        }
    }
    let alloc = Allocation::new(r, c);
    let obj2 = alloc.obj2();
    Some(ExactSolution {
        alloc,
        obj2,
        tree: edges.iter().map(|&e| (e / q, e % q)).collect(),
        trees_examined: 0,
        trees_acceptable: 0,
    })
}

/// Closed-form exact solution for a 2x2 arrangement (the analytical
/// solution the paper defers to its extended version).
///
/// With the gauge `r_1 = 1`, the four spanning trees of `K_{2,2}`
/// evaluate in closed form; which pair is acceptable is decided by the
/// sign of the determinant `t11 t22 - t12 t21`:
///
/// * `t11 t22 <= t12 t21`: trees {11,12,21} and {12,21,22};
/// * `t11 t22 >= t12 t21`: trees {11,12,22} and {11,21,22};
/// * equality (rank-1): all four coincide with perfect balance.
///
/// # Panics
/// Panics if the arrangement is not 2x2.
pub fn solve_2x2(arr: &Arrangement) -> ExactSolution {
    assert_eq!(
        (arr.p(), arr.q()),
        (2, 2),
        "solve_2x2: arrangement must be 2x2"
    );
    let (t11, t12, t21, t22) = (
        arr.time(0, 0),
        arr.time(0, 1),
        arr.time(1, 0),
        arr.time(1, 1),
    );
    let det = t11 * t22 - t12 * t21;

    // Candidate allocations (r1 = 1).
    let mut candidates: Vec<(Vec<(usize, usize)>, Allocation)> = Vec::new();
    if det <= 0.0 {
        // Tree {(0,0),(0,1),(1,0)}.
        candidates.push((
            vec![(0, 0), (0, 1), (1, 0)],
            Allocation::new(vec![1.0, t11 / t21], vec![1.0 / t11, 1.0 / t12]),
        ));
        // Tree {(0,1),(1,0),(1,1)}.
        candidates.push((
            vec![(0, 1), (1, 0), (1, 1)],
            Allocation::new(vec![1.0, t12 / t22], vec![t22 / (t12 * t21), 1.0 / t12]),
        ));
    }
    if det >= 0.0 {
        // Tree {(0,0),(0,1),(1,1)}.
        candidates.push((
            vec![(0, 0), (0, 1), (1, 1)],
            Allocation::new(vec![1.0, t12 / t22], vec![1.0 / t11, 1.0 / t12]),
        ));
        // Tree {(0,0),(1,0),(1,1)}.
        candidates.push((
            vec![(0, 0), (1, 0), (1, 1)],
            Allocation::new(vec![1.0, t11 / t21], vec![1.0 / t11, t21 / (t11 * t22)]),
        ));
    }
    let trees_examined = candidates.len() as u64;
    let (tree, alloc) = candidates
        .into_iter()
        .max_by(|a, b| a.1.obj2().partial_cmp(&b.1.obj2()).expect("NaN obj2"))
        .expect("at least two candidates");
    debug_assert!(crate::objective::is_feasible(arr, &alloc, 1e-9));
    let obj2 = alloc.obj2();
    ExactSolution {
        alloc,
        obj2,
        tree,
        trees_examined,
        trees_acceptable: trees_examined,
    }
}

/// Exact global optimum: best non-decreasing arrangement together with
/// its exact shares (Sections 4.2 + 4.3 combined). Exponential in both
/// the arrangement count and the tree count; for small grids only.
#[derive(Clone, Debug)]
pub struct GlobalSolution {
    /// The optimal arrangement.
    pub arrangement: Arrangement,
    /// The optimal shares for that arrangement.
    pub alloc: Allocation,
    /// The optimal `Obj2` value.
    pub obj2: f64,
    /// Number of non-decreasing arrangements examined.
    pub arrangements_examined: u64,
}

/// Searches all non-decreasing arrangements of `times` on a `p x q` grid,
/// solving each exactly.
///
/// # Panics
/// Panics if `times.len() != p * q` or the grid exceeds the exact-solver
/// limit.
pub fn solve_global(times: &[f64], p: usize, q: usize) -> GlobalSolution {
    let mut best: Option<GlobalSolution> = None;
    let mut count = 0u64;
    enumerate_nondecreasing(times, p, q, |arr| {
        count += 1;
        let sol = solve_arrangement(arr);
        if best.as_ref().is_none_or(|b| sol.obj2 > b.obj2) {
            best = Some(GlobalSolution {
                arrangement: arr.clone(),
                alloc: sol.alloc,
                obj2: sol.obj2,
                arrangements_examined: 0,
            });
        }
    });
    let mut sol = best.expect("at least one arrangement exists");
    sol.arrangements_examined = count;
    sol
}

/// Perfect-balance check: `true` iff the exact optimum uses every
/// processor at 100% (possible exactly when the arrangement behaves like
/// a rank-1 matrix, Section 4.3.2).
pub fn achieves_perfect_balance(arr: &Arrangement, sol: &ExactSolution) -> bool {
    let b = workload_matrix(arr, &sol.alloc);
    b.as_slice().iter().all(|&x| (x - 1.0).abs() < 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::is_feasible;

    #[test]
    fn rank1_2x2_perfect_balance() {
        // Figure 1 grid: perfect balance achievable.
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let sol = solve_arrangement(&arr);
        assert!(achieves_perfect_balance(&arr, &sol));
        // r = (1, 1/3), c = (1, 1/2): obj2 = (4/3)(3/2) = 2.
        assert!((sol.obj2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_counterexample_1235_no_perfect_balance() {
        // Section 3.1.2: with t22 = 5 instead of 6, no allocation balances
        // perfectly; the exact optimum is obj2 = 2 with P22 partly idle.
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = solve_arrangement(&arr);
        assert!(!achieves_perfect_balance(&arr, &sol));
        assert!((sol.obj2 - 2.0).abs() < 1e-9);
        // The optimal shares: r = (1, 1/3), c = (1, 1/2); P22 load 5/6.
        let b = workload_matrix(&arr, &sol.alloc);
        assert!((b[(1, 1)] - 5.0 / 6.0).abs() < 1e-9);
        assert!(is_feasible(&arr, &sol.alloc, 1e-9));
    }

    #[test]
    fn tree_count_matches_cayley_formula() {
        // K_{2,2} has 2^1 * 2^1 = 4 spanning trees; K_{2,3} has 2^2*3 = 12.
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = solve_arrangement(&arr);
        assert_eq!(sol.trees_examined, 4);

        let arr23 = Arrangement::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let sol23 = solve_arrangement(&arr23);
        assert_eq!(sol23.trees_examined, 12);

        let arr33 = Arrangement::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        let sol33 = solve_arrangement(&arr33);
        assert_eq!(sol33.trees_examined, 81);
    }

    #[test]
    fn exact_dominates_alternating_fixpoint() {
        let arrs = [
            Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]),
            Arrangement::from_rows(&[vec![0.7, 1.1, 2.0], vec![1.3, 1.9, 3.1]]),
            Arrangement::from_rows(&[
                vec![1.0, 2.0, 3.0],
                vec![4.0, 5.0, 6.0],
                vec![7.0, 8.0, 9.0],
            ]),
        ];
        for arr in &arrs {
            let exact = solve_arrangement(arr);
            let alt = crate::alternating::optimize(arr, 10_000);
            assert!(
                exact.obj2 >= alt.alloc.obj2() - 1e-9,
                "exact {} < alternating {}",
                exact.obj2,
                alt.alloc.obj2()
            );
        }
    }

    #[test]
    fn homogeneous_grid_exact() {
        // All-equal processors: obj2 = p * q / t... with t = 1:
        // r_i = c_j = 1 and every product is 1, so obj2 = p * q.
        let arr = Arrangement::from_rows(&[vec![1.0; 3], vec![1.0; 3]]);
        let sol = solve_arrangement(&arr);
        assert!((sol.obj2 - 6.0).abs() < 1e-9);
        assert!(achieves_perfect_balance(&arr, &sol));
    }

    #[test]
    fn global_solution_beats_or_ties_fixed_sorted_arrangement() {
        let times = [1.0, 2.0, 3.0, 5.0];
        let sorted = crate::arrangement::sorted_row_major(&times, 2, 2);
        let fixed = solve_arrangement(&sorted);
        let global = solve_global(&times, 2, 2);
        assert!(global.obj2 >= fixed.obj2 - 1e-12);
        assert_eq!(global.arrangements_examined, 2);
    }

    #[test]
    fn theorem1_nondecreasing_suffices_exhaustive_check() {
        // Cross-check Theorem 1 on random-ish 2x2 instances: the best over
        // ALL 24 arrangements equals the best over non-decreasing ones.
        let instances: &[[f64; 4]] = &[
            [1.0, 2.0, 3.0, 5.0],
            [0.5, 0.9, 1.7, 3.3],
            [2.0, 2.0, 4.0, 5.0],
            [1.0, 1.5, 2.25, 4.0],
        ];
        for times in instances {
            let global = solve_global(times, 2, 2);
            let mut best_any = 0.0f64;
            crate::arrangement::enumerate_all(times, 2, 2, |arr| {
                let s = solve_arrangement(arr);
                if s.obj2 > best_any {
                    best_any = s.obj2;
                }
            });
            assert!(
                (global.obj2 - best_any).abs() < 1e-9,
                "non-decreasing search missed optimum: {} vs {} for {:?}",
                global.obj2,
                best_any,
                times
            );
        }
    }

    #[test]
    fn analytic_2x2_matches_tree_enumeration() {
        let cases: &[[f64; 4]] = &[
            [1.0, 2.0, 3.0, 6.0], // rank-1
            [1.0, 2.0, 3.0, 5.0], // det < 0
            [1.0, 2.0, 3.0, 7.0], // det > 0
            [0.4, 0.9, 0.6, 1.3],
            [2.0, 2.0, 2.0, 2.0], // homogeneous
        ];
        for c in cases {
            let arr = Arrangement::from_rows(&[vec![c[0], c[1]], vec![c[2], c[3]]]);
            let enumerated = solve_arrangement(&arr);
            let analytic = solve_2x2(&arr);
            assert!(
                (enumerated.obj2 - analytic.obj2).abs() < 1e-12,
                "analytic {} != enumerated {} for {:?}",
                analytic.obj2,
                enumerated.obj2,
                c
            );
            assert!(crate::objective::is_feasible(&arr, &analytic.alloc, 1e-9));
        }
    }

    #[test]
    fn single_row_grid_reduces_to_1d() {
        // On a 1 x q grid the optimum is c_j = 1/t_j (each column tight).
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0, 4.0]]);
        let sol = solve_arrangement(&arr);
        assert!((sol.obj2 - (1.0 + 0.5 + 0.25)).abs() < 1e-9);
        assert!(achieves_perfect_balance(&arr, &sol));
    }
}
