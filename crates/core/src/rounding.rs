//! Scaling the rational shares `r_i`, `c_j` to integer block counts
//! (Section 4.1: "we scale them by the factor N ... we may have to round
//! up some values, but we do so while preserving the relation
//! `sum r_i = sum c_j = N`").

use crate::arrangement::Arrangement;
use crate::objective::{t_exe, Allocation};

/// Largest-remainder (Hamilton) apportionment: integer counts
/// proportional to `weights`, summing exactly to `total`.
///
/// Deterministic: ties on remainders break toward the larger weight, then
/// the lower index.
///
/// # Panics
/// Panics if `weights` is empty or contains a non-positive value.
pub fn round_proportional(weights: &[f64], total: usize) -> Vec<usize> {
    assert!(!weights.is_empty(), "round_proportional: empty weights");
    assert!(
        weights.iter().all(|&w| w > 0.0 && w.is_finite()),
        "round_proportional: weights must be positive"
    );
    let sum: f64 = weights.iter().sum();
    let quotas: Vec<f64> = weights.iter().map(|w| w * total as f64 / sum).collect();
    let mut counts: Vec<usize> = quotas.iter().map(|&x| x.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut leftovers: Vec<usize> = (0..weights.len()).collect();
    leftovers.sort_by(|&a, &b| {
        let ra = quotas[a] - quotas[a].floor();
        let rb = quotas[b] - quotas[b].floor();
        rb.partial_cmp(&ra)
            .expect("NaN quota")
            .then(weights[b].partial_cmp(&weights[a]).expect("NaN weight"))
            .then(a.cmp(&b))
    });
    for k in 0..total - assigned {
        counts[leftovers[k]] += 1;
    }
    counts
}

/// Integer row/column block counts for a panel of `bp x bq` blocks,
/// proportional to the allocation's shares, followed by a local-search
/// polish that minimizes the integer makespan
/// `max_ij rows_i * t_ij * cols_j` by moving single blocks between rows
/// (resp. columns) while it helps.
///
/// # Panics
/// Panics if the allocation does not match the arrangement, or `bp < p`
/// / `bq < q` would leave a row or column empty (a processor with zero
/// blocks would break the grid communication pattern).
pub fn integer_allocation(
    arr: &Arrangement,
    alloc: &Allocation,
    bp: usize,
    bq: usize,
) -> (Vec<usize>, Vec<usize>) {
    assert_eq!(alloc.r.len(), arr.p(), "integer_allocation: r mismatch");
    assert_eq!(alloc.c.len(), arr.q(), "integer_allocation: c mismatch");
    assert!(bp >= arr.p(), "integer_allocation: bp must be >= p");
    assert!(bq >= arr.q(), "integer_allocation: bq must be >= q");

    let mut rows = round_proportional(&alloc.r, bp);
    let mut cols = round_proportional(&alloc.c, bq);
    ensure_nonzero(&mut rows);
    ensure_nonzero(&mut cols);

    // Local search: try moving one block between any pair of rows, then
    // any pair of columns; accept strictly improving moves.
    let mut improved = true;
    while improved {
        improved = false;
        let current = t_exe(arr, &rows, &cols);
        'rows: for a in 0..rows.len() {
            for b in 0..rows.len() {
                if a == b || rows[a] <= 1 {
                    continue;
                }
                rows[a] -= 1;
                rows[b] += 1;
                if t_exe(arr, &rows, &cols) < current - 1e-15 {
                    improved = true;
                    break 'rows;
                }
                rows[a] += 1;
                rows[b] -= 1;
            }
        }
        let current = t_exe(arr, &rows, &cols);
        'cols: for a in 0..cols.len() {
            for b in 0..cols.len() {
                if a == b || cols[a] <= 1 {
                    continue;
                }
                cols[a] -= 1;
                cols[b] += 1;
                if t_exe(arr, &rows, &cols) < current - 1e-15 {
                    improved = true;
                    break 'cols;
                }
                cols[a] += 1;
                cols[b] -= 1;
            }
        }
    }
    (rows, cols)
}

/// Bumps zero counts to one, taking blocks from the largest counts (every
/// grid row/column must own at least one block row/column).
fn ensure_nonzero(counts: &mut [usize]) {
    loop {
        let Some(zero) = counts.iter().position(|&c| c == 0) else {
            return;
        };
        let donor = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
            .expect("non-empty");
        assert!(
            counts[donor] > 1,
            "not enough blocks to cover every row/column"
        );
        counts[donor] -= 1;
        counts[zero] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_proportions_are_preserved() {
        // Figure 1 shares: r = (1, 1/3) over 4 -> (3, 1); c = (1, 1/2)
        // over 3 -> (2, 1).
        assert_eq!(round_proportional(&[1.0, 1.0 / 3.0], 4), vec![3, 1]);
        assert_eq!(round_proportional(&[1.0, 0.5], 3), vec![2, 1]);
    }

    #[test]
    fn fig4_panel_counts() {
        // Section 3.2.2: same shares, Bp = 8 -> (6, 2); Bq = 6 -> (4, 2).
        assert_eq!(round_proportional(&[1.0, 1.0 / 3.0], 8), vec![6, 2]);
        assert_eq!(round_proportional(&[1.0, 0.5], 6), vec![4, 2]);
    }

    #[test]
    fn sums_always_exact() {
        let weights = [0.123, 0.456, 0.789, 0.321, 0.654];
        for total in [1usize, 5, 17, 100, 1001] {
            let counts = round_proportional(&weights, total);
            assert_eq!(counts.iter().sum::<usize>(), total);
        }
    }

    #[test]
    fn uniform_weights_split_evenly() {
        let counts = round_proportional(&[1.0; 4], 8);
        assert_eq!(counts, vec![2, 2, 2, 2]);
    }

    #[test]
    fn integer_allocation_matches_paper_examples() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let exact = crate::exact::solve_arrangement(&arr);
        let (rows, cols) = integer_allocation(&arr, &exact.alloc, 8, 6);
        assert_eq!(rows, vec![6, 2]);
        assert_eq!(cols, vec![4, 2]);
    }

    #[test]
    fn integer_allocation_keeps_everyone_nonzero() {
        // Extremely skewed shares still leave one block per row.
        let arr = Arrangement::from_rows(&[vec![1.0, 1.0], vec![1000.0, 1000.0]]);
        let alt = crate::alternating::optimize(&arr, 1000);
        let (rows, cols) = integer_allocation(&arr, &alt.alloc, 4, 4);
        assert!(rows.iter().all(|&x| x >= 1));
        assert!(cols.iter().all(|&x| x >= 1));
        assert_eq!(rows.iter().sum::<usize>(), 4);
        assert_eq!(cols.iter().sum::<usize>(), 4);
    }

    #[test]
    fn local_search_does_not_worsen() {
        let arr = Arrangement::from_rows(&[vec![0.2, 0.9], vec![0.5, 1.0]]);
        let alt = crate::alternating::optimize(&arr, 1000);
        let naive_rows = round_proportional(&alt.alloc.r, 10);
        let naive_cols = round_proportional(&alt.alloc.c, 10);
        let (rows, cols) = integer_allocation(&arr, &alt.alloc, 10, 10);
        assert!(
            crate::objective::t_exe(&arr, &rows, &cols)
                <= crate::objective::t_exe(&arr, &naive_rows, &naive_cols) + 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        round_proportional(&[1.0, 0.0], 3);
    }
}
