//! Optimal 1D heterogeneous allocation (the building block from the
//! authors' earlier uni-dimensional papers, refs [5, 6]).
//!
//! Given `p` processors with cycle-times `t_i` and `B` equal blocks, find
//! integer counts `n_i` (summing to `B`) minimizing the makespan
//! `max_i n_i * t_i`, together with the *order* in which the blocks are
//! dealt to processors. The order is what produces the interleaved
//! periodic patterns (`ABAABA` in Figure 4) that keep every prefix of
//! columns balanced — the property the right-looking LU/QR elimination
//! needs (Section 3.2.2).
//!
//! The greedy "deal the next block to the processor that would finish it
//! earliest" rule is optimal for this min-max problem: it is exactly the
//! exchange-argument-optimal list-scheduling of identical unit tasks on
//! uniform machines.

/// Result of a 1D allocation of `B` blocks over `p` processors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OneDAllocation {
    /// Number of blocks assigned to each processor; sums to `B`.
    pub counts: Vec<usize>,
    /// `order[k]` is the processor owning the `k`-th block; this is the
    /// periodic pattern written left-to-right (e.g. `ABAABA`).
    pub order: Vec<usize>,
}

impl OneDAllocation {
    /// Makespan `max_i counts_i * t_i` of the allocation under `times`.
    ///
    /// # Panics
    /// Panics if `times.len() != counts.len()`.
    pub fn makespan(&self, times: &[f64]) -> f64 {
        assert_eq!(times.len(), self.counts.len(), "makespan: length mismatch");
        self.counts
            .iter()
            .zip(times)
            .map(|(&n, &t)| n as f64 * t)
            .fold(0.0, f64::max)
    }
}

/// Optimal 1D allocation of `B` blocks to processors with the given
/// cycle-times, with the greedy dealing order.
///
/// Ties are broken toward the faster processor (then the lower index), so
/// the output is deterministic.
///
/// # Panics
/// Panics if `times` is empty or contains non-positive values.
pub fn allocate_1d(times: &[f64], blocks: usize) -> OneDAllocation {
    assert!(!times.is_empty(), "allocate_1d: no processors");
    assert!(
        times.iter().all(|&t| t > 0.0 && t.is_finite()),
        "allocate_1d: cycle-times must be positive"
    );
    let p = times.len();
    let mut counts = vec![0usize; p];
    let mut order = Vec::with_capacity(blocks);
    for _ in 0..blocks {
        // Next block goes to the processor whose completion time after
        // taking it is smallest.
        let mut best = 0usize;
        let mut best_finish = f64::INFINITY;
        for i in 0..p {
            let finish = (counts[i] + 1) as f64 * times[i];
            if finish < best_finish || (finish == best_finish && times[i] < times[best]) {
                best = i;
                best_finish = finish;
            }
        }
        counts[best] += 1;
        order.push(best);
    }
    OneDAllocation { counts, order }
}

/// Ideal (rational) shares proportional to speed `1/t_i`, normalized to
/// sum to 1; the continuous relaxation of [`allocate_1d`].
pub fn ideal_shares(times: &[f64]) -> Vec<f64> {
    let rate: f64 = times.iter().map(|&t| 1.0 / t).sum();
    times.iter().map(|&t| 1.0 / (t * rate)).collect()
}

/// Equivalent cycle-time of a *group* of processors acting as one: the
/// inverse of the sum of their rates, `1 / sum(1/t_i)` (the harmonic
/// aggregation used in Sections 3.1.2 and 3.2.2).
///
/// A group containing `n_i` copies of cycle-time `t_i` is expressed by
/// passing `(t_i, n_i)` pairs.
pub fn equivalent_cycle_time(groups: &[(f64, usize)]) -> f64 {
    let rate: f64 = groups.iter().map(|&(t, n)| n as f64 / t).sum();
    assert!(rate > 0.0, "equivalent_cycle_time: empty group");
    1.0 / rate
}

/// A 1D heterogeneous block-cyclic distribution: the periodic pattern of
/// the authors' uni-dimensional papers (refs [5, 6]), dealing `period`
/// block columns to `p` processors by the optimal greedy order and
/// tiling that pattern cyclically.
///
/// This is the 1D ancestor of the 2D block-panel distribution: the 2D
/// panel's column pattern *is* a [`OneDDist`] over the aggregated
/// grid-column speeds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OneDDist {
    pattern: Vec<usize>,
    p: usize,
}

impl OneDDist {
    /// Builds the distribution for processors with the given cycle-times
    /// and a dealing period of `period` blocks.
    ///
    /// # Panics
    /// Panics if `period < times.len()` (somebody would own nothing) or
    /// a cycle-time is not positive.
    pub fn new(times: &[f64], period: usize) -> Self {
        assert!(
            period >= times.len(),
            "OneDDist: period must cover every processor"
        );
        let alloc = allocate_1d(times, period);
        let mut pattern = alloc.order;
        // The greedy can starve a very slow processor at small periods;
        // hand it the last slot of the largest owner.
        let mut counts = alloc.counts;
        while let Some(starved) = counts.iter().position(|&c| c == 0) {
            let donor = (0..counts.len())
                .max_by_key(|&i| counts[i])
                .expect("non-empty");
            assert!(counts[donor] > 1, "OneDDist: period too small");
            let pos = pattern
                .iter()
                .rposition(|&o| o == donor)
                .expect("donor in pattern");
            pattern[pos] = starved;
            counts[donor] -= 1;
            counts[starved] += 1;
        }
        OneDDist {
            pattern,
            p: times.len(),
        }
    }

    /// Builds the *suffix-balanced* variant: the greedy dealing order
    /// reversed, so that every suffix of a period is a greedy-optimal
    /// allocation of that many blocks. This is the right ordering for
    /// right-looking LU/QR, whose step-`k` work lives on the *trailing*
    /// columns: as the elimination retires columns left to right, the
    /// remaining set stays balanced.
    ///
    /// For the paper's Figure 4 example the greedy pattern `ABAABA` is a
    /// palindrome, so the two variants coincide; they differ whenever
    /// the counts are more skewed.
    ///
    /// # Panics
    /// Panics like [`OneDDist::new`].
    pub fn new_suffix_balanced(times: &[f64], period: usize) -> Self {
        let mut d = Self::new(times, period);
        d.pattern.reverse();
        d
    }

    /// Owner of global block `b`.
    #[inline]
    pub fn owner(&self, b: usize) -> usize {
        self.pattern[b % self.pattern.len()]
    }

    /// The dealing period.
    pub fn period(&self) -> usize {
        self.pattern.len()
    }

    /// The periodic owner pattern.
    pub fn pattern(&self) -> &[usize] {
        &self.pattern
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.p
    }

    /// Blocks owned by each processor among the first `nb` blocks.
    pub fn counts(&self, nb: usize) -> Vec<usize> {
        let mut c = vec![0usize; self.p];
        for b in 0..nb {
            c[self.owner(b)] += 1;
        }
        c
    }
}

/// Cost of a 1D right-looking elimination (the column-LU model of the
/// authors' uni-dimensional papers): at step `k` the remaining blocks
/// `k+1..nb` are updated, and the step lasts as long as the busiest
/// processor, `sum_k max_i (count of remaining blocks owned by i) * t_i`.
///
/// This is the quantity the interleaved dealing order minimizes — a
/// contiguous assignment leaves the fast processors idle in the late
/// steps when only slow owners remain.
pub fn lu_column_makespan(dist: &OneDDist, times: &[f64], nb: usize) -> f64 {
    assert_eq!(
        times.len(),
        dist.processors(),
        "lu_column_makespan: mismatch"
    );
    let mut total = 0.0;
    for k in 0..nb {
        let mut counts = vec![0usize; times.len()];
        for b in k + 1..nb {
            counts[dist.owner(b)] += 1;
        }
        let step = counts
            .iter()
            .zip(times)
            .map(|(&c, &t)| c as f64 * t)
            .fold(0.0, f64::max);
        total += step;
    }
    total
}

/// Brute-force optimal makespan (exponential; for tests only).
#[cfg(test)]
fn brute_force_makespan(times: &[f64], blocks: usize) -> f64 {
    fn rec(times: &[f64], i: usize, left: usize, current: f64) -> f64 {
        if i == times.len() - 1 {
            return current.max(left as f64 * times[i]);
        }
        let mut best = f64::INFINITY;
        for n in 0..=left {
            let m = rec(times, i + 1, left - n, current.max(n as f64 * times[i]));
            if m < best {
                best = m;
            }
        }
        best
    }
    rec(times, 0, blocks, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_is_optimal_small_instances() {
        let cases: &[(&[f64], usize)] = &[
            (&[1.0, 2.0], 7),
            (&[1.0, 3.0], 8),
            (&[1.0, 2.0, 3.0], 11),
            (&[0.3, 0.4, 0.9], 9),
            (&[1.0, 1.0, 1.0], 10),
            (&[2.5, 0.5, 1.5, 1.0], 8),
        ];
        for &(times, blocks) in cases {
            let alloc = allocate_1d(times, blocks);
            assert_eq!(alloc.counts.iter().sum::<usize>(), blocks);
            let greedy = alloc.makespan(times);
            let opt = brute_force_makespan(times, blocks);
            assert!(
                (greedy - opt).abs() < 1e-12,
                "greedy {} != opt {} for {:?} x {}",
                greedy,
                opt,
                times,
                blocks
            );
        }
    }

    #[test]
    fn fig4_column_pattern_abaaba() {
        // Section 3.2.2: the two grid columns of [[1,2],[3,5]] aggregate
        // (per panel column: 6 blocks at t=1 or 2, 2 blocks at t=3 or 5)
        // to cycle-times 3/20 and 5/17; the six panel columns are dealt
        // as A B A A B A.
        let ta = equivalent_cycle_time(&[(1.0, 6), (3.0, 2)]);
        let tb = equivalent_cycle_time(&[(2.0, 6), (5.0, 2)]);
        assert!((ta - 3.0 / 20.0).abs() < 1e-12);
        assert!((tb - 5.0 / 17.0).abs() < 1e-12);
        let alloc = allocate_1d(&[ta, tb], 6);
        assert_eq!(alloc.order, vec![0, 1, 0, 0, 1, 0], "expected ABAABA");
        assert_eq!(alloc.counts, vec![4, 2]);
    }

    #[test]
    fn kl_example_row_splits() {
        // Section 3.1.2 (Kalinov-Lastovetsky walk-through): column one has
        // cycle-times (1, 3) -> 3 rows out of 4 to the fast processor;
        // column two has (2, 5) -> 5 out of 7 to the faster one.
        let a = allocate_1d(&[1.0, 3.0], 4);
        assert_eq!(a.counts, vec![3, 1]);
        let b = allocate_1d(&[2.0, 5.0], 7);
        assert_eq!(b.counts, vec![5, 2]);
    }

    #[test]
    fn kl_example_column_split() {
        // The two grid columns act as processors of cycle-time
        // 2/(1/1 + 1/3) = 3/2 and 2/(1/2 + 1/5) = 20/7 (two processors
        // each, so the per-column equivalent for *matrix columns* keeps
        // the factor 2 of rows); out of 61 matrix columns, 40 go to the
        // first and 21 to the second.
        let t1 = 2.0 * equivalent_cycle_time(&[(1.0, 1), (3.0, 1)]);
        let t2 = 2.0 * equivalent_cycle_time(&[(2.0, 1), (5.0, 1)]);
        assert!((t1 - 1.5).abs() < 1e-12);
        assert!((t2 - 20.0 / 7.0).abs() < 1e-12);
        let a = allocate_1d(&[t1, t2], 61);
        assert_eq!(a.counts, vec![40, 21]);
    }

    #[test]
    fn homogeneous_alloc_is_cyclic() {
        let a = allocate_1d(&[1.0, 1.0, 1.0], 9);
        assert_eq!(a.counts, vec![3, 3, 3]);
        // Dealing order must cycle through the processors.
        assert_eq!(a.order, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn ideal_shares_sum_to_one_and_order() {
        let s = ideal_shares(&[1.0, 2.0, 4.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[0] > s[1] && s[1] > s[2]);
        // 1/t proportions: 4/7, 2/7, 1/7.
        assert!((s[0] - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn zero_blocks_ok() {
        let a = allocate_1d(&[1.0, 2.0], 0);
        assert_eq!(a.counts, vec![0, 0]);
        assert!(a.order.is_empty());
        assert_eq!(a.makespan(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn oned_dist_periodic_ownership() {
        let d = OneDDist::new(&[1.0, 2.0], 3);
        // Greedy over 3 blocks with t = (1, 2): A A B? finishes 1, 2 vs
        // 2 -> A, then 2 vs 2 tie -> A (faster), then 3 vs 2 -> B.
        assert_eq!(d.pattern(), &[0, 0, 1]);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(3), 0);
        assert_eq!(d.owner(5), 1);
        assert_eq!(d.counts(6), vec![4, 2]);
    }

    #[test]
    fn oned_dist_covers_everyone() {
        // A very slow processor still gets a slot.
        let d = OneDDist::new(&[1.0, 1.0, 100.0], 3);
        let mut seen = [false; 3];
        for &o in d.pattern() {
            seen[o] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn interleaving_beats_contiguous_for_lu() {
        // Same counts, different order: the greedy (interleaved) pattern
        // must not lose to the contiguous one on the LU column model.
        let times = [1.0, 3.0];
        let nb = 24;
        let interleaved = OneDDist::new(&times, 4); // pattern AABA-like
        let contiguous = OneDDist {
            pattern: vec![0, 0, 0, 1],
            p: 2,
        };
        // Force genuinely contiguous vs interleaved patterns with the
        // same per-period counts.
        assert_eq!(interleaved.counts(4), contiguous.counts(4));
        let mi = lu_column_makespan(&interleaved, &times, nb);
        let mc = lu_column_makespan(&contiguous, &times, nb);
        assert!(mi <= mc + 1e-9, "interleaved {} > contiguous {}", mi, mc);
    }

    #[test]
    fn suffix_balanced_is_best_for_lu_columns() {
        // With skewed counts the suffix-balanced (reversed-greedy)
        // pattern must not lose to the prefix-greedy one on the LU
        // column model — and it wins strictly here.
        let times = [1.0, 3.0];
        let prefix = OneDDist::new(&times, 8);
        let suffix = OneDDist::new_suffix_balanced(&times, 8);
        assert_eq!(
            suffix.pattern().iter().rev().cloned().collect::<Vec<_>>(),
            prefix.pattern()
        );
        for nb in [8usize, 16, 40] {
            let mp = lu_column_makespan(&prefix, &times, nb);
            let ms = lu_column_makespan(&suffix, &times, nb);
            assert!(
                ms <= mp + 1e-9,
                "suffix {} > prefix {} at nb={}",
                ms,
                mp,
                nb
            );
        }
    }

    #[test]
    fn paper_abaaba_is_a_palindrome() {
        // Figure 4's pattern: prefix- and suffix-balanced coincide.
        let times = [3.0 / 20.0, 5.0 / 17.0];
        let prefix = OneDDist::new(&times, 6);
        let suffix = OneDDist::new_suffix_balanced(&times, 6);
        assert_eq!(prefix.pattern(), suffix.pattern());
        assert_eq!(prefix.pattern(), &[0, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn lu_column_makespan_homogeneous_closed_form() {
        // p = 1: every step costs (nb - k - 1) * t.
        let d = OneDDist::new(&[2.0], 1);
        let nb = 6;
        let expect: f64 = (0..nb).map(|k| (nb - k - 1) as f64 * 2.0).sum();
        assert!((lu_column_makespan(&d, &[2.0], nb) - expect).abs() < 1e-12);
    }

    #[test]
    fn every_prefix_is_balanced() {
        // The dealing order makes every prefix a greedy-optimal allocation:
        // the defining property needed for LU's shrinking column space.
        let times = [0.2, 0.5, 0.9];
        let full = allocate_1d(&times, 20);
        for k in 0..=20 {
            let mut prefix_counts = vec![0usize; 3];
            for &o in &full.order[..k] {
                prefix_counts[o] += 1;
            }
            let prefix = allocate_1d(&times, k);
            assert_eq!(prefix_counts, prefix.counts, "prefix {} differs", k);
        }
    }
}
