//! The polynomial heuristic of Section 4.4: rank-1 approximation via SVD
//! plus iterative re-arrangement.
//!
//! One *step* of the heuristic, for a fixed arrangement `T`:
//!
//! 1. form `T^inv = (1/t_ij)` and take its largest singular triple
//!    `(s, a, b)` — `s a b^T` is the best rank-1 approximation of
//!    `T^inv`;
//! 2. seed `r_i = s * a_i`, `c_j = b_j` and *normalize* so that every
//!    product `r_i t_ij c_j <= 1` with an equality in every row and every
//!    column. (Normalization is the alternating max-scaling of
//!    [`crate::alternating`] run to its fixpoint; a single
//!    column-then-row pass — the literal reading of the paper — is
//!    available as [`NormalizeMode::SinglePass`] for ablation.)
//!
//! The *iterative refinement* of Section 4.4.3 then computes
//! `T_opt = (1/(r_i c_j))` — the rank-1 cycle-time matrix the shares are
//! perfect for — and re-sorts the actual cycle-times into the grid in the
//! rank order of `T_opt`, repeating the step until the arrangement stops
//! changing.

use crate::arrangement::{sorted_row_major, Arrangement};
use crate::objective::{average_workload, Allocation};
use hetgrid_linalg::top_singular_triple;

/// How to normalize the SVD seed into a feasible, tight allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NormalizeMode {
    /// Alternate column/row max-scaling to the fixpoint (every row *and*
    /// column tight). This is what the paper's worked example reports.
    Fixpoint,
    /// One column pass then one row pass, exactly as the text describes.
    /// May leave some column constraints slack; kept for ablation.
    SinglePass,
}

/// Options for [`solve`].
#[derive(Clone, Copy, Debug)]
pub struct HeuristicOptions {
    /// Maximum number of refinement steps (arrangement re-sorts).
    pub max_steps: usize,
    /// Normalization variant.
    pub normalize: NormalizeMode,
}

impl Default for HeuristicOptions {
    fn default() -> Self {
        HeuristicOptions {
            max_steps: 200,
            normalize: NormalizeMode::Fixpoint,
        }
    }
}

/// One evaluation round of the heuristic.
#[derive(Clone, Debug)]
pub struct HeuristicStep {
    /// Arrangement used in this round.
    pub arrangement: Arrangement,
    /// Normalized shares produced by the SVD step.
    pub alloc: Allocation,
    /// Objective value `(sum r)(sum c)`.
    pub obj2: f64,
    /// Mean of the workload matrix `B` (Figure 6's quantity).
    pub average_workload: f64,
}

/// Full trace of the heuristic run.
#[derive(Clone, Debug)]
pub struct HeuristicResult {
    /// Every evaluation round, in order. Non-empty.
    pub steps: Vec<HeuristicStep>,
    /// `true` if the arrangement reached a fixed point (no change).
    pub converged: bool,
    /// `true` if the run stopped because an arrangement repeated
    /// non-consecutively (a cycle), rather than converging.
    pub cycled: bool,
}

impl HeuristicResult {
    /// Number of steps performed (Figure 8's quantity).
    pub fn iterations(&self) -> usize {
        self.steps.len()
    }

    /// The first step (before any refinement).
    pub fn first(&self) -> &HeuristicStep {
        &self.steps[0]
    }

    /// The best step by objective value (the returned solution).
    pub fn best(&self) -> &HeuristicStep {
        self.steps
            .iter()
            .max_by(|a, b| a.obj2.partial_cmp(&b.obj2).expect("NaN obj2"))
            .expect("non-empty steps")
    }

    /// The last step (the converged state when `converged`).
    pub fn last(&self) -> &HeuristicStep {
        self.steps.last().expect("non-empty steps")
    }

    /// Figure 7's refinement gain
    /// `tau = obj2(converged) / obj2(first step) - 1`.
    pub fn tau(&self) -> f64 {
        self.last().obj2 / self.first().obj2 - 1.0
    }
}

/// Runs one SVD step for a *fixed* arrangement: best rank-1 approximation
/// of `T^inv`, seeded shares, then normalization.
pub fn solve_arrangement(arr: &Arrangement, mode: NormalizeMode) -> Allocation {
    let tinv = arr.inverse_times();
    let (s, a, b) = top_singular_triple(&tinv);
    // Guard: singular vectors of a positive matrix are positive, but
    // numerical noise could produce tiny non-positive entries.
    let r0: Vec<f64> = a.iter().map(|&x| (s * x).max(1e-300)).collect();
    match mode {
        NormalizeMode::Fixpoint => crate::alternating::optimize_from(arr, &r0, 10_000).alloc,
        NormalizeMode::SinglePass => {
            let (p, q) = (arr.p(), arr.q());
            let mut c: Vec<f64> = b.iter().map(|&x| x.max(1e-300)).collect();
            // Column pass: divide c_j by the max of column j of the
            // product matrix.
            for (j, cj) in c.iter_mut().enumerate() {
                let m = (0..p)
                    .map(|i| r0[i] * arr.time(i, j) * *cj)
                    .fold(0.0f64, f64::max);
                *cj /= m;
            }
            // Row pass: divide r_i by the max of row i.
            let mut r = r0;
            for (i, ri) in r.iter_mut().enumerate() {
                let m = (0..q)
                    .map(|j| *ri * arr.time(i, j) * c[j])
                    .fold(0.0f64, f64::max);
                *ri /= m;
            }
            Allocation::new(r, c)
        }
    }
}

/// The rank-1 "optimal" cycle-time matrix implied by shares:
/// `T_opt = (1 / (r_i c_j))` (Section 4.4.3).
pub fn t_opt(alloc: &Allocation) -> Vec<Vec<f64>> {
    alloc
        .r
        .iter()
        .map(|&ri| alloc.c.iter().map(|&cj| 1.0 / (ri * cj)).collect())
        .collect()
}

/// Re-sorts the cycle-times of `arr` into the grid so their rank order
/// matches the rank order of `T_opt` entries. Ties in `T_opt` are broken
/// by row-major position, making the refinement deterministic.
fn rearrange(arr: &Arrangement, alloc: &Allocation) -> Arrangement {
    let (p, q) = (arr.p(), arr.q());
    // Sort grid positions by T_opt value.
    let mut positions: Vec<usize> = (0..p * q).collect();
    let topt: Vec<f64> = (0..p * q)
        .map(|k| 1.0 / (alloc.r[k / q] * alloc.c[k % q]))
        .collect();
    positions.sort_by(|&a, &b| {
        topt[a]
            .partial_cmp(&topt[b])
            .expect("NaN in T_opt")
            .then(a.cmp(&b))
    });
    // Sort the (time, proc) pairs ascending by time (stable).
    let mut pairs: Vec<(f64, usize)> = (0..p * q)
        .map(|k| (arr.time(k / q, k % q), arr.proc(k / q, k % q)))
        .collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN cycle-time"));

    let mut times = vec![0.0f64; p * q];
    let mut procs = vec![0usize; p * q];
    for (rank, &pos) in positions.iter().enumerate() {
        times[pos] = pairs[rank].0;
        procs[pos] = pairs[rank].1;
    }
    Arrangement::with_procs(p, q, times, procs)
}

/// Runs the full heuristic: sorted-row-major start, SVD step, iterative
/// refinement until the arrangement is stable (or cycles / hits the step
/// limit).
///
/// # Panics
/// Panics if `times.len() != p * q` or a cycle-time is not positive.
pub fn solve(times: &[f64], p: usize, q: usize, opts: HeuristicOptions) -> HeuristicResult {
    let mut arr = sorted_row_major(times, p, q);
    let mut steps = Vec::new();
    let mut seen: Vec<Vec<u64>> = Vec::new(); // bit patterns of past arrangements
    let key = |a: &Arrangement| -> Vec<u64> { a.times().iter().map(|t| t.to_bits()).collect() };
    seen.push(key(&arr));

    let mut converged = false;
    let mut cycled = false;
    for _ in 0..opts.max_steps {
        let alloc = solve_arrangement(&arr, opts.normalize);
        let obj2 = alloc.obj2();
        let avg = average_workload(&arr, &alloc);
        steps.push(HeuristicStep {
            arrangement: arr.clone(),
            alloc: alloc.clone(),
            obj2,
            average_workload: avg,
        });

        let next = rearrange(&arr, &alloc);
        if next.times() == arr.times() {
            converged = true;
            break;
        }
        let k = key(&next);
        if seen.contains(&k) {
            cycled = true;
            break;
        }
        seen.push(k);
        arr = next;
    }
    HeuristicResult {
        steps,
        converged,
        cycled,
    }
}

/// Convenience: run with default options.
pub fn solve_default(times: &[f64], p: usize, q: usize) -> HeuristicResult {
    solve(times, p, q, HeuristicOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{is_feasible, workload_matrix};

    const PAPER_T: [f64; 9] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];

    /// E5 — Section 4.4.2 worked example: first step on T = `[[1..9]]`.
    #[test]
    fn paper_3x3_first_step() {
        let res = solve_default(&PAPER_T, 3, 3);
        let first = res.first();
        // r = (1.1661, 0.3675, 0.2100), c = (0.6803, 0.4288, 0.2859).
        let r_expect = [1.1661, 0.3675, 0.2100];
        let c_expect = [0.6803, 0.4288, 0.2859];
        for i in 0..3 {
            assert!(
                (first.alloc.r[i] - r_expect[i]).abs() < 2e-3,
                "r[{}] = {} != {}",
                i,
                first.alloc.r[i],
                r_expect[i]
            );
            assert!(
                (first.alloc.c[i] - c_expect[i]).abs() < 2e-3,
                "c[{}] = {} != {}",
                i,
                first.alloc.c[i],
                c_expect[i]
            );
        }
        // B matrix of the paper.
        let b = workload_matrix(&first.arrangement, &first.alloc);
        let b_expect = [
            [0.7933, 1.0, 1.0],
            [1.0, 0.7879, 0.6303],
            [1.0, 0.7203, 0.5402],
        ];
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (b[(i, j)] - b_expect[i][j]).abs() < 2e-3,
                    "B[{}][{}] = {} != {}",
                    i,
                    j,
                    b[(i, j)],
                    b_expect[i][j]
                );
            }
        }
        // Mean workload 0.8302 and objective 2.4322.
        assert!((first.average_workload - 0.8302).abs() < 2e-3);
        assert!((first.obj2 - 2.4322).abs() < 2e-3);
    }

    /// E6 — Section 4.4.3: the refinement trace on T = `[[1..9]]`.
    #[test]
    fn paper_3x3_refinement() {
        let res = solve_default(&PAPER_T, 3, 3);
        assert!(res.converged, "refinement did not converge");
        // The paper reports convergence in 3 steps; a near-tie in the
        // T_opt ranking (10.154 vs 10.155) makes our trajectory insert
        // one extra intermediate arrangement. Allow a small slack but
        // require the same start, second step, and fixed point.
        assert!(
            (3..=5).contains(&res.iterations()),
            "unexpected iteration count {}",
            res.iterations()
        );
        // Step 2 arrangement [[1,2,3],[4,5,7],[6,8,9]], obj 2.5065.
        assert_eq!(
            res.steps[1].arrangement.times(),
            &[1.0, 2.0, 3.0, 4.0, 5.0, 7.0, 6.0, 8.0, 9.0]
        );
        assert!((res.steps[1].obj2 - 2.5065).abs() < 2e-3);
        // Converged arrangement [[1,2,3],[4,6,8],[5,7,9]], obj 2.5889.
        assert_eq!(
            res.last().arrangement.times(),
            &[1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 5.0, 7.0, 9.0]
        );
        assert!((res.last().obj2 - 2.5889).abs() < 2e-3);
        // tau for this instance: 2.5889 / 2.4322 - 1.
        assert!((res.tau() - (2.5889 / 2.4322 - 1.0)).abs() < 2e-3);
    }

    /// The T_opt matrix printed in the paper after the first step.
    #[test]
    fn paper_3x3_t_opt() {
        let res = solve_default(&PAPER_T, 3, 3);
        let first = res.first();
        let topt = t_opt(&first.alloc);
        let expect = [
            [1.2606, 2.0, 3.0],
            [4.0, 6.3464, 9.5195],
            [7.0, 11.1061, 16.6592],
        ];
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (topt[i][j] - expect[i][j]).abs() < 2e-2,
                    "T_opt[{}][{}] = {} != {}",
                    i,
                    j,
                    topt[i][j],
                    expect[i][j]
                );
            }
        }
    }

    #[test]
    fn allocations_always_feasible_and_tight() {
        let times = [0.31, 0.77, 0.53, 0.99, 0.12, 0.44];
        let res = solve_default(&times, 2, 3);
        for step in &res.steps {
            assert!(is_feasible(&step.arrangement, &step.alloc, 1e-9));
            let b = workload_matrix(&step.arrangement, &step.alloc);
            for i in 0..2 {
                let m = (0..3).map(|j| b[(i, j)]).fold(0.0f64, f64::max);
                assert!((m - 1.0).abs() < 1e-8, "row {} not tight", i);
            }
            for j in 0..3 {
                let m = (0..2).map(|i| b[(i, j)]).fold(0.0f64, f64::max);
                assert!((m - 1.0).abs() < 1e-8, "col {} not tight", j);
            }
        }
    }

    #[test]
    fn rank1_times_solved_perfectly_in_one_step() {
        // Outer-product times: heuristic must reach workload 1 everywhere.
        let u = [1.0, 2.0];
        let v = [1.0, 3.0, 5.0];
        let mut times = Vec::new();
        for &a in &u {
            for &b in &v {
                times.push(a * b);
            }
        }
        let res = solve_default(&times, 2, 3);
        let best = res.best();
        // The heuristic is not guaranteed to discover the hidden rank-1
        // arrangement (its start is sorted-row-major, which is not
        // rank-1 here), but it must come close to full utilization.
        assert!(
            best.average_workload > 0.85,
            "workload {}",
            best.average_workload
        );
        // With the rank-1 arrangement given directly, one step suffices.
        let arr = crate::rank1::try_rank1_arrangement(&times, 2, 3, 1e-9).unwrap();
        let alloc = solve_arrangement(&arr, NormalizeMode::Fixpoint);
        let avg = crate::objective::average_workload(&arr, &alloc);
        assert!((avg - 1.0).abs() < 1e-6, "rank-1 workload {}", avg);
    }

    #[test]
    fn heuristic_never_beats_exact_but_gets_close() {
        let times = [1.0, 2.0, 3.0, 5.0];
        let res = solve_default(&times, 2, 2);
        let exact = crate::exact::solve_global(&times, 2, 2);
        let h = res.best().obj2;
        assert!(
            h <= exact.obj2 + 1e-9,
            "heuristic {} > exact {}",
            h,
            exact.obj2
        );
        assert!(
            h >= 0.85 * exact.obj2,
            "heuristic too far off: {} vs {}",
            h,
            exact.obj2
        );
    }

    #[test]
    fn homogeneous_converges_immediately() {
        let times = [2.0; 6];
        let res = solve_default(&times, 2, 3);
        assert!(res.converged);
        assert_eq!(res.iterations(), 1);
        assert!((res.best().average_workload - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_pass_mode_is_feasible() {
        let times = [0.31, 0.77, 0.53, 0.99, 0.12, 0.44];
        let opts = HeuristicOptions {
            normalize: NormalizeMode::SinglePass,
            ..Default::default()
        };
        let res = solve(&times, 2, 3, opts);
        for step in &res.steps {
            assert!(is_feasible(&step.arrangement, &step.alloc, 1e-9));
        }
        // Fixpoint mode is a coordinate ascent from the single-pass state,
        // so it can only improve the first-step objective.
        let res_fix = solve_default(&times, 2, 3);
        assert!(res_fix.first().obj2 >= res.first().obj2 - 1e-9);
    }

    #[test]
    fn step_limit_respected() {
        let times = [0.9, 0.4, 0.7, 0.2, 0.5, 0.8, 0.3, 0.6, 0.1];
        let opts = HeuristicOptions {
            max_steps: 1,
            ..Default::default()
        };
        let res = solve(&times, 3, 3, opts);
        assert_eq!(res.iterations(), 1);
    }
}
