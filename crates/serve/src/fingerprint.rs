//! Content-addressed cache keys for solve/plan/simulate requests.
//!
//! ## Normalization rules
//!
//! Two requests share a cache entry iff their *canonical key bytes*
//! are equal. The key is built field-by-field in a fixed order with
//! fixed-width little-endian encodings — never by hashing in-memory
//! structures — so it is stable across runs, platforms, and `HashMap`
//! iteration orders:
//!
//! 1. request kind byte (solve / plan / simulate are distinct spaces);
//! 2. kernel byte and `u32` block count (plan/simulate only);
//! 3. `u32` grid rows, `u32` grid cols;
//! 4. each cycle-time as its raw IEEE-754 bit pattern (`f64::to_bits`,
//!    little-endian), row-major.
//!
//! Cycle-times are compared *up to bit pattern*: `1.0` and
//! `1.0 + 1e-18` are different keys (the solver is deterministic in
//! the bits it is given, so anything fuzzier would conflate genuinely
//! different problems), and `-0.0` differs from `0.0` (both are
//! rejected upstream by validation anyway). The tenant id is
//! deliberately excluded — the solver is a pure function of the spec,
//! so tenants share the cache.
//!
//! The 128-bit FNV-1a fingerprint of the key bytes is the cache index;
//! the full key rides along in the entry and is compared on every hit,
//! so even a fingerprint collision cannot return the wrong plan (it
//! degrades to a cache miss).

use crate::proto::{RequestBody, SolveSpec};

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

/// A 128-bit content fingerprint (FNV-1a over canonical key bytes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// FNV-1a over `bytes`.
pub fn fingerprint(bytes: &[u8]) -> Fingerprint {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    Fingerprint(h)
}

fn push_spec(out: &mut Vec<u8>, spec: &SolveSpec) {
    out.extend_from_slice(&(spec.p as u32).to_le_bytes());
    out.extend_from_slice(&(spec.q as u32).to_le_bytes());
    for t in &spec.times {
        out.extend_from_slice(&t.to_bits().to_le_bytes());
    }
}

/// Canonical key bytes for a request body, or `None` for the kinds
/// that are not cacheable (metrics, shutdown).
pub fn cache_key(body: &RequestBody) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(16);
    match body {
        RequestBody::Solve(spec) => {
            out.push(1);
            push_spec(&mut out, spec);
        }
        RequestBody::Plan(plan) => {
            out.push(2);
            out.push(plan.kernel.as_u8());
            out.extend_from_slice(&(plan.nb as u32).to_le_bytes());
            push_spec(&mut out, &plan.solve);
        }
        RequestBody::Simulate(plan) => {
            out.push(3);
            out.push(plan.kernel.as_u8());
            out.extend_from_slice(&(plan.nb as u32).to_le_bytes());
            push_spec(&mut out, &plan.solve);
        }
        RequestBody::Metrics(_) | RequestBody::Shutdown => return None,
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Kernel, PlanSpec};

    fn plan_body() -> RequestBody {
        RequestBody::Plan(PlanSpec {
            solve: SolveSpec {
                p: 2,
                q: 2,
                times: vec![1.0, 2.0, 3.0, 5.0],
            },
            kernel: Kernel::Lu,
            nb: 8,
        })
    }

    #[test]
    fn fnv1a_128_matches_known_vectors() {
        // Standard FNV-1a 128 test vectors.
        assert_eq!(fingerprint(b"").0, FNV_OFFSET);
        assert_eq!(fingerprint(b"a").0, 0xd228cb696f1a8caf78912b704e4a8964_u128);
    }

    #[test]
    fn tenant_never_enters_the_key() {
        // cache_key takes only the body, so this is structural; pin it
        // with an assertion on the key contents anyway.
        let key = cache_key(&plan_body()).unwrap();
        assert!(!key.windows(4).any(|w| w == b"team"));
    }

    #[test]
    fn kind_kernel_nb_and_shape_all_discriminate() {
        let base = plan_body();
        let base_key = cache_key(&base).unwrap();
        let mut variants = Vec::new();
        if let RequestBody::Plan(p) = &base {
            variants.push(RequestBody::Simulate(p.clone()));
            let mut v = p.clone();
            v.kernel = Kernel::Qr;
            variants.push(RequestBody::Plan(v));
            let mut v = p.clone();
            v.nb += 1;
            variants.push(RequestBody::Plan(v));
            let mut v = p.clone();
            v.solve = SolveSpec {
                p: 4,
                q: 1,
                times: v.solve.times.clone(),
            };
            variants.push(RequestBody::Plan(v));
            let mut v = p.clone();
            v.solve.times[2] = 3.0000000001;
            variants.push(RequestBody::Plan(v));
        }
        for v in variants {
            assert_ne!(cache_key(&v).unwrap(), base_key, "{v:?}");
        }
    }

    #[test]
    fn uncacheable_kinds_have_no_key() {
        assert_eq!(
            cache_key(&RequestBody::Metrics(crate::proto::MetricsFormat::Json)),
            None
        );
        assert_eq!(cache_key(&RequestBody::Shutdown), None);
    }
}
