//! Length-prefixed framing for the serve wire protocol.
//!
//! A frame is a big-endian `u32` payload length followed by that many
//! payload bytes. Frames larger than [`MAX_FRAME`] are rejected before
//! any allocation, so a malicious length prefix cannot balloon memory.
//!
//! [`read_frame`] is written for sockets with a read timeout (the
//! server's idle-poll mechanism): a timeout with **zero** bytes of the
//! current frame consumed surfaces as `WireError::Io(TimedOut)` and is
//! safe to retry — the stream is still frame-aligned. A timeout in the
//! *middle* of a frame is retried internally up to [`STALL_LIMIT`]
//! consecutive times and then reported as [`WireError::Truncated`],
//! because retrying externally would lose frame alignment; the caller
//! must drop the connection.

use std::io::{ErrorKind, Read, Write};

/// Hard upper bound on a frame payload (16 MiB). A 4096-processor
/// cycle-time matrix is ~32 KiB; this leaves generous headroom for
/// encoded plans while bounding what a hostile peer can make us buffer.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Consecutive mid-frame read timeouts tolerated before the frame is
/// declared truncated (with the server's 250 ms poll interval this is
/// a ~10 s stall budget).
pub const STALL_LIMIT: u32 = 40;

/// A framing-level failure. Protocol-level problems (bad magic, bad
/// field) live in [`crate::proto::ProtoError`]; this type only covers
/// moving bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// The stream ended (or stalled past the stall budget) in the
    /// middle of a frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversize(usize),
    /// Any other I/O failure, by kind. `Io(TimedOut)` /
    /// `Io(WouldBlock)` with zero frame bytes consumed is retryable.
    Io(ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::Truncated => write!(f, "connection ended mid-frame"),
            WireError::Oversize(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// True when the error is an idle-poll timeout: no frame bytes were
    /// consumed, so calling [`read_frame`] again is safe.
    pub fn is_idle_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(ErrorKind::TimedOut) | WireError::Io(ErrorKind::WouldBlock)
        )
    }
}

fn timeoutish(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::TimedOut | ErrorKind::WouldBlock)
}

/// Reads exactly `buf.len()` bytes. `started` says whether earlier
/// bytes of this frame were already consumed (affects how EOF and
/// timeouts are classified — see module docs).
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], mut started: bool) -> Result<(), WireError> {
    let mut got = 0;
    let mut stalls = 0u32;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if started {
                    WireError::Truncated
                } else {
                    WireError::Closed
                })
            }
            Ok(n) => {
                got += n;
                started = true;
                stalls = 0;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if timeoutish(e.kind()) => {
                if !started {
                    return Err(WireError::Io(e.kind()));
                }
                stalls += 1;
                if stalls >= STALL_LIMIT {
                    return Err(WireError::Truncated);
                }
            }
            Err(e) => return Err(WireError::Io(e.kind())),
        }
    }
    Ok(())
}

/// Reads one frame and returns its payload.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; 4];
    read_full(r, &mut header, false)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversize(len));
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, true)?;
    Ok(payload)
}

/// Writes one frame.
///
/// # Panics
/// Panics if `payload` exceeds [`MAX_FRAME`] — outbound frames are
/// produced by our own codec, so an oversize one is a local bug, not
/// peer input.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    assert!(
        payload.len() <= MAX_FRAME,
        "outbound frame exceeds MAX_FRAME"
    );
    let header = (payload.len() as u32).to_be_bytes();
    let io = |e: std::io::Error| WireError::Io(e.kind());
    w.write_all(&header).map_err(io)?;
    w.write_all(payload).map_err(io)?;
    w.flush().map_err(io)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap_err(), WireError::Closed);
    }

    #[test]
    fn oversize_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert_eq!(
            read_frame(&mut Cursor::new(buf)).unwrap_err(),
            WireError::Oversize(u32::MAX as usize)
        );
    }

    #[test]
    fn truncation_is_distinguished_from_clean_close() {
        // Clean close: EOF exactly between frames.
        assert_eq!(
            read_frame(&mut Cursor::new(Vec::new())).unwrap_err(),
            WireError::Closed
        );
        // Truncated header.
        assert_eq!(
            read_frame(&mut Cursor::new(vec![0, 0])).unwrap_err(),
            WireError::Truncated
        );
        // Truncated payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        buf.truncate(buf.len() - 2);
        assert_eq!(
            read_frame(&mut Cursor::new(buf)).unwrap_err(),
            WireError::Truncated
        );
    }
}
