//! # hetgrid-serve
//!
//! Scheduling-as-a-service over the hetgrid solver/planner stack: a
//! long-running, multi-tenant TCP server (`hetgrid serve`) that
//! answers solve / plan / simulate requests, with
//!
//! * a **versioned wire protocol** — length-prefixed frames
//!   ([`wire`]), a canonical request/response codec with typed errors
//!   ([`proto`]); malformed or truncated input can never panic the
//!   process;
//! * a **content-addressed plan cache** — requests are fingerprinted
//!   over a normalized key of the cycle-time matrix (raw `f64` bit
//!   patterns), grid shape, kernel, and block count
//!   ([`fingerprint`]); the cache stores the *encoded response bytes*
//!   under an LRU bound ([`cache`]), so identical requests get
//!   byte-identical answers;
//! * **request coalescing and load shedding** — concurrent identical
//!   requests share one solver invocation, admission depth is
//!   bounded, and excess load gets a typed `Busy` ([`service`]);
//! * **per-tenant token-bucket quotas** keyed by the tenant id in the
//!   request header ([`quota`]);
//! * **observability** — `serve.*` counters/gauges/latency histograms
//!   in the process-global [`hetgrid_obs`] registry, a `serve` trace
//!   track, and a metrics endpoint that exports them over the wire.
//!
//! The stack is dependency-free by design: `std::net` sockets, OS
//! threads for I/O, and the shared [`hetgrid_par`] pool for compute —
//! no async runtime.
//!
//! The transport split matters for testing: [`Service`] knows nothing
//! about sockets, so the protocol/caching/coalescing semantics are
//! exercised in-process, and the [`server`] module is a thin accept
//! loop whose only job is moving frames.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod fingerprint;
pub mod proto;
pub mod quota;
pub mod server;
pub mod service;
pub mod wire;

pub use client::{submit, Client, ClientError};
pub use fingerprint::{cache_key, fingerprint, Fingerprint};
pub use proto::{Kernel, PlanSpec, Request, RequestBody, Response, SolveSpec};
pub use quota::QuotaConfig;
pub use server::{spawn, ServerHandle};
pub use service::{Service, ServiceConfig};
