//! A minimal blocking client for the serve wire protocol, shared by
//! `hetgrid submit`, the benches, and the integration tests.

use crate::proto::{decode_response, encode_request, ProtoError, Request, Response};
use crate::wire::{read_frame, write_frame, WireError};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// Could not connect.
    Connect(std::io::ErrorKind),
    /// Framing failed mid-conversation.
    Wire(WireError),
    /// The server's response did not decode.
    Proto(ProtoError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(kind) => write!(f, "connect failed: {kind:?}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connected client; reusable for many requests over one stream.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` with a 10-second response timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Connect(e.kind()))?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(req)).map_err(ClientError::Wire)?;
        let frame = read_frame(&mut self.stream).map_err(ClientError::Wire)?;
        decode_response(&frame).map_err(ClientError::Proto)
    }

    /// Sends pre-encoded payload bytes (test hook for malformed
    /// traffic) and reads back one frame.
    pub fn request_raw(&mut self, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        write_frame(&mut self.stream, payload).map_err(ClientError::Wire)?;
        read_frame(&mut self.stream).map_err(ClientError::Wire)
    }
}

/// One-shot helper: connect, send, receive, disconnect.
pub fn submit(addr: impl ToSocketAddrs, req: &Request) -> Result<Response, ClientError> {
    Client::connect(addr)?.request(req)
}
