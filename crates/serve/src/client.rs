//! A minimal blocking client for the serve wire protocol, shared by
//! `hetgrid submit`, the benches, and the integration tests.
//!
//! Every request travels under a trace context: if the calling thread
//! has one installed ([`hetgrid_obs::ctx`]) its trace id is reused
//! (the request joins the caller's trace); otherwise a fresh id is
//! minted per request. The context rides ahead of the request as a
//! header frame, and the server echoes it back ahead of the response —
//! [`Client::last_trace_id`] exposes the echo, so even a `Busy` or
//! error response is attributable to a specific trace.

use crate::proto::{
    decode_response, decode_trace_header, encode_request, encode_trace_header, is_trace_header,
    ProtoError, Request, Response,
};
use crate::wire::{read_frame, write_frame, WireError};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// Could not connect.
    Connect(std::io::ErrorKind),
    /// Framing failed mid-conversation.
    Wire(WireError),
    /// The server's response did not decode.
    Proto(ProtoError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(kind) => write!(f, "connect failed: {kind:?}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connected client; reusable for many requests over one stream.
pub struct Client {
    stream: TcpStream,
    last_trace_id: Option<u128>,
}

impl Client {
    /// Connects to `addr` with a 10-second response timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Connect(e.kind()))?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            last_trace_id: None,
        })
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let ctx = match hetgrid_obs::ctx::current() {
            Some(c) => c,
            None => hetgrid_obs::TraceCtx {
                trace_id: hetgrid_obs::ctx::mint_trace_id(),
                span_id: 0,
            },
        };
        self.last_trace_id = None;
        write_frame(
            &mut self.stream,
            &encode_trace_header(ctx.trace_id, ctx.span_id),
        )
        .map_err(ClientError::Wire)?;
        write_frame(&mut self.stream, &encode_request(req)).map_err(ClientError::Wire)?;
        let mut frame = read_frame(&mut self.stream).map_err(ClientError::Wire)?;
        if is_trace_header(&frame) {
            let (trace_id, _) = decode_trace_header(&frame).map_err(ClientError::Proto)?;
            self.last_trace_id = Some(trace_id);
            frame = read_frame(&mut self.stream).map_err(ClientError::Wire)?;
        }
        decode_response(&frame).map_err(ClientError::Proto)
    }

    /// The trace id the server echoed for the most recent
    /// [`Client::request`] (`None` before any request, or if the
    /// server sent no echo).
    pub fn last_trace_id(&self) -> Option<u128> {
        self.last_trace_id
    }

    /// Sends pre-encoded payload bytes (test hook for malformed
    /// traffic) and reads back one frame. No trace header is sent —
    /// the conversation is exactly the bytes given.
    pub fn request_raw(&mut self, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        write_frame(&mut self.stream, payload).map_err(ClientError::Wire)?;
        read_frame(&mut self.stream).map_err(ClientError::Wire)
    }
}

/// One-shot helper: connect, send, receive, disconnect.
pub fn submit(addr: impl ToSocketAddrs, req: &Request) -> Result<Response, ClientError> {
    Client::connect(addr)?.request(req)
}
