//! The transport-independent service: admission, quotas, the
//! content-addressed cache, in-flight coalescing, compute, and all
//! `serve.*` metrics.
//!
//! [`Service::handle`] maps one request frame to one response frame.
//! The TCP server is a thin loop around it, and the tests drive it
//! in-process — the semantics under test are exactly the semantics
//! the socket sees.
//!
//! ## Accounting invariants
//!
//! For the cacheable endpoints (solve / plan / simulate), after any
//! quiescent point:
//!
//! * `serve.cache.hits + serve.cache.misses == serve.requests.admitted`
//! * `serve.solver.invocations == serve.cache.misses`
//! * `serve.cache.evictions <= serve.cache.misses`
//! * `serve.cache.coalesced <= serve.cache.hits`
//!
//! A request that waited on another tenant's identical in-flight solve
//! counts as a *hit* (`coalesced` tracks the subset): exactly one
//! solver invocation happens per distinct fingerprint no matter how
//! many clients race. Rejections (`serve.shed`, `serve.quota.denied`,
//! `serve.requests.malformed`) happen *before* admission and are
//! excluded, as are the meta endpoints (`serve.requests.meta`).
//!
//! ## Compute
//!
//! Cold-path compute runs through the shared [`hetgrid_par`] pool, so
//! CPU-bound solver work stays bounded by the pool width no matter how
//! many connection threads are blocked waiting, and is wrapped in
//! `catch_unwind`: a panic degrades to a typed `ServerError` response
//! (uncached) instead of taking the process down.

use crate::cache::PlanCache;
use crate::fingerprint::{cache_key, fingerprint};
use crate::proto::{
    decode_request, encode_response, Kernel, MetricsFormat, PlanSpec, Request, RequestBody,
    Response, SolveResult, SolveSpec,
};
use crate::quota::{QuotaConfig, QuotaTable};
use hetgrid_core::{heuristic, validate_times, Arrangement};
use hetgrid_dist::{PanelDist, PanelOrdering};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Latency histogram bucket bounds, seconds.
const LATENCY_BOUNDS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// Tuning knobs for a [`Service`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Plan-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Maximum concurrently-admitted compute requests before load is
    /// shed with `Busy`.
    pub queue_limit: usize,
    /// Per-tenant quota policy.
    pub quota: QuotaConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 256,
            queue_limit: 64,
            quota: QuotaConfig::unlimited(),
        }
    }
}

/// One in-flight compute: waiters block on the condvar until the
/// leader publishes the encoded response.
struct Flight {
    slot: Mutex<Option<Arc<Vec<u8>>>>,
    done: Condvar,
}

/// The scheduling service. Cheap to share (`Arc<Service>`); every
/// method takes `&self`.
pub struct Service {
    cfg: ServiceConfig,
    cache: Mutex<PlanCache>,
    quotas: Mutex<QuotaTable>,
    inflight: Mutex<HashMap<u128, Arc<Flight>>>,
    active: AtomicUsize,
    shutdown: AtomicBool,
    start: Instant,
}

fn serve_track() -> hetgrid_obs::trace::TrackId {
    static TRACK: OnceLock<hetgrid_obs::trace::TrackId> = OnceLock::new();
    *TRACK.get_or_init(|| hetgrid_obs::trace::track("serve"))
}

fn pool_track() -> hetgrid_obs::trace::TrackId {
    static TRACK: OnceLock<hetgrid_obs::trace::TrackId> = OnceLock::new();
    *TRACK.get_or_init(|| hetgrid_obs::trace::track("serve-pool"))
}

impl Service {
    /// A fresh service under `cfg`.
    pub fn new(cfg: ServiceConfig) -> Self {
        Service {
            cache: Mutex::new(PlanCache::new(cfg.cache_capacity)),
            quotas: Mutex::new(QuotaTable::new(cfg.quota)),
            inflight: Mutex::new(HashMap::new()),
            active: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            start: Instant::now(),
            cfg,
        }
    }

    /// The configuration this service runs under.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// True once a `Shutdown` request has been processed.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Handles one request frame, returning the encoded response
    /// frame. Total: malformed input yields an encoded `BadRequest`,
    /// a compute panic an encoded `ServerError` — never a panic out of
    /// this function. Responses for requests with the same cache
    /// fingerprint are the *same* `Arc` — byte-identical by
    /// construction.
    pub fn handle(&self, frame: &[u8]) -> Arc<Vec<u8>> {
        let req = match decode_request(frame) {
            Ok(req) => req,
            Err(e) => {
                hetgrid_obs::metrics()
                    .counter("serve.requests.malformed")
                    .inc();
                return Arc::new(encode_response(&Response::BadRequest(e.to_string())));
            }
        };
        self.handle_decoded(&req)
    }

    /// [`Service::handle`] over an already-decoded request, decoding
    /// the response for in-process callers.
    pub fn respond(&self, req: &Request) -> Response {
        let bytes = self.handle_decoded(req);
        match crate::proto::decode_response(&bytes) {
            Ok(resp) => resp,
            Err(e) => Response::ServerError(format!("internal codec error: {e}")),
        }
    }

    fn handle_decoded(&self, req: &Request) -> Arc<Vec<u8>> {
        let m = hetgrid_obs::metrics();
        let _span = hetgrid_obs::span!(
            serve_track(),
            "{} tenant={}",
            req.body.endpoint(),
            req.tenant
        );
        match &req.body {
            RequestBody::Metrics(fmt) => {
                m.counter("serve.requests.meta").inc();
                let text = match fmt {
                    // v1 behavior: serve-scoped counters as JSON.
                    MetricsFormat::Json => m.snapshot().filtered("serve.").to_json(),
                    // The whole registry, parse-back-exact (the top
                    // dashboard wants exec/pool/recovery families too).
                    MetricsFormat::Expo => hetgrid_obs::expo::write(&m.snapshot()),
                    MetricsFormat::Series => hetgrid_obs::series::to_json(),
                };
                Arc::new(encode_response(&Response::Metrics(text)))
            }
            RequestBody::Shutdown => {
                m.counter("serve.requests.meta").inc();
                self.shutdown.store(true, Ordering::SeqCst);
                Arc::new(encode_response(&Response::ShuttingDown))
            }
            body => {
                if let Err(msg) = validate_body(body) {
                    m.counter("serve.requests.malformed").inc();
                    return Arc::new(encode_response(&Response::BadRequest(msg)));
                }
                // Quota, then load shedding, then admission.
                let now = self.start.elapsed().as_secs_f64();
                if !self
                    .quotas
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .try_admit(&req.tenant, now)
                {
                    m.counter("serve.quota.denied").inc();
                    return Arc::new(encode_response(&Response::QuotaExceeded));
                }
                let active = self.active.fetch_add(1, Ordering::SeqCst) + 1;
                if active > self.cfg.queue_limit {
                    self.active.fetch_sub(1, Ordering::SeqCst);
                    m.counter("serve.shed").inc();
                    return Arc::new(encode_response(&Response::Busy));
                }
                m.gauge("serve.queue.depth").set(active as f64);
                m.counter("serve.requests.admitted").inc();
                let tenant = if req.tenant.is_empty() {
                    "anon"
                } else {
                    req.tenant.as_str()
                };
                m.counter(&format!("serve.tenant.{tenant}.admitted")).inc();
                let t0 = Instant::now();
                let resp_bytes = self.cached_compute(body);
                m.histogram(
                    &format!("serve.latency.{}", body.endpoint()),
                    LATENCY_BOUNDS,
                )
                .observe(t0.elapsed().as_secs_f64());
                let left = self.active.fetch_sub(1, Ordering::SeqCst) - 1;
                m.gauge("serve.queue.depth").set(left as f64);
                resp_bytes
            }
        }
    }

    /// The cache / coalescing / compute path for an admitted request.
    /// Returns the encoded response bytes (shared with the cache).
    fn cached_compute(&self, body: &RequestBody) -> Arc<Vec<u8>> {
        let m = hetgrid_obs::metrics();
        let key = cache_key(body).expect("cacheable body");
        let fp = fingerprint(&key);

        if let Some(bytes) = self
            .cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(fp, &key)
        {
            m.counter("serve.cache.hits").inc();
            return bytes;
        }

        // Not cached: either lead the compute or wait on the leader.
        let (flight, leader) = {
            let mut inflight = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
            match inflight.get(&fp.0) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight {
                        slot: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    inflight.insert(fp.0, Arc::clone(&f));
                    (f, true)
                }
            }
        };

        if !leader {
            let mut slot = flight.slot.lock().unwrap_or_else(|p| p.into_inner());
            while slot.is_none() {
                slot = flight.done.wait(slot).unwrap_or_else(|p| p.into_inner());
            }
            m.counter("serve.cache.hits").inc();
            m.counter("serve.cache.coalesced").inc();
            return Arc::clone(slot.as_ref().expect("flight published"));
        }

        m.counter("serve.cache.misses").inc();
        m.counter("serve.solver.invocations").inc();
        // Run the solve on the shared worker pool (bounds CPU-bound
        // concurrency to the pool width) and absorb any panic into a
        // typed, uncached ServerError. The trace context is captured
        // here and re-installed inside the pool closure — crossing a
        // thread boundary is always explicit (see `hetgrid_obs::ctx`) —
        // so the solve span lands in the same trace tree as admission.
        let ctx = hetgrid_obs::ctx::current();
        let endpoint = body.endpoint();
        let computed = catch_unwind(AssertUnwindSafe(|| {
            hetgrid_par::global()
                .parallel_map(vec![body.clone()], move |b| {
                    let _g = ctx.map(hetgrid_obs::ctx::install);
                    let _span = hetgrid_obs::span!(pool_track(), "solve {}", endpoint);
                    compute(&b)
                })
                .pop()
                .expect("one result for one item")
        }));
        let (resp, cacheable) = match computed {
            Ok(resp) => (resp, true),
            Err(_) => (
                Response::ServerError("solver panicked; request not cached".into()),
                false,
            ),
        };
        let bytes = Arc::new(encode_response(&resp));
        if cacheable {
            let inserted = self.cache.lock().unwrap_or_else(|p| p.into_inner()).insert(
                fp,
                key,
                Arc::clone(&bytes),
            );
            if inserted.evicted {
                m.counter("serve.cache.evictions").inc();
            }
        }
        // Publish to waiters, then retire the flight so later requests
        // go through the cache.
        *flight.slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(Arc::clone(&bytes));
        flight.done.notify_all();
        self.inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&fp.0);
        bytes
    }
}

/// Semantic validation beyond what the codec enforces structurally.
fn validate_body(body: &RequestBody) -> Result<(), String> {
    let spec = match body {
        RequestBody::Solve(s) => s,
        RequestBody::Plan(p) | RequestBody::Simulate(p) => &p.solve,
        _ => return Ok(()),
    };
    validate_times(&spec.times, spec.p, spec.q).map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------
// Compute: the pure function a cache entry memoizes
// ---------------------------------------------------------------------

/// Integer slowdown weights from an arrangement (each processor's
/// cycle-time over the fastest, rounded, at least 1) — the same rule
/// `hetgrid_exec::slowdown_weights` uses, restated here so serve does
/// not pull in the executor.
fn weights_for(arr: &Arrangement) -> Vec<Vec<u64>> {
    let tmin = arr.times().iter().cloned().fold(f64::INFINITY, f64::min);
    (0..arr.p())
        .map(|i| {
            (0..arr.q())
                .map(|j| ((arr.time(i, j) / tmin).round() as u64).max(1))
                .collect()
        })
        .collect()
}

fn solve(spec: &SolveSpec) -> (Arrangement, hetgrid_core::Allocation, f64) {
    let res = heuristic::solve_default(&spec.times, spec.p, spec.q);
    let best = res.best();
    (best.arrangement.clone(), best.alloc.clone(), best.obj2)
}

fn solve_result(spec: &SolveSpec) -> (Arrangement, hetgrid_core::Allocation, SolveResult) {
    let (arr, alloc, obj2) = solve(spec);
    let result = SolveResult {
        p: spec.p,
        q: spec.q,
        times: arr.times().to_vec(),
        rows: alloc.r.clone(),
        cols: alloc.c.clone(),
        obj2,
    };
    (arr, alloc, result)
}

/// The paper-faithful distribution for a solved instance: a panel
/// distribution from the continuous allocation, with a panel period of
/// up to four panel rows/columns per grid row/column (clamped to the
/// block count). Deterministic in the spec, so cache entries are
/// reproducible.
fn dist_for(arr: &Arrangement, alloc: &hetgrid_core::Allocation, nb: usize) -> PanelDist {
    let bp = nb.min(4 * arr.p()).max(arr.p());
    let bq = nb.min(4 * arr.q()).max(arr.q());
    PanelDist::from_allocation(arr, alloc, bp, bq, PanelOrdering::Interleaved)
}

fn plan_for(spec: &PlanSpec, dist: &PanelDist) -> hetgrid_plan::Plan {
    match spec.kernel {
        Kernel::Mm => hetgrid_plan::mm_plan(dist, spec.nb),
        Kernel::Lu => hetgrid_plan::factor_plan(dist, spec.nb),
        Kernel::Cholesky => hetgrid_plan::cholesky_plan(dist, spec.nb),
        Kernel::Qr => hetgrid_plan::qr_plan(dist, spec.nb),
    }
}

fn compute(body: &RequestBody) -> Response {
    match body {
        RequestBody::Solve(spec) => {
            let (_, _, result) = solve_result(spec);
            Response::Solve(result)
        }
        RequestBody::Plan(spec) => {
            let (arr, alloc, result) = solve_result(&spec.solve);
            let dist = dist_for(&arr, &alloc, spec.nb);
            let plan = plan_for(spec, &dist);
            Response::Plan(crate::proto::PlanResult {
                solve: result,
                plan_bytes: hetgrid_plan::wire::encode(&plan),
            })
        }
        RequestBody::Simulate(spec) => {
            let (arr, alloc, _) = solve_result(&spec.solve);
            let dist = dist_for(&arr, &alloc, spec.nb);
            let weights = weights_for(&arr);
            let counts = match spec.kernel {
                Kernel::Mm => {
                    hetgrid_sim::counts::mm_counts(&dist, (spec.nb, spec.nb, spec.nb), &weights)
                }
                Kernel::Lu => hetgrid_sim::counts::lu_counts(&dist, spec.nb, &weights),
                Kernel::Cholesky => hetgrid_sim::counts::cholesky_counts(&dist, spec.nb, &weights),
                Kernel::Qr => hetgrid_sim::counts::qr_counts(&dist, spec.nb, &weights),
            };
            Response::Simulate(crate::proto::SimulateResult {
                p: spec.solve.p,
                q: spec.solve.q,
                messages: counts.messages.iter().flatten().copied().collect(),
                work: counts.work_units.iter().flatten().copied().collect(),
            })
        }
        RequestBody::Metrics(_) | RequestBody::Shutdown => {
            unreachable!("meta endpoints are handled before compute")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::encode_request;
    use std::sync::{MutexGuard, OnceLock};

    /// The metrics registry is process-global, so tests that assert
    /// counter deltas must not run while other Service tests are
    /// incrementing the same counters.
    fn obs_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    fn plan_request(tenant: &str, times: &[f64]) -> Request {
        Request {
            tenant: tenant.into(),
            body: RequestBody::Plan(PlanSpec {
                solve: SolveSpec {
                    p: 2,
                    q: 2,
                    times: times.to_vec(),
                },
                kernel: Kernel::Lu,
                nb: 6,
            }),
        }
    }

    #[test]
    fn malformed_frames_become_bad_request() {
        let _g = obs_lock();
        let svc = Service::new(ServiceConfig::default());
        for frame in [&b""[..], &b"xx"[..], &[0xFF; 64][..]] {
            let resp = crate::proto::decode_response(&svc.handle(frame)).unwrap();
            assert!(matches!(resp, Response::BadRequest(_)), "{frame:?}");
        }
    }

    #[test]
    fn bad_cycle_times_become_bad_request_not_panic() {
        let _g = obs_lock();
        let svc = Service::new(ServiceConfig::default());
        for bad in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            let req = plan_request("t", &[1.0, 2.0, 3.0, bad]);
            let resp = crate::proto::decode_response(&svc.handle(&encode_request(&req))).unwrap();
            assert!(matches!(resp, Response::BadRequest(_)), "time {bad}");
        }
    }

    #[test]
    fn identical_requests_are_byte_identical_and_hit_the_cache() {
        let _g = obs_lock();
        let svc = Service::new(ServiceConfig::default());
        let req = encode_request(&plan_request("a", &[1.0, 2.0, 3.0, 5.0]));
        let m = hetgrid_obs::metrics();
        let before = m.snapshot();
        let first = svc.handle(&req);
        // Different tenant, same spec: same bytes, served from cache.
        let other = encode_request(&plan_request("b", &[1.0, 2.0, 3.0, 5.0]));
        let second = svc.handle(&other);
        assert_eq!(first, second);
        let d = m.snapshot().delta(&before);
        assert_eq!(d.counter("serve.requests.admitted"), 2);
        assert_eq!(d.counter("serve.cache.misses"), 1);
        assert_eq!(d.counter("serve.cache.hits"), 1);
        assert_eq!(d.counter("serve.solver.invocations"), 1);
    }

    #[test]
    fn plan_response_decodes_to_a_valid_plan() {
        let _g = obs_lock();
        let svc = Service::new(ServiceConfig::default());
        let req = plan_request("t", &[1.0, 2.0, 2.0, 4.0]);
        let resp = svc.respond(&req);
        let Response::Plan(r) = resp else {
            panic!("expected a plan response, got {resp:?}")
        };
        let plan = hetgrid_plan::wire::decode(&r.plan_bytes).expect("valid plan bytes");
        assert_eq!(plan.grid, (2, 2));
        assert_eq!(plan.steps.len(), 6);
        assert_eq!(r.solve.rows.len(), 2);
        assert_eq!(r.solve.cols.len(), 2);
    }

    #[test]
    fn simulate_agrees_with_direct_counts() {
        let _g = obs_lock();
        let svc = Service::new(ServiceConfig::default());
        let spec = PlanSpec {
            solve: SolveSpec {
                p: 2,
                q: 2,
                times: vec![1.0, 2.0, 3.0, 5.0],
            },
            kernel: Kernel::Cholesky,
            nb: 6,
        };
        let resp = svc.respond(&Request {
            tenant: String::new(),
            body: RequestBody::Simulate(spec.clone()),
        });
        let Response::Simulate(sim) = resp else {
            panic!("expected simulate")
        };
        let (arr, alloc, _) = solve_result(&spec.solve);
        let dist = dist_for(&arr, &alloc, spec.nb);
        let counts = hetgrid_sim::counts::cholesky_counts(&dist, spec.nb, &weights_for(&arr));
        assert_eq!(sim.messages.iter().sum::<u64>(), counts.total_messages());
        assert_eq!(sim.work.iter().sum::<u64>(), counts.total_work());
    }

    #[test]
    fn quota_denies_past_burst() {
        let _g = obs_lock();
        let svc = Service::new(ServiceConfig {
            quota: QuotaConfig {
                rate_per_sec: 0.001,
                burst: 2.0,
            },
            ..ServiceConfig::default()
        });
        let req = plan_request("greedy", &[1.0, 2.0, 3.0, 5.0]);
        assert_ne!(svc.respond(&req).status(), "quota");
        assert_ne!(svc.respond(&req).status(), "quota");
        assert_eq!(svc.respond(&req).status(), "quota");
        // Another tenant is unaffected.
        let other = plan_request("patient", &[1.0, 2.0, 3.0, 5.0]);
        assert_ne!(svc.respond(&other).status(), "quota");
    }

    #[test]
    fn shutdown_sets_the_flag() {
        let _g = obs_lock();
        let svc = Service::new(ServiceConfig::default());
        assert!(!svc.shutdown_requested());
        let resp = svc.respond(&Request {
            tenant: "ops".into(),
            body: RequestBody::Shutdown,
        });
        assert_eq!(resp, Response::ShuttingDown);
        assert!(svc.shutdown_requested());
    }

    #[test]
    fn metrics_endpoint_reports_serve_counters() {
        let _g = obs_lock();
        let svc = Service::new(ServiceConfig::default());
        svc.respond(&plan_request("t", &[2.0, 2.0, 3.0, 5.0]));
        let resp = svc.respond(&Request {
            tenant: "ops".into(),
            body: RequestBody::Metrics(MetricsFormat::Json),
        });
        let Response::Metrics(json) = resp else {
            panic!("expected metrics")
        };
        assert!(json.contains("serve.requests.admitted"));
        assert!(json.contains("serve.tenant.t.admitted"));
        assert!(!json.contains("exec."), "non-serve metrics leaked");
    }

    #[test]
    fn metrics_exposition_format_parses_back_exactly() {
        let _g = obs_lock();
        let svc = Service::new(ServiceConfig::default());
        svc.respond(&plan_request("expo-t", &[1.0, 2.0, 4.0, 5.0]));
        let Response::Metrics(text) = svc.respond(&Request {
            tenant: "ops".into(),
            body: RequestBody::Metrics(MetricsFormat::Expo),
        }) else {
            panic!("expected metrics")
        };
        let back = hetgrid_obs::expo::parse(&text).expect("served exposition parses");
        assert!(back.counter("serve.requests.admitted") >= 1);
        assert!(back.counter("serve.tenant.expo-t.admitted") >= 1);
        // The exposition is the whole registry and its own writer's
        // fixed point.
        assert_eq!(hetgrid_obs::expo::write(&back), text);
    }

    #[test]
    fn metrics_series_format_returns_the_ring_json() {
        let _g = obs_lock();
        let svc = Service::new(ServiceConfig::default());
        hetgrid_obs::series::clear();
        hetgrid_obs::series::sample();
        let Response::Metrics(json) = svc.respond(&Request {
            tenant: String::new(),
            body: RequestBody::Metrics(MetricsFormat::Series),
        }) else {
            panic!("expected metrics")
        };
        assert!(json.starts_with("{\"series\": ["), "got {json}");
        assert!(json.contains("\"t_us\": "), "got {json}");
    }
}
