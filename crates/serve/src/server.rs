//! The TCP front end: `std::net` only, thread-per-connection, no
//! async runtime.
//!
//! Connection sockets carry a read timeout so idle connection threads
//! wake periodically, notice a pending shutdown, and exit; the accept
//! thread is woken from its blocking `accept` by a loopback
//! self-connection. Shutdown is initiated either locally
//! ([`ServerHandle::shutdown`]) or remotely (a `Shutdown` request),
//! and joins every thread it started — "clean shutdown" means no
//! thread is left behind and every accepted connection saw its stream
//! closed, never a panic.

use crate::proto;
use crate::service::{Service, ServiceConfig};
use crate::wire::{read_frame, write_frame, WireError};
use hetgrid_obs::vdiag;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Idle-poll interval: how long a blocked read waits before checking
/// the shutdown flag.
pub const POLL_INTERVAL: Duration = Duration::from_millis(250);

/// A running server: the bound address, the shared service, and the
/// accept thread's handle.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    sampler: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (port resolved when
    /// `addr` asked for `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (for in-process metrics inspection).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// True once the server has begun draining (local `shutdown` or a
    /// remote `Shutdown` request).
    pub fn draining(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || self.service.shutdown_requested()
    }

    /// Stops accepting, drains connection threads, and joins
    /// everything the server started.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sampler.take() {
            let _ = h.join();
        }
    }

    /// Waits for the server to stop on its own (a remote `Shutdown`
    /// request) and joins everything it started.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sampler.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(h) = self.accept.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            let _ = h.join();
        }
        if let Some(h) = self.sampler.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = h.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
/// accepting in a background thread.
pub fn spawn(addr: &str, cfg: ServiceConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let service = Arc::new(Service::new(cfg));
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, addr, service, stop))
            .expect("spawning the accept thread")
    };
    // Time-series sampler: one MetricsSnapshot delta per second into
    // the `hetgrid_obs::series` ring, which `Metrics(Series)` serves
    // and `hetgrid top` plots. Polls the stop flag at POLL_INTERVAL so
    // shutdown never waits out a full sample period.
    let sampler = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("serve-sampler".into())
            .spawn(move || {
                let ticks_per_sample = (1000 / POLL_INTERVAL.as_millis().max(1)).max(1);
                let mut tick = 0u128;
                while !stop.load(Ordering::SeqCst) && !service.shutdown_requested() {
                    std::thread::sleep(POLL_INTERVAL);
                    tick += 1;
                    if tick.is_multiple_of(ticks_per_sample) {
                        hetgrid_obs::series::sample();
                    }
                }
            })
            .expect("spawning the sampler thread")
    };
    vdiag!("serve: listening on {}", addr);
    Ok(ServerHandle {
        addr,
        service,
        stop,
        accept: Some(accept),
        sampler: Some(sampler),
    })
}

fn accept_loop(
    listener: TcpListener,
    addr: SocketAddr,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
) {
    let conns: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) || service.shutdown_requested() {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        hetgrid_obs::metrics()
            .counter("serve.connections.opened")
            .inc();
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || {
                connection(stream, addr, &service, &stop);
                hetgrid_obs::metrics()
                    .counter("serve.connections.closed")
                    .inc();
                hetgrid_obs::trace::flush_thread();
            })
            .expect("spawning a connection thread");
        let mut conns = conns.lock().unwrap_or_else(|p| p.into_inner());
        conns.push(handle);
        // Opportunistically reap finished threads so a long-lived
        // server does not accumulate handles.
        conns.retain(|h| !h.is_finished());
    }
    for h in conns.into_inner().unwrap_or_else(|p| p.into_inner()) {
        let _ = h.join();
    }
    vdiag!("serve: stopped accepting on {}", addr);
}

/// One connection: a loop of read-frame / handle / write-frame.
/// Returns (closing the stream) on peer close, any framing error, or
/// shutdown. Malformed *frames* (oversize, truncated) drop the
/// connection — the stream cannot be trusted to be frame-aligned —
/// while malformed *payloads* in well-formed frames get a typed
/// `BadRequest` response and the connection lives on.
///
/// A trace-context header frame ([`proto::TRACE_HEADER_KIND`]) gets no
/// response of its own: it sets the context for the *next* request on
/// this connection, whose response is then preceded by an echo of the
/// header so the client can attribute even a `Busy` or error response
/// to its trace. Requests without a header still run under a
/// freshly-minted server-side trace id — every admitted request is
/// traceable — but nothing extra is written to the stream, so v1
/// clients see exactly the v1 conversation.
fn connection(mut stream: TcpStream, addr: SocketAddr, service: &Service, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut pending: Option<(u128, u64)> = None;
    loop {
        if stop.load(Ordering::SeqCst) || service.shutdown_requested() {
            return;
        }
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(e) if e.is_idle_timeout() => continue,
            Err(WireError::Closed) => return,
            Err(_) => return,
        };
        if proto::is_trace_header(&frame) {
            match proto::decode_trace_header(&frame) {
                Ok(hdr) => {
                    pending = Some(hdr);
                    continue;
                }
                Err(e) => {
                    // Well-formed frame, malformed payload: typed
                    // response, connection lives on, context cleared.
                    pending = None;
                    hetgrid_obs::metrics()
                        .counter("serve.requests.malformed")
                        .inc();
                    let resp = crate::proto::encode_response(&crate::proto::Response::BadRequest(
                        e.to_string(),
                    ));
                    if write_frame(&mut stream, &resp).is_err() {
                        return;
                    }
                    continue;
                }
            }
        }
        let hdr = pending.take();
        let ctx = match hdr {
            Some((trace_id, span_id)) => hetgrid_obs::TraceCtx { trace_id, span_id },
            None => hetgrid_obs::TraceCtx {
                trace_id: hetgrid_obs::ctx::mint_trace_id(),
                span_id: 0,
            },
        };
        let resp = {
            let _g = hetgrid_obs::ctx::install(ctx);
            service.handle(&frame)
        };
        if hdr.is_some() {
            let echo = proto::encode_trace_header(ctx.trace_id, ctx.span_id);
            if write_frame(&mut stream, &echo).is_err() {
                return;
            }
        }
        if write_frame(&mut stream, &resp).is_err() {
            return;
        }
        if service.shutdown_requested() {
            // This request asked us to stop: wake the acceptor so the
            // drain starts immediately instead of at its next accept.
            let _ = TcpStream::connect(addr);
            return;
        }
    }
}
