//! The content-addressed plan cache: a bounded LRU from request
//! fingerprint to the *encoded response bytes* produced for it.
//!
//! Storing the encoded bytes (rather than the decoded result) is what
//! guarantees the service's byte-identical-duplicates property: every
//! request with the same fingerprint — concurrent or later — receives
//! literally the same `Arc<Vec<u8>>`.
//!
//! Each entry also stores the full canonical key bytes; a lookup whose
//! fingerprint matches but whose key bytes differ (a 128-bit FNV
//! collision) is reported as a miss, and the subsequent insert
//! replaces the colliding entry. Correctness therefore never depends
//! on the hash being collision-free.
//!
//! The cache is plain data — no metrics, no locking. The service
//! wraps it in a mutex and owns the `serve.cache.*` counters, so the
//! accounting invariants live in one place.

use crate::fingerprint::Fingerprint;
use std::collections::HashMap;
use std::sync::Arc;

struct Entry {
    key: Vec<u8>,
    bytes: Arc<Vec<u8>>,
    last_used: u64,
}

/// Bounded LRU of encoded responses keyed by fingerprint.
pub struct PlanCache {
    capacity: usize,
    tick: u64,
    map: HashMap<u128, Entry>,
}

/// What an insert did (for the service's eviction counter).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Inserted {
    /// An older entry was evicted to make room.
    pub evicted: bool,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` entries
    /// (`capacity == 0` disables caching entirely).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum entries held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `fp`, verifying the canonical `key` bytes match, and
    /// refreshes the entry's recency on a hit.
    pub fn get(&mut self, fp: Fingerprint, key: &[u8]) -> Option<Arc<Vec<u8>>> {
        self.tick += 1;
        let entry = self.map.get_mut(&fp.0)?;
        if entry.key != key {
            return None; // fingerprint collision: treat as absent
        }
        entry.last_used = self.tick;
        Some(Arc::clone(&entry.bytes))
    }

    /// Stores `bytes` under `fp`, evicting the least-recently-used
    /// entry when full. A colliding entry (same fingerprint, different
    /// key) is replaced, not evicted.
    pub fn insert(&mut self, fp: Fingerprint, key: Vec<u8>, bytes: Arc<Vec<u8>>) -> Inserted {
        if self.capacity == 0 {
            return Inserted { evicted: false };
        }
        self.tick += 1;
        let replacing = self.map.contains_key(&fp.0);
        let mut evicted = false;
        if !replacing && self.map.len() >= self.capacity {
            // O(n) scan; the cache is small (hundreds) and inserts are
            // solver-rate, so this is noise next to a solve.
            if let Some(&oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.map.remove(&oldest);
                evicted = true;
            }
        }
        self.map.insert(
            fp.0,
            Entry {
                key,
                bytes,
                last_used: self.tick,
            },
        );
        Inserted { evicted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;

    fn entry(tag: u8) -> (Fingerprint, Vec<u8>, Arc<Vec<u8>>) {
        let key = vec![tag; 4];
        (fingerprint(&key), key, Arc::new(vec![tag; 8]))
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let mut c = PlanCache::new(4);
        let (fp, key, bytes) = entry(1);
        c.insert(fp, key.clone(), Arc::clone(&bytes));
        let got = c.get(fp, &key).unwrap();
        assert!(Arc::ptr_eq(&got, &bytes));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = PlanCache::new(2);
        let (fa, ka, ba) = entry(1);
        let (fb, kb, bb) = entry(2);
        let (fc, kc, bc) = entry(3);
        assert!(!c.insert(fa, ka.clone(), ba).evicted);
        assert!(!c.insert(fb, kb.clone(), bb).evicted);
        // Touch A so B is the LRU.
        assert!(c.get(fa, &ka).is_some());
        assert!(c.insert(fc, kc.clone(), bc).evicted);
        assert!(c.get(fa, &ka).is_some(), "A was recently used");
        assert!(c.get(fb, &kb).is_none(), "B was the LRU");
        assert!(c.get(fc, &kc).is_some());
    }

    #[test]
    fn fingerprint_collision_is_a_miss_not_a_wrong_answer() {
        let mut c = PlanCache::new(4);
        let (fp, key, bytes) = entry(1);
        c.insert(fp, key, bytes);
        // Same fingerprint, different canonical key.
        assert!(c.get(fp, b"different-key").is_none());
        // Inserting the collider replaces the entry without eviction.
        let ins = c.insert(fp, b"different-key".to_vec(), Arc::new(vec![9]));
        assert!(!ins.evicted);
        assert_eq!(c.len(), 1);
        assert_eq!(*c.get(fp, b"different-key").unwrap(), vec![9]);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PlanCache::new(0);
        let (fp, key, bytes) = entry(1);
        assert!(!c.insert(fp, key.clone(), bytes).evicted);
        assert!(c.get(fp, &key).is_none());
        assert!(c.is_empty());
    }
}
