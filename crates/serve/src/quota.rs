//! Per-tenant token-bucket quotas.
//!
//! Each tenant id maps to a bucket holding up to `burst` tokens that
//! refills at `rate_per_sec`; admitting a request costs one token.
//! Time is passed in by the caller as seconds-since-service-start, so
//! the policy is a pure function of `(history, now)` and the tests are
//! deterministic — no `Instant::now()` inside.
//!
//! The table is bounded: past [`MAX_TENANTS`] distinct tenants, the
//! stalest bucket is dropped before a new one is made. Dropping a
//! bucket forgives at most `burst` tokens of debt, which is the right
//! failure direction (briefly over-admit rather than let a tenant-id
//! churn attack grow memory without bound).

use std::collections::HashMap;

/// Most distinct tenant buckets held at once.
pub const MAX_TENANTS: usize = 4096;

/// Quota policy: `rate_per_sec == 0.0` disables quotas entirely.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuotaConfig {
    /// Sustained admissions per second per tenant.
    pub rate_per_sec: f64,
    /// Bucket capacity: how far a tenant can burst above the rate.
    pub burst: f64,
}

impl QuotaConfig {
    /// No quota enforcement.
    pub fn unlimited() -> Self {
        QuotaConfig {
            rate_per_sec: 0.0,
            burst: 0.0,
        }
    }
}

struct Bucket {
    tokens: f64,
    last: f64,
}

/// The per-tenant bucket table.
pub struct QuotaTable {
    cfg: QuotaConfig,
    buckets: HashMap<String, Bucket>,
}

impl QuotaTable {
    /// An empty table under `cfg`.
    pub fn new(cfg: QuotaConfig) -> Self {
        QuotaTable {
            cfg,
            buckets: HashMap::new(),
        }
    }

    /// Tries to admit one request for `tenant` at time `now` (seconds,
    /// monotonic, caller-supplied). Returns false when the bucket is
    /// empty.
    pub fn try_admit(&mut self, tenant: &str, now: f64) -> bool {
        if self.cfg.rate_per_sec <= 0.0 {
            return true;
        }
        if !self.buckets.contains_key(tenant) && self.buckets.len() >= MAX_TENANTS {
            if let Some(stalest) = self
                .buckets
                .iter()
                .min_by(|a, b| a.1.last.total_cmp(&b.1.last))
                .map(|(k, _)| k.clone())
            {
                self.buckets.remove(&stalest);
            }
        }
        let burst = self.cfg.burst.max(1.0);
        let rate = self.cfg.rate_per_sec;
        let bucket = self.buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: burst,
            last: now,
        });
        bucket.tokens = (bucket.tokens + (now - bucket.last).max(0.0) * rate).min(burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_admits_everything() {
        let mut t = QuotaTable::new(QuotaConfig::unlimited());
        for i in 0..1000 {
            assert!(t.try_admit("anyone", i as f64 * 1e-6));
        }
    }

    #[test]
    fn burst_then_starve_then_refill() {
        let mut t = QuotaTable::new(QuotaConfig {
            rate_per_sec: 2.0,
            burst: 3.0,
        });
        // Full bucket: exactly `burst` immediate admissions.
        assert!(t.try_admit("a", 0.0));
        assert!(t.try_admit("a", 0.0));
        assert!(t.try_admit("a", 0.0));
        assert!(!t.try_admit("a", 0.0));
        // Half a second refills one token at 2/s.
        assert!(t.try_admit("a", 0.5));
        assert!(!t.try_admit("a", 0.5));
        // Refill caps at burst: after a long idle, still only 3.
        for _ in 0..3 {
            assert!(t.try_admit("a", 100.0));
        }
        assert!(!t.try_admit("a", 100.0));
    }

    #[test]
    fn tenants_are_independent() {
        let mut t = QuotaTable::new(QuotaConfig {
            rate_per_sec: 1.0,
            burst: 1.0,
        });
        assert!(t.try_admit("a", 0.0));
        assert!(!t.try_admit("a", 0.0));
        assert!(t.try_admit("b", 0.0), "b has its own bucket");
    }

    #[test]
    fn table_is_bounded() {
        let mut t = QuotaTable::new(QuotaConfig {
            rate_per_sec: 1.0,
            burst: 1.0,
        });
        for i in 0..(MAX_TENANTS + 10) {
            assert!(t.try_admit(&format!("tenant-{i}"), i as f64));
        }
        assert!(t.buckets.len() <= MAX_TENANTS);
    }

    #[test]
    fn clock_going_backwards_does_not_mint_tokens() {
        let mut t = QuotaTable::new(QuotaConfig {
            rate_per_sec: 1.0,
            burst: 2.0,
        });
        assert!(t.try_admit("a", 10.0));
        assert!(t.try_admit("a", 5.0)); // second token, no refill
        assert!(!t.try_admit("a", 1.0));
    }
}
