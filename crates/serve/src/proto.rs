//! Versioned request/response protocol for `hetgrid serve`.
//!
//! Every payload starts with the two magic bytes `hg` and a version
//! byte, then a kind byte. Integers are little-endian; cycle-times
//! travel as raw IEEE-754 `f64` bit patterns, so what the client sent
//! is bit-for-bit what the solver (and the cache fingerprint) sees.
//!
//! Request kinds:
//!
//! | kind | body |
//! |------|------|
//! | 1 `Solve`    | `u16 p, u16 q, p*q x f64` |
//! | 2 `Plan`     | `u8 kernel, u32 nb, u16 p, u16 q, p*q x f64` |
//! | 3 `Simulate` | same as `Plan` |
//! | 4 `Metrics`  | `u8 format` (absent ⇒ `0` = JSON, for v1 clients) |
//! | 5 `Shutdown` | empty |
//!
//! A `u16` tenant-id length plus UTF-8 bytes (max [`MAX_TENANT`])
//! precedes every body. The tenant id scopes quota buckets only — it
//! is deliberately *excluded* from the cache fingerprint, so tenants
//! share the plan cache (the solver is a pure function of the spec).
//!
//! Kind 6 ([`TRACE_HEADER_KIND`]) is not a request: it is an optional
//! *header frame* a client may send immediately before a request frame
//! to propagate its trace context (`u128` trace id + `u64` parent span
//! id, little-endian, both nonzero). A server that admits the request
//! under that context echoes the header frame back before the response
//! frame — and only then, so v1 clients never see an unexpected frame.
//!
//! Decoding is total: malformed bytes produce a typed [`ProtoError`],
//! never a panic, and the decoders bound every length field before
//! allocating.

use crate::wire::MAX_FRAME;

/// Protocol magic, first two payload bytes.
pub const MAGIC: [u8; 2] = *b"hg";
/// Protocol version accepted by this build.
pub const PROTO_VERSION: u8 = 1;
/// Longest accepted tenant id, in UTF-8 bytes.
pub const MAX_TENANT: usize = 64;
/// Largest accepted grid side.
pub const MAX_GRID_SIDE: usize = 1024;
/// Largest accepted block count per matrix side (plan generation is
/// super-linear in `nb`; this bounds the work one request can demand).
pub const MAX_NB: usize = 4096;
/// Kind byte of the optional trace-context header frame (not a
/// request kind; see the module docs).
pub const TRACE_HEADER_KIND: u8 = 6;

/// A malformed protocol payload: what and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What the decoder was reading.
    pub what: &'static str,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "malformed payload at byte {}: {}",
            self.offset, self.what
        )
    }
}

impl std::error::Error for ProtoError {}

/// The kernel a plan or simulation request is about.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Outer-product matrix multiplication (paper Section 3.1).
    Mm,
    /// Right-looking blocked LU (Section 3.2).
    Lu,
    /// Right-looking blocked Cholesky.
    Cholesky,
    /// Householder blocked QR.
    Qr,
}

impl Kernel {
    /// Wire byte for this kernel.
    pub fn as_u8(self) -> u8 {
        match self {
            Kernel::Mm => 0,
            Kernel::Lu => 1,
            Kernel::Cholesky => 2,
            Kernel::Qr => 3,
        }
    }

    /// Kernel for a wire byte.
    pub fn from_u8(b: u8) -> Option<Kernel> {
        Some(match b {
            0 => Kernel::Mm,
            1 => Kernel::Lu,
            2 => Kernel::Cholesky,
            3 => Kernel::Qr,
            _ => return None,
        })
    }

    /// CLI-facing name (`mm`, `lu`, `cholesky`, `qr`).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Mm => "mm",
            Kernel::Lu => "lu",
            Kernel::Cholesky => "cholesky",
            Kernel::Qr => "qr",
        }
    }

    /// Parses a CLI-facing name.
    pub fn parse(s: &str) -> Option<Kernel> {
        Some(match s {
            "mm" => Kernel::Mm,
            "lu" => Kernel::Lu,
            "cholesky" => Kernel::Cholesky,
            "qr" => Kernel::Qr,
            _ => return None,
        })
    }
}

/// The load-balancing problem instance: a `p x q` grid and its
/// row-major cycle-time matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveSpec {
    /// Grid rows.
    pub p: usize,
    /// Grid columns.
    pub q: usize,
    /// Row-major cycle-times, `p * q` entries.
    pub times: Vec<f64>,
}

/// A plan/simulate instance: a solve spec plus the kernel and block
/// count the schedule is for.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanSpec {
    /// The underlying load-balancing problem.
    pub solve: SolveSpec,
    /// Which kernel to schedule.
    pub kernel: Kernel,
    /// Blocks per matrix side.
    pub nb: usize,
}

/// Which rendering of the server's metrics a `Metrics` request wants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MetricsFormat {
    /// `serve.*` counters/gauges as a JSON document (the v1 behavior;
    /// an absent format byte decodes to this).
    #[default]
    Json,
    /// The full metrics snapshot in the Prometheus-style text
    /// exposition format (see `hetgrid_obs::expo`).
    Expo,
    /// The time-series ring of recent snapshot deltas as JSON (see
    /// `hetgrid_obs::series`).
    Series,
}

impl MetricsFormat {
    /// Wire byte for this format.
    pub fn as_u8(self) -> u8 {
        match self {
            MetricsFormat::Json => 0,
            MetricsFormat::Expo => 1,
            MetricsFormat::Series => 2,
        }
    }

    /// Format for a wire byte.
    pub fn from_u8(b: u8) -> Option<MetricsFormat> {
        Some(match b {
            0 => MetricsFormat::Json,
            1 => MetricsFormat::Expo,
            2 => MetricsFormat::Series,
            _ => return None,
        })
    }
}

/// A decoded request body.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestBody {
    /// Solve the load-balancing problem (arrangement + allocation).
    Solve(SolveSpec),
    /// Solve, then build and serialize the kernel step plan.
    Plan(PlanSpec),
    /// Solve, then predict per-processor message/work totals.
    Simulate(PlanSpec),
    /// Report the server's metrics in the requested rendering.
    Metrics(MetricsFormat),
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
}

impl RequestBody {
    fn kind_byte(&self) -> u8 {
        match self {
            RequestBody::Solve(_) => 1,
            RequestBody::Plan(_) => 2,
            RequestBody::Simulate(_) => 3,
            RequestBody::Metrics(_) => 4,
            RequestBody::Shutdown => 5,
        }
    }

    /// Endpoint label for metrics/tracing.
    pub fn endpoint(&self) -> &'static str {
        match self {
            RequestBody::Solve(_) => "solve",
            RequestBody::Plan(_) => "plan",
            RequestBody::Simulate(_) => "simulate",
            RequestBody::Metrics(_) => "metrics",
            RequestBody::Shutdown => "shutdown",
        }
    }
}

/// A full request: who is asking (for quota accounting) and what for.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Tenant id (quota bucket key); empty means the anonymous tenant.
    pub tenant: String,
    /// What is being asked.
    pub body: RequestBody,
}

/// The solved distribution parameters returned to the client.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveResult {
    /// Grid rows.
    pub p: usize,
    /// Grid columns.
    pub q: usize,
    /// Row-major cycle-times of the *solved arrangement* (the input
    /// times, reordered onto the grid).
    pub times: Vec<f64>,
    /// Row allocation `r_i` (fraction of the unit square per grid row).
    pub rows: Vec<f64>,
    /// Column allocation `c_j`.
    pub cols: Vec<f64>,
    /// The arrangement's objective value (max over processors of
    /// `r_i * c_j / t_ij`-normalized workload; lower is better).
    pub obj2: f64,
}

/// A solve result plus the serialized step plan
/// (decode with [`hetgrid_plan::wire::decode`]).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanResult {
    /// The solved distribution.
    pub solve: SolveResult,
    /// [`hetgrid_plan::wire`]-encoded schedule.
    pub plan_bytes: Vec<u8>,
}

/// Predicted per-processor totals for one kernel run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimulateResult {
    /// Grid rows.
    pub p: usize,
    /// Grid columns.
    pub q: usize,
    /// Row-major point-to-point messages sent per processor.
    pub messages: Vec<u64>,
    /// Row-major weighted work units per processor.
    pub work: Vec<u64>,
}

/// A decoded response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Successful solve.
    Solve(SolveResult),
    /// Successful plan.
    Plan(PlanResult),
    /// Successful simulation.
    Simulate(SimulateResult),
    /// Server metrics snapshot as a JSON document.
    Metrics(String),
    /// Shutdown acknowledged; the server is draining.
    ShuttingDown,
    /// Load shed: the admission queue is full, try again later.
    Busy,
    /// The tenant's token bucket is empty.
    QuotaExceeded,
    /// The request was malformed or out of bounds; human-readable why.
    BadRequest(String),
    /// The server failed internally; human-readable why.
    ServerError(String),
}

impl Response {
    fn kind_byte(&self) -> u8 {
        match self {
            Response::Solve(_) => 1,
            Response::Plan(_) => 2,
            Response::Simulate(_) => 3,
            Response::Metrics(_) => 4,
            Response::ShuttingDown => 5,
            Response::Busy => 16,
            Response::QuotaExceeded => 17,
            Response::BadRequest(_) => 18,
            Response::ServerError(_) => 19,
        }
    }

    /// Short status label (`ok`, `busy`, `quota`, `bad-request`,
    /// `server-error`).
    pub fn status(&self) -> &'static str {
        match self {
            Response::Busy => "busy",
            Response::QuotaExceeded => "quota",
            Response::BadRequest(_) => "bad-request",
            Response::ServerError(_) => "server-error",
            _ => "ok",
        }
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_header(out: &mut Vec<u8>, kind: u8) {
    out.extend_from_slice(&MAGIC);
    out.push(PROTO_VERSION);
    out.push(kind);
}

fn put_u16(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u16).to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u32).to_le_bytes());
}

fn put_f64s(out: &mut Vec<u8>, vals: &[f64]) {
    put_u32(out, vals.len());
    for v in vals {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn put_solve_spec(out: &mut Vec<u8>, s: &SolveSpec) {
    put_u16(out, s.p);
    put_u16(out, s.q);
    put_f64s(out, &s.times);
}

fn put_solve_result(out: &mut Vec<u8>, r: &SolveResult) {
    put_u16(out, r.p);
    put_u16(out, r.q);
    put_f64s(out, &r.times);
    put_f64s(out, &r.rows);
    put_f64s(out, &r.cols);
    out.extend_from_slice(&r.obj2.to_bits().to_le_bytes());
}

/// Serializes a request to its canonical payload bytes.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + req.tenant.len());
    put_header(&mut out, req.body.kind_byte());
    put_u16(&mut out, req.tenant.len());
    out.extend_from_slice(req.tenant.as_bytes());
    match &req.body {
        RequestBody::Solve(s) => put_solve_spec(&mut out, s),
        RequestBody::Plan(p) | RequestBody::Simulate(p) => {
            out.push(p.kernel.as_u8());
            put_u32(&mut out, p.nb);
            put_solve_spec(&mut out, &p.solve);
        }
        RequestBody::Metrics(fmt) => out.push(fmt.as_u8()),
        RequestBody::Shutdown => {}
    }
    out
}

/// Serializes a trace-context header frame (sent before a request, or
/// echoed before the response it contextualizes).
pub fn encode_trace_header(trace_id: u128, span_id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(28);
    put_header(&mut out, TRACE_HEADER_KIND);
    out.extend_from_slice(&trace_id.to_le_bytes());
    out.extend_from_slice(&span_id.to_le_bytes());
    out
}

/// True if `buf` looks like a trace-context header frame (magic,
/// version, and kind byte match). Used to decide whether a received
/// frame is the optional header or the request/response itself.
pub fn is_trace_header(buf: &[u8]) -> bool {
    buf.len() >= 4 && buf[..2] == MAGIC && buf[2] == PROTO_VERSION && buf[3] == TRACE_HEADER_KIND
}

/// Decodes a trace-context header frame into `(trace_id, span_id)`.
/// Total over arbitrary bytes; a zero trace id is malformed (zero
/// means "no context" and must be expressed by omitting the frame).
pub fn decode_trace_header(buf: &[u8]) -> Result<(u128, u64), ProtoError> {
    let mut c = Cursor { buf, pos: 0 };
    let kind = c.header("trace header kind")?;
    if kind != TRACE_HEADER_KIND {
        return Err(c.err("not a trace header"));
    }
    let lo = c.u64("trace id")? as u128;
    let hi = c.u64("trace id")? as u128;
    let trace_id = (hi << 64) | lo;
    let span_id = c.u64("span id")?;
    c.done()?;
    if trace_id == 0 {
        return Err(ProtoError {
            offset: 4,
            what: "zero trace id",
        });
    }
    Ok((trace_id, span_id))
}

/// Serializes a response to its canonical payload bytes.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    put_header(&mut out, resp.kind_byte());
    match resp {
        Response::Solve(r) => put_solve_result(&mut out, r),
        Response::Plan(r) => {
            put_solve_result(&mut out, &r.solve);
            put_u32(&mut out, r.plan_bytes.len());
            out.extend_from_slice(&r.plan_bytes);
        }
        Response::Simulate(r) => {
            put_u16(&mut out, r.p);
            put_u16(&mut out, r.q);
            put_u32(&mut out, r.messages.len());
            for v in &r.messages {
                out.extend_from_slice(&v.to_le_bytes());
            }
            put_u32(&mut out, r.work.len());
            for v in &r.work {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Metrics(json) => put_str(&mut out, json),
        Response::BadRequest(msg) | Response::ServerError(msg) => put_str(&mut out, msg),
        Response::ShuttingDown | Response::Busy | Response::QuotaExceeded => {}
    }
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, what: &'static str) -> ProtoError {
        ProtoError {
            offset: self.pos,
            what,
        }
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ProtoError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.err(what))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.err(what))?;
        let bytes = self.buf.get(self.pos..end).ok_or_else(|| self.err(what))?;
        self.pos = end;
        Ok(bytes)
    }

    fn u16(&mut self, what: &'static str) -> Result<usize, ProtoError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes(b.try_into().unwrap()) as usize)
    }

    fn u32(&mut self, what: &'static str) -> Result<usize, ProtoError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()) as usize)
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, ProtoError> {
        let b = self.take(8, what)?;
        Ok(f64::from_bits(u64::from_le_bytes(b.try_into().unwrap())))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ProtoError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a `u32` element count, bounded by the bytes remaining.
    fn count(&mut self, elem_bytes: usize, what: &'static str) -> Result<usize, ProtoError> {
        let n = self.u32(what)?;
        if n.saturating_mul(elem_bytes) > self.buf.len() - self.pos {
            return Err(self.err(what));
        }
        Ok(n)
    }

    fn f64s(&mut self, what: &'static str) -> Result<Vec<f64>, ProtoError> {
        let n = self.count(8, what)?;
        (0..n).map(|_| self.f64(what)).collect()
    }

    fn u64s(&mut self, what: &'static str) -> Result<Vec<u64>, ProtoError> {
        let n = self.count(8, what)?;
        (0..n).map(|_| self.u64(what)).collect()
    }

    fn string(&mut self, max: usize, what: &'static str) -> Result<String, ProtoError> {
        let n = self.count(1, what)?;
        if n > max {
            return Err(self.err(what));
        }
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError {
            offset: self.pos,
            what,
        })
    }

    fn header(&mut self, expect_what: &'static str) -> Result<u8, ProtoError> {
        let magic = self.take(2, "magic bytes")?;
        if magic != MAGIC {
            return Err(ProtoError {
                offset: 0,
                what: "bad magic bytes",
            });
        }
        let version = self.u8("version byte")?;
        if version != PROTO_VERSION {
            return Err(ProtoError {
                offset: 2,
                what: "unsupported protocol version",
            });
        }
        self.u8(expect_what)
    }

    fn solve_spec(&mut self) -> Result<SolveSpec, ProtoError> {
        let p = self.u16("grid rows")?;
        let q = self.u16("grid cols")?;
        if p == 0 || q == 0 || p > MAX_GRID_SIDE || q > MAX_GRID_SIDE {
            return Err(self.err("grid shape out of bounds"));
        }
        let times = self.f64s("cycle-times")?;
        if times.len() != p * q {
            return Err(self.err("cycle-time count does not match grid"));
        }
        Ok(SolveSpec { p, q, times })
    }

    fn plan_spec(&mut self) -> Result<PlanSpec, ProtoError> {
        let kernel =
            Kernel::from_u8(self.u8("kernel byte")?).ok_or_else(|| self.err("unknown kernel"))?;
        let nb = self.u32("block count")?;
        if nb == 0 || nb > MAX_NB {
            return Err(self.err("block count out of bounds"));
        }
        let solve = self.solve_spec()?;
        Ok(PlanSpec { solve, kernel, nb })
    }

    fn solve_result(&mut self) -> Result<SolveResult, ProtoError> {
        let p = self.u16("result grid rows")?;
        let q = self.u16("result grid cols")?;
        Ok(SolveResult {
            p,
            q,
            times: self.f64s("result times")?,
            rows: self.f64s("row allocation")?,
            cols: self.f64s("column allocation")?,
            obj2: self.f64("objective")?,
        })
    }

    fn done(&self) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(self.err("trailing bytes"));
        }
        Ok(())
    }
}

/// Decodes a request payload. Total over arbitrary bytes.
pub fn decode_request(buf: &[u8]) -> Result<Request, ProtoError> {
    if buf.len() > MAX_FRAME {
        return Err(ProtoError {
            offset: 0,
            what: "payload exceeds frame cap",
        });
    }
    let mut c = Cursor { buf, pos: 0 };
    let kind = c.header("request kind")?;
    let tenant_len = c.u16("tenant length")?;
    if tenant_len > MAX_TENANT {
        return Err(c.err("tenant id too long"));
    }
    let tenant_bytes = c.take(tenant_len, "tenant id")?;
    let tenant = String::from_utf8(tenant_bytes.to_vec()).map_err(|_| ProtoError {
        offset: 4,
        what: "tenant id is not utf-8",
    })?;
    let body = match kind {
        1 => RequestBody::Solve(c.solve_spec()?),
        2 => RequestBody::Plan(c.plan_spec()?),
        3 => RequestBody::Simulate(c.plan_spec()?),
        // A v1 client sends no format byte: empty body means JSON.
        4 if c.pos == buf.len() => RequestBody::Metrics(MetricsFormat::Json),
        4 => RequestBody::Metrics(
            MetricsFormat::from_u8(c.u8("metrics format")?)
                .ok_or_else(|| c.err("unknown metrics format"))?,
        ),
        5 => RequestBody::Shutdown,
        _ => return Err(c.err("unknown request kind")),
    };
    c.done()?;
    Ok(Request { tenant, body })
}

/// Decodes a response payload. Total over arbitrary bytes.
pub fn decode_response(buf: &[u8]) -> Result<Response, ProtoError> {
    let mut c = Cursor { buf, pos: 0 };
    let kind = c.header("response kind")?;
    let resp = match kind {
        1 => Response::Solve(c.solve_result()?),
        2 => {
            let solve = c.solve_result()?;
            let n = c.count(1, "plan bytes")?;
            let plan_bytes = c.take(n, "plan bytes")?.to_vec();
            Response::Plan(PlanResult { solve, plan_bytes })
        }
        3 => {
            let p = c.u16("sim grid rows")?;
            let q = c.u16("sim grid cols")?;
            Response::Simulate(SimulateResult {
                p,
                q,
                messages: c.u64s("message counts")?,
                work: c.u64s("work counts")?,
            })
        }
        4 => Response::Metrics(c.string(MAX_FRAME, "metrics json")?),
        5 => Response::ShuttingDown,
        16 => Response::Busy,
        17 => Response::QuotaExceeded,
        18 => Response::BadRequest(c.string(4096, "error message")?),
        19 => Response::ServerError(c.string(4096, "error message")?),
        _ => return Err(c.err("unknown response kind")),
    };
    c.done()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        let solve = SolveSpec {
            p: 2,
            q: 2,
            times: vec![1.0, 2.0, 3.0, 5.0],
        };
        let plan = PlanSpec {
            solve: solve.clone(),
            kernel: Kernel::Lu,
            nb: 8,
        };
        vec![
            Request {
                tenant: "team-a".into(),
                body: RequestBody::Solve(solve),
            },
            Request {
                tenant: String::new(),
                body: RequestBody::Plan(plan.clone()),
            },
            Request {
                tenant: "x".into(),
                body: RequestBody::Simulate(plan),
            },
            Request {
                tenant: "ops".into(),
                body: RequestBody::Metrics(MetricsFormat::Json),
            },
            Request {
                tenant: "ops".into(),
                body: RequestBody::Metrics(MetricsFormat::Expo),
            },
            Request {
                tenant: "ops".into(),
                body: RequestBody::Metrics(MetricsFormat::Series),
            },
            Request {
                tenant: "ops".into(),
                body: RequestBody::Shutdown,
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in sample_requests() {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let solve = SolveResult {
            p: 2,
            q: 2,
            times: vec![1.0, 2.0, 3.0, 5.0],
            rows: vec![0.6, 0.4],
            cols: vec![0.7, 0.3],
            obj2: 1.25,
        };
        let cases = vec![
            Response::Solve(solve.clone()),
            Response::Plan(PlanResult {
                solve,
                plan_bytes: vec![1, 2, 3, 4],
            }),
            Response::Simulate(SimulateResult {
                p: 1,
                q: 2,
                messages: vec![3, 4],
                work: vec![10, 20],
            }),
            Response::Metrics("{}".into()),
            Response::ShuttingDown,
            Response::Busy,
            Response::QuotaExceeded,
            Response::BadRequest("nope".into()),
            Response::ServerError("boom".into()),
        ];
        for resp in cases {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn truncated_requests_error_not_panic() {
        for req in sample_requests() {
            let bytes = encode_request(&req);
            for len in 0..bytes.len() {
                // The one legal truncation: a Metrics frame minus its
                // format byte is a valid v1 (JSON-format) request.
                if matches!(req.body, RequestBody::Metrics(_)) && len == bytes.len() - 1 {
                    assert_eq!(
                        decode_request(&bytes[..len]).unwrap().body,
                        RequestBody::Metrics(MetricsFormat::Json)
                    );
                    continue;
                }
                assert!(
                    decode_request(&bytes[..len]).is_err(),
                    "prefix of {len} bytes decoded"
                );
            }
        }
    }

    #[test]
    fn metrics_format_bounds_and_back_compat() {
        // Unknown format byte errors.
        let mut bytes = encode_request(&Request {
            tenant: String::new(),
            body: RequestBody::Metrics(MetricsFormat::Json),
        });
        *bytes.last_mut().unwrap() = 9;
        assert!(decode_request(&bytes).is_err());
        // A v1 frame (no format byte at all) decodes as JSON.
        bytes.pop();
        assert_eq!(
            decode_request(&bytes).unwrap().body,
            RequestBody::Metrics(MetricsFormat::Json)
        );
    }

    #[test]
    fn trace_headers_round_trip_and_reject_garbage() {
        let buf = encode_trace_header(0xdead_beef_cafe_f00d_0123_4567_89ab_cdef, 42);
        assert!(is_trace_header(&buf));
        assert_eq!(
            decode_trace_header(&buf).unwrap(),
            (0xdead_beef_cafe_f00d_0123_4567_89ab_cdef, 42)
        );
        // Request frames are not headers.
        for req in sample_requests() {
            let bytes = encode_request(&req);
            assert!(!is_trace_header(&bytes));
            assert!(decode_trace_header(&bytes).is_err());
        }
        // Zero trace id, truncation, trailing bytes: all typed errors.
        assert!(decode_trace_header(&encode_trace_header(0, 1)).is_err());
        for len in 0..buf.len() {
            assert!(decode_trace_header(&buf[..len]).is_err());
        }
        let mut long = buf.clone();
        long.push(0);
        assert!(decode_trace_header(&long).is_err());
    }

    #[test]
    fn corrupt_bytes_error_not_panic() {
        let bytes = encode_request(&sample_requests()[1]);
        for i in 0..bytes.len() {
            for evil in [0x00, 0x7F, 0xFF] {
                let mut b = bytes.clone();
                b[i] = evil;
                let _ = decode_request(&b); // must not panic
                let _ = decode_response(&b);
            }
        }
    }

    #[test]
    fn bounds_are_enforced() {
        // Oversize tenant.
        let mut req = sample_requests()[0].clone();
        req.tenant = "t".repeat(MAX_TENANT + 1);
        assert!(decode_request(&encode_request(&req)).is_err());
        // Mismatched times length.
        let bad = Request {
            tenant: String::new(),
            body: RequestBody::Solve(SolveSpec {
                p: 2,
                q: 2,
                times: vec![1.0; 3],
            }),
        };
        assert!(decode_request(&encode_request(&bad)).is_err());
        // nb out of bounds.
        let bad = Request {
            tenant: String::new(),
            body: RequestBody::Plan(PlanSpec {
                solve: SolveSpec {
                    p: 1,
                    q: 1,
                    times: vec![1.0],
                },
                kernel: Kernel::Mm,
                nb: MAX_NB + 1,
            }),
        };
        assert!(decode_request(&encode_request(&bad)).is_err());
    }
}
