//! End-to-end robustness tests for the TCP front end: many concurrent
//! clients mixing well-formed requests with hostile traffic (malformed
//! payloads, truncated frames, oversize length prefixes), plus the
//! deterministic control paths — Busy shedding, quota denial, and both
//! shutdown routes. The server must never panic: a panic in any
//! server-side thread would abort `join` on the handle and fail the
//! test.
//!
//! These tests avoid asserting on deltas of the process-global metrics
//! registry (several servers run concurrently in this binary); the
//! accounting invariants are covered by the service unit tests, the
//! coalesce test, and the harness oracle.

use hetgrid_serve::proto::{
    Kernel, MetricsFormat, PlanSpec, Request, RequestBody, Response, SolveSpec,
};
use hetgrid_serve::{spawn, Client, QuotaConfig, ServiceConfig};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn plan_request(tenant: &str, seed: usize) -> Request {
    Request {
        tenant: tenant.into(),
        body: RequestBody::Plan(PlanSpec {
            solve: SolveSpec {
                p: 2,
                q: 2,
                times: vec![1.0 + seed as f64, 2.0, 3.0, 5.0],
            },
            kernel: Kernel::Lu,
            nb: 8,
        }),
    }
}

fn meta_request(body: RequestBody) -> Request {
    Request {
        tenant: "test".into(),
        body,
    }
}

#[test]
fn concurrent_clients_with_hostile_traffic_never_panic_the_server() {
    const CLIENTS: usize = 12; // >= 8 per the acceptance criteria

    let handle = spawn("127.0.0.1:0", ServiceConfig::default()).expect("bind");
    let addr = handle.addr();

    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for c in 0..CLIENTS {
            joins.push(s.spawn(move || match c % 4 {
                // Well-behaved clients: several requests on one stream.
                0 => {
                    let mut client = Client::connect(addr).expect("connect");
                    for r in 0..6 {
                        let resp = client
                            .request(&plan_request("good", r % 3))
                            .expect("request");
                        assert!(
                            matches!(resp, Response::Plan(_)),
                            "expected Plan, got {resp:?}"
                        );
                    }
                }
                // Malformed payloads inside well-formed frames: the
                // server answers BadRequest and the connection lives.
                1 => {
                    let mut client = Client::connect(addr).expect("connect");
                    for garbage in [
                        &b""[..],                         // empty payload
                        &b"xx"[..],                       // wrong magic
                        &b"hg\x01\x09"[..],               // unknown request kind
                        &b"hg\x63\x01"[..],               // unsupported version
                        &b"hg\x01\x01\xff\xff"[..],       // tenant length overruns
                        &[b'h', b'g', 1, 1, 0, 0, 7][..], // truncated solve body
                    ] {
                        let frame = client.request_raw(garbage).expect("response frame");
                        let resp = hetgrid_serve::proto::decode_response(&frame).expect("decodes");
                        assert!(
                            matches!(resp, Response::BadRequest(_)),
                            "expected BadRequest for {garbage:?}, got {resp:?}"
                        );
                    }
                    // The same connection still serves valid requests.
                    let resp = client
                        .request(&plan_request("recovered", 0))
                        .expect("request");
                    assert!(matches!(resp, Response::Plan(_)));
                }
                // Oversize length prefix: the server must refuse to
                // allocate and drop the connection, nothing worse.
                2 => {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(5)))
                        .unwrap();
                    stream.write_all(&u32::MAX.to_be_bytes()).expect("write");
                    // Connection is dropped: read sees EOF or a reset.
                    let mut buf = [0u8; 16];
                    let _ = std::io::Read::read(&mut stream, &mut buf);
                }
                // Truncated frame: promise 64 bytes, send 7, hang up.
                _ => {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream.write_all(&64u32.to_be_bytes()).expect("write");
                    stream.write_all(b"partial").expect("write");
                    drop(stream); // server's read_full sees Closed
                }
            }));
        }
        for j in joins {
            j.join().expect("client thread");
        }
    });

    // The server survived the abuse: it still answers cleanly.
    let resp = hetgrid_serve::submit(addr, &plan_request("after", 1)).expect("submit");
    assert!(matches!(resp, Response::Plan(_)));

    // Local shutdown: joins the accept thread and every connection
    // thread; a panic in any of them propagates here.
    handle.shutdown();
}

#[test]
fn zero_queue_limit_sheds_every_data_request_with_busy() {
    let handle = spawn(
        "127.0.0.1:0",
        ServiceConfig {
            queue_limit: 0,
            ..ServiceConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();

    let mut client = Client::connect(addr).expect("connect");
    for r in 0..3 {
        let resp = client
            .request(&plan_request("shed-me", r))
            .expect("request");
        assert_eq!(resp, Response::Busy, "queue_limit=0 must shed");
    }
    // Meta endpoints bypass admission and still work while shedding.
    let resp = client
        .request(&meta_request(RequestBody::Metrics(MetricsFormat::Json)))
        .expect("request");
    assert!(matches!(resp, Response::Metrics(_)));
    // Even the Busy responses above were attributable: each carried an
    // echoed trace header.
    assert!(client.last_trace_id().is_some());

    handle.shutdown();
}

#[test]
fn every_admitted_request_carries_a_unique_trace_id() {
    let handle = spawn("127.0.0.1:0", ServiceConfig::default()).expect("bind");
    let addr = handle.addr();

    let mut seen = std::collections::HashSet::new();
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for c in 0..4 {
            joins.push(s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut ids = Vec::new();
                for r in 0..8 {
                    // Mix statuses: even some hostile traffic between
                    // real requests must not confuse attribution.
                    if r % 4 == 3 {
                        let frame = client.request_raw(b"xx").expect("response frame");
                        assert!(!hetgrid_serve::proto::is_trace_header(&frame));
                    }
                    let resp = client
                        .request(&plan_request("traced", c * 8 + r))
                        .expect("request");
                    assert!(matches!(resp, Response::Plan(_)));
                    ids.push(client.last_trace_id().expect("echoed trace id"));
                }
                ids
            }));
        }
        for j in joins {
            for id in j.join().expect("client thread") {
                assert_ne!(id, 0);
                assert!(seen.insert(id), "trace id {id:#x} reused across requests");
            }
        }
    });
    handle.shutdown();
}

#[test]
fn exhausted_token_bucket_denies_the_tenant_but_not_others() {
    let handle = spawn(
        "127.0.0.1:0",
        ServiceConfig {
            quota: QuotaConfig {
                rate_per_sec: 1e-9, // effectively never refills
                burst: 1.0,
            },
            ..ServiceConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();

    let mut client = Client::connect(addr).expect("connect");
    let first = client
        .request(&plan_request("tenant-a", 0))
        .expect("request");
    assert!(matches!(first, Response::Plan(_)), "burst of 1 admits once");
    let second = client
        .request(&plan_request("tenant-a", 1))
        .expect("request");
    assert_eq!(second, Response::QuotaExceeded, "bucket is empty");

    // Buckets are per tenant: a different tenant still gets through.
    let other = client
        .request(&plan_request("tenant-b", 0))
        .expect("request");
    assert!(matches!(other, Response::Plan(_)));

    handle.shutdown();
}

#[test]
fn remote_shutdown_request_drains_the_server() {
    let handle = spawn("127.0.0.1:0", ServiceConfig::default()).expect("bind");
    let addr = handle.addr();

    let resp = hetgrid_serve::submit(addr, &meta_request(RequestBody::Shutdown)).expect("submit");
    assert_eq!(resp, Response::ShuttingDown);

    // The accept loop notices and exits; join returns instead of
    // blocking forever, and no thread panicked.
    handle.join();

    // Data requests after the drain fail to connect or to converse —
    // either way, no response arrives.
    assert!(hetgrid_serve::submit(addr, &plan_request("late", 0)).is_err());
}
