//! Concurrency test for request coalescing: many client threads
//! submitting a mix of duplicate and distinct requests must observe
//!
//! * exactly one solver invocation per *distinct* fingerprint, no
//!   matter how the threads interleave (in-flight duplicates wait on
//!   the leader instead of solving again);
//! * byte-identical response frames for duplicate requests;
//! * the accounting invariants `hits + misses == admitted` and
//!   `solves == misses`.
//!
//! Drives [`hetgrid_serve::Service`] in-process: the coalescing window
//! is widest when requests arrive faster than a solve completes, which
//! a socket would only blur. The metrics registry is process-global,
//! so this binary holds all Service-driving tests in one `#[test]`
//! body rather than racing several.

use hetgrid_serve::proto::{encode_request, Kernel, PlanSpec, Request, RequestBody, SolveSpec};
use hetgrid_serve::{Service, ServiceConfig};
use std::sync::Arc;

fn plan_request(tenant: &str, seed: usize) -> Request {
    // Distinct seeds give distinct cycle-times, hence distinct
    // fingerprints; equal seeds are exact duplicates.
    let times = vec![1.0 + seed as f64 * 0.125, 2.0, 3.0, 5.0 + (seed % 3) as f64];
    Request {
        tenant: tenant.into(),
        body: RequestBody::Plan(PlanSpec {
            solve: SolveSpec { p: 2, q: 2, times },
            kernel: Kernel::Lu,
            nb: 8,
        }),
    }
}

#[test]
fn duplicates_coalesce_to_one_solve_with_identical_bytes() {
    const THREADS: usize = 16;
    const REPEATS: usize = 4; // requests per thread
    const DISTINCT: usize = 5; // distinct fingerprints across all threads

    let svc = Arc::new(Service::new(ServiceConfig {
        queue_limit: THREADS * REPEATS + 1, // no shedding in this test
        ..ServiceConfig::default()
    }));
    let before = hetgrid_obs::metrics().snapshot();

    // Every thread hammers all DISTINCT specs REPEATS times, so each
    // fingerprint is requested THREADS * REPEATS times concurrently.
    let responses: Vec<Vec<(usize, Arc<Vec<u8>>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let svc = Arc::clone(&svc);
                s.spawn(move || {
                    let mut got = Vec::new();
                    for r in 0..REPEATS {
                        for seed in 0..DISTINCT {
                            let req = plan_request(&format!("tenant-{t}"), seed);
                            let frame = encode_request(&req);
                            got.push((seed, svc.handle(&frame)));
                            // Interleave differently per thread.
                            if (t + r) % 3 == 0 {
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let delta = hetgrid_obs::metrics().snapshot().delta(&before);
    let total = (THREADS * REPEATS * DISTINCT) as u64;

    // Exactly one solver invocation per distinct fingerprint. This is
    // the coalescing guarantee: with 16 threads racing 5 specs, a
    // naive cache would have solved each spec up to 16 times.
    assert_eq!(
        delta.counter("serve.solver.invocations"),
        DISTINCT as u64,
        "one solve per distinct fingerprint"
    );
    assert_eq!(delta.counter("serve.cache.misses"), DISTINCT as u64);
    assert_eq!(delta.counter("serve.requests.admitted"), total);
    assert_eq!(
        delta.counter("serve.cache.hits") + delta.counter("serve.cache.misses"),
        delta.counter("serve.requests.admitted"),
        "every admitted request is either a hit or a miss"
    );
    assert_eq!(delta.counter("serve.shed"), 0);

    // Duplicate requests got byte-identical responses.
    let mut canonical: Vec<Option<Arc<Vec<u8>>>> = vec![None; DISTINCT];
    for (seed, bytes) in responses.into_iter().flatten() {
        match &canonical[seed] {
            None => canonical[seed] = Some(bytes),
            Some(expect) => assert_eq!(
                **expect, *bytes,
                "duplicate request for seed {seed} produced different bytes"
            ),
        }
    }
    // And distinct requests got distinct responses (sanity check that
    // the cache is not conflating fingerprints).
    for a in 0..DISTINCT {
        for b in (a + 1)..DISTINCT {
            assert_ne!(
                canonical[a].as_deref(),
                canonical[b].as_deref(),
                "seeds {a} and {b} should differ"
            );
        }
    }
}
