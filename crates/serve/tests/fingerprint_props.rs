//! Property tests for the plan-cache fingerprint, pinning the cache's
//! correctness contract:
//!
//! * identical request bodies (up to `f64` bit pattern) always produce
//!   identical keys and fingerprints — a guaranteed hit;
//! * perturbing any single field — one cycle-time entry, the grid
//!   shape, the kernel, or the block count — produces a different key
//!   — a guaranteed miss;
//! * keys and fingerprints are pure functions of the body bytes: no
//!   `HashMap` iteration order, pointer, or run-local state leaks in
//!   (checked by computing through an encode/decode round trip, which
//!   rebuilds every collection from scratch).

use hetgrid_serve::proto::{
    decode_request, encode_request, Kernel, PlanSpec, Request, RequestBody, SolveSpec,
};
use hetgrid_serve::{cache_key, fingerprint};
use proptest::prelude::*;

fn kernel_strategy() -> impl Strategy<Value = Kernel> {
    (0u8..4).prop_map(|b| Kernel::from_u8(b).unwrap())
}

fn body_strategy() -> impl Strategy<Value = RequestBody> {
    (1usize..4, 1usize..4, kernel_strategy(), 1usize..12).prop_flat_map(|(p, q, kernel, nb)| {
        prop::collection::vec(0.05f64..8.0, p * q).prop_map(move |times| {
            RequestBody::Plan(PlanSpec {
                solve: SolveSpec { p, q, times },
                kernel,
                nb,
            })
        })
    })
}

/// The body rebuilt from its own wire form: every Vec and String is a
/// fresh allocation, so any address- or order-dependence in the key
/// computation would show up as a key difference.
fn rebuilt(body: &RequestBody) -> RequestBody {
    let req = Request {
        tenant: "rebuild".into(),
        body: body.clone(),
    };
    decode_request(&encode_request(&req))
        .expect("round trip")
        .body
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn identical_bodies_always_collide(body in body_strategy()) {
        let a = cache_key(&body).unwrap();
        let b = cache_key(&rebuilt(&body)).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn single_time_perturbation_always_misses(
        body in body_strategy(),
        idx in 0usize..16,
        bump_idx in 0usize..3
    ) {
        let bump = [1.0e-15, 1.0e-9, 0.5][bump_idx];
        let base = cache_key(&body).unwrap();
        let RequestBody::Plan(mut plan) = body else { unreachable!() };
        let i = idx % plan.solve.times.len();
        plan.solve.times[i] += bump * plan.solve.times[i].abs().max(1.0);
        let perturbed = RequestBody::Plan(plan);
        prop_assert_ne!(cache_key(&perturbed).unwrap(), base);
    }

    #[test]
    fn nb_kernel_kind_and_shape_perturbations_always_miss(body in body_strategy()) {
        let base = cache_key(&body).unwrap();
        let base_fp = fingerprint(&base);
        let RequestBody::Plan(plan) = &body else { unreachable!() };

        // Block count.
        let mut v = plan.clone();
        v.nb += 1;
        prop_assert_ne!(cache_key(&RequestBody::Plan(v)).unwrap(), base.clone());

        // Kernel.
        let mut v = plan.clone();
        v.kernel = Kernel::from_u8((v.kernel.as_u8() + 1) % 4).unwrap();
        prop_assert_ne!(cache_key(&RequestBody::Plan(v)).unwrap(), base.clone());

        // Request kind (same spec, different endpoint).
        let sim = cache_key(&RequestBody::Simulate(plan.clone())).unwrap();
        prop_assert_ne!(sim, base.clone());

        // Grid shape: transposing p x q keeps the times vector length
        // but must change the key whenever the shape actually differs.
        if plan.solve.p != plan.solve.q {
            let mut v = plan.clone();
            std::mem::swap(&mut v.solve.p, &mut v.solve.q);
            let transposed = cache_key(&RequestBody::Plan(v)).unwrap();
            prop_assert_ne!(transposed.clone(), base.clone());
            prop_assert_ne!(fingerprint(&transposed), base_fp);
        }
    }

    #[test]
    fn negative_zero_and_nan_bit_patterns_are_distinct(body in body_strategy()) {
        // The key is bit-exact: 0.0 vs -0.0 and different NaN payloads
        // are different keys. (Such values are rejected upstream by
        // validation; the *fingerprint* must still distinguish them so
        // the cache layer never has to reason about float semantics.)
        let RequestBody::Plan(plan) = &body else { unreachable!() };
        let mut zero = plan.clone();
        zero.solve.times[0] = 0.0;
        let mut negzero = plan.clone();
        negzero.solve.times[0] = -0.0;
        prop_assert_ne!(
            cache_key(&RequestBody::Plan(zero)).unwrap(),
            cache_key(&RequestBody::Plan(negzero)).unwrap()
        );
    }
}

/// Cross-run stability: the fingerprint of a pinned request must never
/// change across builds or processes (it indexes any future persistent
/// cache, and a silent change would orphan every entry). If this test
/// fails, the canonical key layout changed — bump the protocol
/// version and update the pinned value deliberately.
#[test]
fn pinned_fingerprint_is_stable_across_runs() {
    let body = RequestBody::Plan(PlanSpec {
        solve: SolveSpec {
            p: 2,
            q: 2,
            times: vec![1.0, 2.0, 3.0, 5.0],
        },
        kernel: Kernel::Lu,
        nb: 8,
    });
    let key = cache_key(&body).unwrap();
    let fp = fingerprint(&key);
    assert_eq!(
        format!("{fp}"),
        "461c7bb0a486e0a94014ecbce3b7322d",
        "canonical key layout changed; see fingerprint.rs normalization rules"
    );
}
