//! Online per-processor cycle-time estimation.
//!
//! Each processor's cycle-time is tracked with an exponentially weighted
//! moving average (EWMA) parameterized by a *half-life*: after
//! `half_life` observations, the weight of an old sample has decayed to
//! one half. Short half-lives react quickly but chase transient spikes;
//! long half-lives smooth noise but delay detection — the knob the
//! closed-loop experiments sweep.

/// EWMA cycle-time estimator, one state per physical processor id.
#[derive(Clone, Debug)]
pub struct EwmaEstimator {
    alpha: f64,
    half_life: f64,
    estimates: Vec<Option<f64>>,
}

impl EwmaEstimator {
    /// A fresh estimator for `n_procs` processors with the given
    /// half-life (in observations). Until a processor is observed its
    /// estimate is `None`.
    ///
    /// # Panics
    /// Panics if `n_procs == 0` or `half_life` is not positive.
    pub fn new(n_procs: usize, half_life: f64) -> Self {
        assert!(n_procs > 0, "EwmaEstimator: no processors");
        assert!(
            half_life > 0.0 && half_life.is_finite(),
            "EwmaEstimator: half-life must be positive"
        );
        EwmaEstimator {
            alpha: 1.0 - 0.5f64.powf(1.0 / half_life),
            half_life,
            estimates: vec![None; n_procs],
        }
    }

    /// An estimator pre-loaded with known initial cycle-times (e.g. the
    /// times the initial plan was solved from), so early drift detection
    /// compares against a meaningful baseline.
    pub fn seeded(initial: &[f64], half_life: f64) -> Self {
        let mut e = Self::new(initial.len(), half_life);
        e.estimates = initial.iter().map(|&t| Some(t)).collect();
        e
    }

    /// The smoothing factor `alpha = 1 - 0.5^(1/half_life)`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The configured half-life, in observations.
    pub fn half_life(&self) -> f64 {
        self.half_life
    }

    /// Number of processors tracked.
    pub fn len(&self) -> usize {
        self.estimates.len()
    }

    /// `true` if the estimator tracks no processors (never: construction
    /// rejects that), provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty()
    }

    /// Folds one observation for processor `proc` into its estimate.
    ///
    /// # Panics
    /// Panics on an out-of-range `proc` or a non-positive observation.
    pub fn observe(&mut self, proc: usize, value: f64) {
        assert!(
            value > 0.0 && value.is_finite(),
            "EwmaEstimator: observations must be positive"
        );
        let slot = &mut self.estimates[proc];
        *slot = Some(match *slot {
            Some(prev) => prev + self.alpha * (value - prev),
            None => value,
        });
    }

    /// Folds a full per-processor observation vector (indexed by
    /// processor id); `None` entries leave that processor's estimate
    /// unchanged.
    ///
    /// # Panics
    /// Panics if `values` has the wrong length.
    pub fn observe_all(&mut self, values: &[Option<f64>]) {
        assert_eq!(
            values.len(),
            self.estimates.len(),
            "EwmaEstimator: observation length mismatch"
        );
        for (proc, value) in values.iter().enumerate() {
            if let Some(v) = *value {
                self.observe(proc, v);
            }
        }
    }

    /// Current estimate for processor `proc`, if it was ever observed.
    pub fn estimate(&self, proc: usize) -> Option<f64> {
        self.estimates[proc]
    }

    /// All current estimates, substituting `fallback[k]` for processors
    /// never observed — the form the decision policy consumes.
    ///
    /// # Panics
    /// Panics if `fallback` has the wrong length.
    pub fn estimates_or(&self, fallback: &[f64]) -> Vec<f64> {
        assert_eq!(
            fallback.len(),
            self.estimates.len(),
            "EwmaEstimator: fallback length mismatch"
        );
        self.estimates
            .iter()
            .zip(fallback)
            .map(|(est, &fb)| est.unwrap_or(fb))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_matches_half_life_semantics() {
        let hl = 3.0;
        let mut e = EwmaEstimator::seeded(&[1.0], hl);
        // After exactly `half_life` observations of a new constant value,
        // the remaining gap to it has halved.
        for _ in 0..3 {
            e.observe(0, 2.0);
        }
        let est = e.estimate(0).unwrap();
        assert!((est - 1.5).abs() < 1e-12, "est = {}", est);
    }

    #[test]
    fn first_observation_initializes_directly() {
        let mut e = EwmaEstimator::new(2, 5.0);
        assert_eq!(e.estimate(0), None);
        e.observe(0, 3.0);
        assert_eq!(e.estimate(0), Some(3.0));
        assert_eq!(e.estimate(1), None);
    }

    #[test]
    fn observe_all_skips_missing() {
        let mut e = EwmaEstimator::seeded(&[1.0, 2.0], 1.0);
        e.observe_all(&[Some(5.0), None]);
        assert!(e.estimate(0).unwrap() > 1.0);
        assert_eq!(e.estimate(1), Some(2.0));
    }

    #[test]
    fn estimates_or_uses_fallback_only_when_unobserved() {
        let mut e = EwmaEstimator::new(3, 2.0);
        e.observe(1, 4.0);
        assert_eq!(e.estimates_or(&[9.0, 9.0, 9.0]), vec![9.0, 4.0, 9.0]);
    }

    #[test]
    fn converges_to_stationary_value() {
        let mut e = EwmaEstimator::seeded(&[10.0], 4.0);
        for _ in 0..200 {
            e.observe(0, 2.5);
        }
        assert!((e.estimate(0).unwrap() - 2.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_observation() {
        EwmaEstimator::new(1, 1.0).observe(0, 0.0);
    }
}
