//! # hetgrid-adapt
//!
//! Closed-loop adaptive rebalancing for heterogeneous 2D grids.
//!
//! The paper's machine model (Section 2.2) is a *non-dedicated* network
//! of workstations: the cycle-times the one-shot load balancer optimized
//! for drift as other users' jobs come and go. This crate closes the
//! loop around the static solvers:
//!
//! ```text
//!   observe ──► estimate ──► decide ──► redistribute
//!   (telemetry)  (EWMA)   (cost/benefit)  (block moves)
//! ```
//!
//! * [`telemetry`] — per-iteration observed cycle-times, from real
//!   executor reports ([`hetgrid_exec::ExecReport::observed_times`]) or
//!   noiseless simulation;
//! * [`estimator`] — per-processor EWMA cycle-time estimates with a
//!   configurable half-life;
//! * [`detector`] — scale-free drift detection with hysteresis
//!   (threshold, patience, cooldown), immune to uniform slowdowns;
//! * [`plan`] — the active plan and the analytic per-iteration cost
//!   used to price staleness;
//! * [`policy`] — the amortized decision: re-solve with the
//!   [`hetgrid_core`] solvers, price the move bill via
//!   [`hetgrid_dist::redistribution`], switch only when the projected
//!   savings over the remaining iterations beat the bill by a safety
//!   factor;
//! * [`actuator`] — executable block-move plans against a live
//!   [`hetgrid_exec::DistributedMatrix`], applicable in bounded batches;
//! * [`controller`] — the loop itself;
//! * [`simloop`] — deterministic static-vs-adaptive experiments over
//!   [`hetgrid_sim::DriftProfile`]s.

#![warn(missing_docs)]
// Grid code indexes `owned[i][j]`-style tables with `for i in 0..p`
// loops; the iterator rewrites clippy suggests would obscure the 2D-grid
// idiom the paper's algorithms are written in.
#![allow(clippy::needless_range_loop)]

pub mod actuator;
pub mod controller;
pub mod detector;
pub mod estimator;
pub mod plan;
pub mod policy;
pub mod simloop;
pub mod telemetry;

pub use actuator::{redistribute, Move, RedistributionPlan, TransferSummary};
pub use controller::{Action, Controller, ControllerConfig};
pub use detector::{DriftDetector, DriftDetectorConfig};
pub use estimator::EwmaEstimator;
pub use plan::ActivePlan;
pub use policy::{Decision, PolicyConfig};
pub use simloop::{run_scenario, IterOutcome, Outcome, Scenario};
pub use telemetry::{IterationSample, TelemetryLog};
