//! Structured telemetry from kernel iterations.
//!
//! The executor already measures per-processor busy time and weighted
//! work per run ([`hetgrid_exec::ExecReport`]); telemetry turns that
//! aggregate into the stream the adaptive loop consumes: one
//! [`IterationSample`] per kernel iteration, carrying the *observed
//! per-unit cycle-time* of every grid position. Samples are keyed by
//! grid position because that is what the executor measures; the
//! controller maps positions back to physical processor ids through the
//! active arrangement.

use hetgrid_core::Arrangement;
use hetgrid_exec::ExecReport;

/// One iteration's observation: the per-unit cycle-time seen at every
/// grid position (`None` where a processor performed no work).
#[derive(Clone, Debug, PartialEq)]
pub struct IterationSample {
    /// Iteration index the sample was taken at.
    pub iter: usize,
    /// `observed[i][j]` = busy time per work unit of the processor at
    /// grid position `(i, j)`, if it did any work.
    pub observed: Vec<Vec<Option<f64>>>,
}

impl IterationSample {
    /// Builds a sample from an executor report (real measurements).
    pub fn from_exec_report(iter: usize, report: &ExecReport) -> Self {
        IterationSample {
            iter,
            observed: report.observed_times(),
        }
    }

    /// Builds a noiseless sample from known true cycle-times, indexed by
    /// *processor id* — the simulator-side perfect-telemetry source used
    /// by the deterministic closed-loop experiments.
    ///
    /// # Panics
    /// Panics if `times_by_proc` does not cover the arrangement.
    pub fn from_true_times(iter: usize, arr: &Arrangement, times_by_proc: &[f64]) -> Self {
        assert_eq!(
            times_by_proc.len(),
            arr.len(),
            "IterationSample: times/arrangement size mismatch"
        );
        let observed = (0..arr.p())
            .map(|i| {
                (0..arr.q())
                    .map(|j| Some(times_by_proc[arr.proc(i, j)]))
                    .collect()
            })
            .collect();
        IterationSample { iter, observed }
    }

    /// Re-keys the sample from grid positions to processor ids using the
    /// arrangement that was active when the sample was taken.
    ///
    /// # Panics
    /// Panics if the sample's shape does not match the arrangement.
    pub fn by_proc(&self, arr: &Arrangement) -> Vec<Option<f64>> {
        assert_eq!(
            self.observed.len(),
            arr.p(),
            "IterationSample: row count mismatch"
        );
        let mut out = vec![None; arr.len()];
        for (i, row) in self.observed.iter().enumerate() {
            assert_eq!(row.len(), arr.q(), "IterationSample: column count mismatch");
            for (j, &obs) in row.iter().enumerate() {
                out[arr.proc(i, j)] = obs;
            }
        }
        out
    }
}

/// An append-only log of iteration samples — the "observe" leg of the
/// control loop, kept so decisions can be audited after a run.
#[derive(Clone, Debug, Default)]
pub struct TelemetryLog {
    samples: Vec<IterationSample>,
}

impl TelemetryLog {
    /// An empty log.
    pub fn new() -> Self {
        TelemetryLog::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: IterationSample) {
        self.samples.push(sample);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<&IterationSample> {
        self.samples.last()
    }

    /// Iterates over the recorded samples in order.
    pub fn iter(&self) -> impl Iterator<Item = &IterationSample> {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn true_times_round_trip_through_proc_mapping() {
        // A permuted arrangement: sorted_row_major reorders processors.
        let times = vec![5.0, 1.0, 3.0, 2.0];
        let arr = hetgrid_core::arrangement::sorted_row_major(&times, 2, 2);
        let sample = IterationSample::from_true_times(7, &arr, &times);
        let by_proc = sample.by_proc(&arr);
        for (k, &t) in times.iter().enumerate() {
            assert_eq!(by_proc[k], Some(t), "proc {}", k);
        }
    }

    #[test]
    fn exec_report_sample_preserves_missing_work() {
        let report = ExecReport {
            wall_seconds: 1.0,
            busy_seconds: vec![vec![2.0, 0.0]],
            work_units: vec![vec![4, 0]],
            messages_sent: vec![vec![0, 0]],
        };
        let sample = IterationSample::from_exec_report(0, &report);
        assert_eq!(sample.observed, vec![vec![Some(0.5), None]]);
    }

    #[test]
    fn log_accumulates_in_order() {
        let mut log = TelemetryLog::new();
        assert!(log.is_empty());
        for iter in 0..3 {
            log.push(IterationSample {
                iter,
                observed: vec![vec![Some(1.0)]],
            });
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.last().unwrap().iter, 2);
        let iters: Vec<usize> = log.iter().map(|s| s.iter).collect();
        assert_eq!(iters, vec![0, 1, 2]);
    }
}
