//! Drift detection with hysteresis.
//!
//! The detector compares the current cycle-time estimates against the
//! *reference* times the active plan was solved for. Both vectors are
//! normalized to mean 1.0 first, so a uniform slowdown of the whole pool
//! (which changes the makespan but not the optimal distribution) never
//! looks like drift — only changes in the *relative* speeds do.
//!
//! Hysteresis keeps the loop from thrashing: drift must persist above
//! the trigger threshold for `patience` consecutive iterations to be
//! confirmed, the streak only resets once the deviation falls below a
//! lower `release` level, and after a confirmation (whether or not the
//! policy then rebalanced) a `cooldown` suppresses re-evaluation.

/// Hysteresis parameters of the [`DriftDetector`].
#[derive(Clone, Copy, Debug)]
pub struct DriftDetectorConfig {
    /// Relative deviation at which an iteration counts toward drift
    /// (e.g. 0.2 = a processor is 20% off its planned relative speed).
    pub threshold: f64,
    /// Fraction of `threshold` below which the streak resets; deviations
    /// between `release * threshold` and `threshold` neither extend nor
    /// reset the streak.
    pub release: f64,
    /// Number of consecutive above-threshold iterations required to
    /// confirm drift.
    pub patience: usize,
    /// Number of iterations after a confirmation during which no new
    /// drift is reported.
    pub cooldown: usize,
}

impl Default for DriftDetectorConfig {
    fn default() -> Self {
        DriftDetectorConfig {
            threshold: 0.2,
            release: 0.5,
            patience: 3,
            cooldown: 5,
        }
    }
}

/// Sustained-drift detector over normalized cycle-time vectors.
#[derive(Clone, Debug)]
pub struct DriftDetector {
    cfg: DriftDetectorConfig,
    streak: usize,
    cooldown_left: usize,
    last_deviation: f64,
}

impl DriftDetector {
    /// A detector in the quiescent state.
    ///
    /// # Panics
    /// Panics on a non-positive threshold, a release factor outside
    /// `[0, 1]`, or zero patience.
    pub fn new(cfg: DriftDetectorConfig) -> Self {
        assert!(
            cfg.threshold > 0.0 && cfg.threshold.is_finite(),
            "DriftDetector: threshold must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.release),
            "DriftDetector: release must lie in [0, 1]"
        );
        assert!(cfg.patience > 0, "DriftDetector: patience must be positive");
        DriftDetector {
            cfg,
            streak: 0,
            cooldown_left: 0,
            last_deviation: 0.0,
        }
    }

    /// Scale-free deviation between two cycle-time vectors: both are
    /// normalized to mean 1.0 and the maximum relative difference
    /// `|est - ref| / ref` over processors is returned.
    ///
    /// # Panics
    /// Panics on empty, mismatched, or non-positive inputs.
    pub fn relative_deviation(reference: &[f64], estimates: &[f64]) -> f64 {
        assert_eq!(
            reference.len(),
            estimates.len(),
            "DriftDetector: length mismatch"
        );
        assert!(!reference.is_empty(), "DriftDetector: empty input");
        let norm = |v: &[f64]| -> Vec<f64> {
            assert!(
                v.iter().all(|&t| t > 0.0 && t.is_finite()),
                "DriftDetector: cycle-times must be positive"
            );
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|&t| t / mean).collect()
        };
        let r = norm(reference);
        let e = norm(estimates);
        r.iter()
            .zip(&e)
            .map(|(&rk, &ek)| (ek - rk).abs() / rk)
            .fold(0.0, f64::max)
    }

    /// Feeds one iteration's estimates; returns `true` when sustained
    /// drift is confirmed this iteration.
    pub fn observe(&mut self, reference: &[f64], estimates: &[f64]) -> bool {
        let dev = Self::relative_deviation(reference, estimates);
        self.last_deviation = dev;
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            self.streak = 0;
            return false;
        }
        if dev >= self.cfg.threshold {
            self.streak += 1;
        } else if dev < self.cfg.threshold * self.cfg.release {
            self.streak = 0;
        }
        self.streak >= self.cfg.patience
    }

    /// Arms the post-confirmation cooldown and resets the streak. The
    /// controller calls this after every policy evaluation, whether or
    /// not it rebalanced, so a declined rebalance is not re-litigated
    /// every iteration.
    pub fn arm_cooldown(&mut self) {
        self.cooldown_left = self.cfg.cooldown;
        self.streak = 0;
    }

    /// Deviation computed by the most recent [`DriftDetector::observe`].
    pub fn last_deviation(&self) -> f64 {
        self.last_deviation
    }

    /// Current above-threshold streak length.
    pub fn streak(&self) -> usize {
        self.streak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(patience: usize, cooldown: usize) -> DriftDetector {
        DriftDetector::new(DriftDetectorConfig {
            threshold: 0.2,
            release: 0.5,
            patience,
            cooldown,
        })
    }

    #[test]
    fn uniform_slowdown_is_not_drift() {
        let reference = [1.0, 2.0, 3.0, 4.0];
        let doubled: Vec<f64> = reference.iter().map(|t| t * 2.0).collect();
        assert_eq!(DriftDetector::relative_deviation(&reference, &doubled), 0.0);
    }

    #[test]
    fn relative_change_is_drift() {
        let dev = DriftDetector::relative_deviation(&[1.0, 1.0], &[2.0, 1.0]);
        // Normalized estimates are [4/3, 2/3]: 33% deviation.
        assert!((dev - 1.0 / 3.0).abs() < 1e-12, "dev = {}", dev);
    }

    #[test]
    fn patience_delays_confirmation() {
        let mut d = detector(3, 0);
        let reference = [1.0, 1.0];
        let drifted = [3.0, 1.0];
        assert!(!d.observe(&reference, &drifted));
        assert!(!d.observe(&reference, &drifted));
        assert!(d.observe(&reference, &drifted));
    }

    #[test]
    fn release_band_freezes_but_does_not_reset_streak() {
        let mut d = detector(2, 0);
        let reference = [1.0, 1.0];
        let strong = [2.0, 1.0]; // dev 1/3, above threshold
        let weak = [1.3, 1.0]; // dev ~0.13, inside [release*thr, thr)
        let calm = [1.02, 1.0]; // dev ~0.01, below release
        assert!(!d.observe(&reference, &strong));
        assert!(!d.observe(&reference, &weak)); // streak frozen at 1
        assert!(d.observe(&reference, &strong)); // streak reaches 2
        d.arm_cooldown(); // streak back to 0
        assert!(!d.observe(&reference, &strong)); // streak 1 of 2
        assert!(!d.observe(&reference, &calm)); // below release: reset
        assert_eq!(d.streak(), 0);
    }

    #[test]
    fn cooldown_suppresses_redetection() {
        let mut d = detector(1, 3);
        let reference = [1.0, 1.0];
        let drifted = [3.0, 1.0];
        assert!(d.observe(&reference, &drifted));
        d.arm_cooldown();
        for _ in 0..3 {
            assert!(!d.observe(&reference, &drifted));
        }
        // Cooldown elapsed: the persisting drift is re-confirmed.
        assert!(d.observe(&reference, &drifted));
    }

    #[test]
    fn quiescent_on_matching_estimates() {
        let mut d = detector(1, 0);
        let reference = [1.0, 2.0, 4.0];
        for _ in 0..10 {
            assert!(!d.observe(&reference, &reference));
        }
        assert_eq!(d.last_deviation(), 0.0);
    }
}
