//! The amortized cost/benefit rebalancing decision.
//!
//! When drift is confirmed, the policy re-solves the load-balancing
//! problem for the fresh cycle-time estimates and compares two futures
//! over the remaining iterations:
//!
//! * keep the stale plan and pay `stale_cost` per iteration, or
//! * pay the one-off redistribution bill (blocks moved times the
//!   per-block move cost) and then pay `fresh_cost` per iteration.
//!
//! Rebalancing wins when the projected savings exceed the bill by a
//! safety factor — the factor absorbs model error in both the analytic
//! cost and the estimates, biasing the loop toward stability.

use crate::plan::ActivePlan;
use hetgrid_core::Method;
use hetgrid_dist::redistribution;

/// Parameters of the rebalancing decision.
#[derive(Clone, Copy, Debug)]
pub struct PolicyConfig {
    /// Solver used for the re-solve.
    pub method: Method,
    /// Required ratio of projected savings to redistribution cost
    /// (must be >= 1 to make sense; higher = more conservative).
    pub safety_factor: f64,
    /// Cost of moving one block between processors, in the same units as
    /// one reference block update (cycle-time 1).
    pub block_move_cost: f64,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            method: Method::Heuristic,
            safety_factor: 1.5,
            block_move_cost: 1.0,
        }
    }
}

/// The priced outcome of one policy evaluation.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Per-iteration cost of keeping the current plan, under the fresh
    /// estimates.
    pub stale_cost: f64,
    /// Per-iteration cost of the re-solved candidate plan.
    pub fresh_cost: f64,
    /// Number of blocks the candidate distribution moves.
    pub blocks_moved: usize,
    /// Fraction of all blocks that move.
    pub moved_fraction: f64,
    /// One-off redistribution bill: `blocks_moved * block_move_cost`.
    pub redistribution_cost: f64,
    /// Iterations the decision amortizes over.
    pub remaining_iters: usize,
    /// `(stale_cost - fresh_cost) * remaining_iters`.
    pub projected_savings: f64,
    /// Whether the policy recommends switching plans.
    pub rebalance: bool,
}

/// Prices the current plan against a fresh re-solve under the estimated
/// cycle-times (indexed by processor id) and decides whether to switch.
///
/// Returns the decision together with the candidate plan, so a positive
/// decision can be installed without solving twice.
///
/// # Panics
/// Panics if `estimates` does not cover the grid or `cfg` is
/// non-sensical (negative costs, safety factor below 1).
pub fn evaluate(
    current: &ActivePlan,
    estimates: &[f64],
    nb: usize,
    remaining_iters: usize,
    cfg: &PolicyConfig,
) -> (Decision, ActivePlan) {
    assert!(
        cfg.safety_factor >= 1.0 && cfg.safety_factor.is_finite(),
        "PolicyConfig: safety factor must be at least 1"
    );
    assert!(
        cfg.block_move_cost >= 0.0 && cfg.block_move_cost.is_finite(),
        "PolicyConfig: block move cost must be non-negative"
    );
    let (p, q) = current.grid();
    let candidate = ActivePlan::solve(estimates, p, q, current.bp, current.bq, cfg.method);

    let stale_cost = current.per_iteration_cost(estimates, nb);
    let fresh_cost = candidate.per_iteration_cost(estimates, nb);
    let blocks_moved = redistribution::blocks_moved(&current.dist, &candidate.dist, nb);
    let moved_fraction = redistribution::moved_fraction(&current.dist, &candidate.dist, nb);
    let redistribution_cost = blocks_moved as f64 * cfg.block_move_cost;
    let projected_savings = (stale_cost - fresh_cost) * remaining_iters as f64;
    let rebalance = fresh_cost < stale_cost
        && blocks_moved > 0
        && projected_savings > redistribution_cost * cfg.safety_factor;

    (
        Decision {
            stale_cost,
            fresh_cost,
            blocks_moved,
            moved_fraction,
            redistribution_cost,
            remaining_iters,
            projected_savings,
            rebalance,
        },
        candidate,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const NB: usize = 16;

    fn plan(times: &[f64]) -> ActivePlan {
        ActivePlan::solve(times, 2, 2, 4, 4, Method::Heuristic)
    }

    #[test]
    fn strong_drift_with_many_iterations_rebalances() {
        let current = plan(&[1.0; 4]);
        let drifted = [6.0, 1.0, 1.0, 1.0];
        let (d, candidate) = evaluate(&current, &drifted, NB, 50, &PolicyConfig::default());
        assert!(d.rebalance, "decision: {:?}", d);
        assert!(d.fresh_cost < d.stale_cost);
        assert!(d.projected_savings > d.redistribution_cost);
        assert!(d.blocks_moved > 0);
        assert!(d.moved_fraction > 0.0 && d.moved_fraction <= 1.0);
        // The candidate starves the slow processor relative to the rest.
        let counts = hetgrid_dist::BlockDist::owned_counts(&candidate.dist, NB, NB);
        let arr = &candidate.solution.arrangement;
        let mut slow_count = 0;
        let mut max_count = 0;
        for i in 0..arr.p() {
            for j in 0..arr.q() {
                max_count = max_count.max(counts[i][j]);
                if arr.proc(i, j) == 0 {
                    slow_count = counts[i][j];
                }
            }
        }
        assert!(slow_count < max_count, "{} !< {}", slow_count, max_count);
    }

    #[test]
    fn no_remaining_iterations_never_rebalances() {
        let current = plan(&[1.0; 4]);
        let (d, _) = evaluate(
            &current,
            &[6.0, 1.0, 1.0, 1.0],
            NB,
            0,
            &PolicyConfig::default(),
        );
        assert!(!d.rebalance);
        assert_eq!(d.projected_savings, 0.0);
    }

    #[test]
    fn unchanged_times_never_rebalance() {
        let times = [1.0, 2.0, 3.0, 4.0];
        let current = plan(&times);
        let (d, _) = evaluate(&current, &times, NB, 1000, &PolicyConfig::default());
        assert!(!d.rebalance, "decision: {:?}", d);
        assert_eq!(d.blocks_moved, 0);
        assert_eq!(d.redistribution_cost, 0.0);
    }

    #[test]
    fn expensive_moves_suppress_marginal_rebalances() {
        let current = plan(&[1.0; 4]);
        let drifted = [6.0, 1.0, 1.0, 1.0];
        let cheap = PolicyConfig::default();
        let dear = PolicyConfig {
            block_move_cost: 1e9,
            ..cheap
        };
        let (d_cheap, _) = evaluate(&current, &drifted, NB, 50, &cheap);
        let (d_dear, _) = evaluate(&current, &drifted, NB, 50, &dear);
        assert!(d_cheap.rebalance);
        assert!(!d_dear.rebalance);
    }
}
