//! The closed-loop controller: observe → estimate → decide.
//!
//! The [`Controller`] owns the active plan and the loop state. Each
//! kernel iteration feeds it one [`IterationSample`]; it folds the
//! sample into the EWMA estimates, runs the drift detector against the
//! plan's reference times, and — only when drift is confirmed — invokes
//! the cost/benefit policy. A positive decision swaps the plan and hands
//! the caller the old distribution, so the caller can actuate the data
//! migration (see [`crate::actuator`]).

use crate::detector::{DriftDetector, DriftDetectorConfig};
use crate::estimator::EwmaEstimator;
use crate::plan::ActivePlan;
use crate::policy::{self, Decision, PolicyConfig};
use crate::telemetry::{IterationSample, TelemetryLog};
use hetgrid_dist::PanelDist;

/// All tuning knobs of the adaptive loop.
#[derive(Clone, Copy, Debug, Default)]
pub struct ControllerConfig {
    /// EWMA half-life of the cycle-time estimator, in iterations.
    /// `None` uses 3 iterations.
    pub half_life: Option<f64>,
    /// Drift-detector hysteresis parameters.
    pub detector: DriftDetectorConfig,
    /// Rebalancing decision parameters.
    pub policy: PolicyConfig,
}

impl ControllerConfig {
    fn half_life(&self) -> f64 {
        self.half_life.unwrap_or(3.0)
    }
}

/// What the controller did with one iteration's sample.
#[derive(Clone, Debug)]
pub enum Action {
    /// No confirmed drift; the plan stands.
    Continue,
    /// Drift was confirmed but the policy declined to rebalance (the
    /// decision explains why); the plan stands.
    Evaluated(Decision),
    /// The plan was swapped. `old_dist` is the distribution the live
    /// data still follows — actuate a redistribution from it to the
    /// controller's new [`Controller::dist`].
    Rebalanced {
        /// The priced decision that justified the swap.
        decision: Decision,
        /// The superseded distribution.
        old_dist: PanelDist,
    },
}

/// Closed-loop adaptive rebalancing controller.
#[derive(Clone, Debug)]
pub struct Controller {
    cfg: ControllerConfig,
    plan: ActivePlan,
    nb: usize,
    estimator: EwmaEstimator,
    detector: DriftDetector,
    log: TelemetryLog,
    rebalances: usize,
}

impl Controller {
    /// Solves the initial plan for `times` (indexed by processor id) on
    /// a `p x q` grid with `bp x bq` panels, for kernels over `nb x nb`
    /// block matrices, and seeds the estimator with the same times.
    pub fn new(
        times: &[f64],
        p: usize,
        q: usize,
        bp: usize,
        bq: usize,
        nb: usize,
        cfg: ControllerConfig,
    ) -> Self {
        let plan = ActivePlan::solve(times, p, q, bp, bq, cfg.policy.method);
        Controller {
            plan,
            nb,
            estimator: EwmaEstimator::seeded(times, cfg.half_life()),
            detector: DriftDetector::new(cfg.detector),
            log: TelemetryLog::new(),
            rebalances: 0,
            cfg,
        }
    }

    /// The plan currently in force.
    pub fn plan(&self) -> &ActivePlan {
        &self.plan
    }

    /// The distribution currently in force.
    pub fn dist(&self) -> &PanelDist {
        &self.plan.dist
    }

    /// Number of rebalances performed so far.
    pub fn rebalances(&self) -> usize {
        self.rebalances
    }

    /// Current cycle-time estimates by processor id (planned times where
    /// never observed).
    pub fn estimates(&self) -> Vec<f64> {
        self.estimator.estimates_or(&self.plan.planned_times())
    }

    /// Deviation seen by the detector at the last observation.
    pub fn last_deviation(&self) -> f64 {
        self.detector.last_deviation()
    }

    /// The telemetry recorded so far.
    pub fn telemetry(&self) -> &TelemetryLog {
        &self.log
    }

    /// Block-matrix order `nb` the controller prices iterations for.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Feeds one iteration's telemetry. `remaining_iters` is the number
    /// of kernel iterations still ahead — the amortization horizon of
    /// any rebalancing decision.
    pub fn observe(&mut self, sample: &IterationSample, remaining_iters: usize) -> Action {
        let by_proc = sample.by_proc(&self.plan.solution.arrangement);
        self.estimator.observe_all(&by_proc);
        self.log.push(sample.clone());

        let reference = self.plan.planned_times();
        let estimates = self.estimator.estimates_or(&reference);
        if !self.detector.observe(&reference, &estimates) {
            return Action::Continue;
        }
        // Drift confirmations and re-solve decisions are rare (at most
        // one per iteration, gated by detector hysteresis), so the obs
        // registry lookups here are off the per-sample hot path.
        hetgrid_obs::metrics()
            .counter("adapt.drift.detections")
            .inc();

        let (decision, candidate) = policy::evaluate(
            &self.plan,
            &estimates,
            self.nb,
            remaining_iters,
            &self.cfg.policy,
        );
        self.detector.arm_cooldown();
        if !decision.rebalance {
            hetgrid_obs::metrics()
                .counter("adapt.rebalances.declined")
                .inc();
            return Action::Evaluated(decision);
        }
        let m = hetgrid_obs::metrics();
        m.counter("adapt.rebalances.accepted").inc();
        m.counter("adapt.blocks.moved")
            .add(decision.blocks_moved as u64);
        let old = std::mem::replace(&mut self.plan, candidate);
        self.rebalances += 1;
        Action::Rebalanced {
            decision,
            old_dist: old.dist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(times: &[f64]) -> Controller {
        Controller::new(times, 2, 2, 4, 4, 16, ControllerConfig::default())
    }

    fn feed(c: &mut Controller, truth: &[f64], iters: usize, remaining: usize) -> Vec<Action> {
        (0..iters)
            .map(|k| {
                let sample =
                    IterationSample::from_true_times(k, &c.plan().solution.arrangement, truth);
                c.observe(&sample, remaining)
            })
            .collect()
    }

    #[test]
    fn stationary_telemetry_never_triggers() {
        let times = [1.0, 2.0, 3.0, 4.0];
        let mut c = controller(&times);
        let actions = feed(&mut c, &times, 50, 100);
        assert!(actions.iter().all(|a| matches!(a, Action::Continue)));
        assert_eq!(c.rebalances(), 0);
        assert_eq!(c.telemetry().len(), 50);
    }

    #[test]
    fn sustained_drift_rebalances_and_settles() {
        let mut c = controller(&[1.0; 4]);
        let drifted = [6.0, 1.0, 1.0, 1.0];
        let actions = feed(&mut c, &drifted, 40, 100);
        // The first re-solve may use under-converged estimates; one or
        // two follow-up corrections are legitimate, endless churn is not.
        assert!(
            (1..=3).contains(&c.rebalances()),
            "rebalances = {}",
            c.rebalances()
        );
        let when = actions
            .iter()
            .position(|a| matches!(a, Action::Rebalanced { .. }))
            .expect("no rebalance happened");
        // EWMA warm-up plus detector patience delay the confirmation past
        // the first few iterations.
        assert!(when >= 2, "rebalanced already at iteration {}", when);
        // Once the estimates have converged the loop settles: no
        // rebalance in the last stretch of the run.
        assert!(
            actions[30..]
                .iter()
                .all(|a| matches!(a, Action::Continue | Action::Evaluated(_))),
            "still rebalancing after convergence"
        );
        // Estimates track the true post-step cycle-times.
        assert!((c.estimates()[0] - 6.0).abs() < 0.1);
    }

    #[test]
    fn short_horizon_declines_rebalance() {
        let mut c = Controller::new(
            &[1.0; 4],
            2,
            2,
            4,
            4,
            16,
            ControllerConfig {
                policy: PolicyConfig {
                    block_move_cost: 50.0,
                    ..PolicyConfig::default()
                },
                ..ControllerConfig::default()
            },
        );
        let drifted = [6.0, 1.0, 1.0, 1.0];
        let actions = feed(&mut c, &drifted, 20, 0);
        assert_eq!(c.rebalances(), 0);
        assert!(actions.iter().any(|a| matches!(a, Action::Evaluated(_))));
    }

    #[test]
    fn rebalanced_action_carries_the_old_dist() {
        let mut c = controller(&[1.0; 4]);
        let before = c.dist().clone();
        let drifted = [6.0, 1.0, 1.0, 1.0];
        for k in 0..20 {
            let sample =
                IterationSample::from_true_times(k, &c.plan().solution.arrangement, &drifted);
            if let Action::Rebalanced { old_dist, decision } = c.observe(&sample, 100) {
                assert_eq!(
                    hetgrid_dist::redistribution::blocks_moved(&before, &old_dist, 16),
                    0,
                    "old_dist is not the superseded distribution"
                );
                assert_eq!(
                    hetgrid_dist::redistribution::blocks_moved(&old_dist, c.dist(), 16),
                    decision.blocks_moved
                );
                return;
            }
        }
        panic!("no rebalance happened");
    }
}
