//! Executing a redistribution against live distributed data.
//!
//! A [`RedistributionPlan`] is the executable form of
//! [`hetgrid_dist::redistribution::transfer_plan`]: the explicit list of
//! block moves taking a [`DistributedMatrix`] from its current
//! distribution to a new one. Moves can be applied incrementally in
//! bounded batches, so a long redistribution can be interleaved with
//! kernel iterations instead of stopping the world.

use hetgrid_dist::BlockDist;
use hetgrid_exec::DistributedMatrix;
use std::collections::BTreeMap;

/// Aggregated transfer counts keyed by `(source, destination)` grid
/// positions — the shape returned by
/// [`hetgrid_dist::redistribution::transfer_plan`].
pub type TransferSummary = BTreeMap<((usize, usize), (usize, usize)), usize>;

/// One block move: which global block leaves which processor for which.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Move {
    /// Global block coordinates.
    pub block: (usize, usize),
    /// Current owner (grid position).
    pub from: (usize, usize),
    /// New owner (grid position).
    pub to: (usize, usize),
}

/// An ordered list of block moves with an application cursor.
#[derive(Clone, Debug)]
pub struct RedistributionPlan {
    moves: Vec<Move>,
    cursor: usize,
}

impl RedistributionPlan {
    /// Enumerates the moves taking an `nb_rows x nb_cols` block matrix
    /// from distribution `from` to distribution `to`, in row-major block
    /// order.
    ///
    /// # Panics
    /// Panics if the two distributions live on different grid shapes.
    pub fn build(from: &dyn BlockDist, to: &dyn BlockDist, nb_rows: usize, nb_cols: usize) -> Self {
        assert_eq!(from.grid(), to.grid(), "RedistributionPlan: grid mismatch");
        let mut moves = Vec::new();
        for bi in 0..nb_rows {
            for bj in 0..nb_cols {
                let src = from.owner(bi, bj);
                let dst = to.owner(bi, bj);
                if src != dst {
                    moves.push(Move {
                        block: (bi, bj),
                        from: src,
                        to: dst,
                    });
                }
            }
        }
        RedistributionPlan { moves, cursor: 0 }
    }

    /// Total number of moves in the plan.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// `true` if the plan contains no moves at all.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Number of moves not yet applied.
    pub fn remaining(&self) -> usize {
        self.moves.len() - self.cursor
    }

    /// `true` once every move has been applied.
    pub fn is_done(&self) -> bool {
        self.cursor == self.moves.len()
    }

    /// The not-yet-applied moves.
    pub fn pending(&self) -> &[Move] {
        &self.moves[self.cursor..]
    }

    /// Aggregates the plan into per-(src, dst) block counts — the same
    /// shape as [`hetgrid_dist::redistribution::transfer_plan`], usable
    /// as a cross-check.
    pub fn transfer_summary(&self) -> TransferSummary {
        let mut summary = BTreeMap::new();
        for m in &self.moves {
            *summary.entry((m.from, m.to)).or_insert(0) += 1;
        }
        summary
    }

    /// Applies up to `max_moves` pending moves to `dm`, advancing the
    /// cursor; returns how many were applied. Batches bound the
    /// per-iteration redistribution work of an incremental migration.
    ///
    /// # Panics
    /// Panics if `dm`'s grid does not match the plan's owners or a block
    /// is missing from its expected source store (the matrix is not in
    /// the plan's `from` distribution).
    pub fn apply_next(&mut self, dm: &mut DistributedMatrix, max_moves: usize) -> usize {
        let (p, q) = dm.grid;
        let batch = max_moves.min(self.remaining());
        for _ in 0..batch {
            let m = self.moves[self.cursor];
            assert!(
                m.from.0 < p && m.from.1 < q && m.to.0 < p && m.to.1 < q,
                "RedistributionPlan: move outside the matrix grid"
            );
            let block = dm.stores[m.from.0 * q + m.from.1]
                .remove(&m.block)
                .unwrap_or_else(|| {
                    panic!(
                        "RedistributionPlan: block {:?} missing from {:?}",
                        m.block, m.from
                    )
                });
            dm.stores[m.to.0 * q + m.to.1].insert(m.block, block);
            self.cursor += 1;
        }
        batch
    }

    /// Applies every pending move; returns how many were applied.
    pub fn apply_all(&mut self, dm: &mut DistributedMatrix) -> usize {
        self.apply_next(dm, usize::MAX)
    }
}

/// One-shot convenience: migrates `dm` from distribution `from` to
/// distribution `to`, returning the number of blocks moved.
pub fn redistribute(dm: &mut DistributedMatrix, from: &dyn BlockDist, to: &dyn BlockDist) -> usize {
    let mut plan = RedistributionPlan::build(from, to, dm.nb_rows, dm.nb_cols);
    plan.apply_all(dm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgrid_dist::{redistribution, BlockCyclic, PanelDist, PanelOrdering};
    use hetgrid_linalg::Matrix;

    const NB: usize = 8;
    const R: usize = 2;

    fn dists() -> (BlockCyclic, PanelDist) {
        let arr = hetgrid_core::Arrangement::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let cyclic = BlockCyclic::new(2, 2);
        let panel = PanelDist::from_counts(&arr, &[3, 1], &[3, 1], PanelOrdering::Interleaved);
        (cyclic, panel)
    }

    #[test]
    fn redistribution_preserves_content_and_moves_ownership() {
        let (from, to) = dists();
        let m = Matrix::from_fn(NB * R, NB * R, |i, j| (i * 31 + j) as f64);
        let mut dm = DistributedMatrix::scatter(&m, &from, NB, R);
        let moved = redistribute(&mut dm, &from, &to);
        assert_eq!(moved, redistribution::blocks_moved(&from, &to, NB));
        assert!(moved > 0);
        // Content survives the migration byte for byte.
        assert!(dm.gather().approx_eq(&m, 0.0));
        // Ownership now matches the target distribution.
        for bi in 0..NB {
            for bj in 0..NB {
                let (i, j) = to.owner(bi, bj);
                assert!(dm.store(i, j).contains_key(&(bi, bj)));
            }
        }
    }

    #[test]
    fn incremental_batches_cover_the_whole_plan() {
        let (from, to) = dists();
        let m = Matrix::from_fn(NB * R, NB * R, |i, j| (i + 2 * j) as f64);
        let mut dm = DistributedMatrix::scatter(&m, &from, NB, R);
        let mut plan = RedistributionPlan::build(&from, &to, NB, NB);
        let total = plan.len();
        let mut applied = 0;
        while !plan.is_done() {
            applied += plan.apply_next(&mut dm, 5);
            assert_eq!(plan.remaining(), total - applied);
        }
        assert_eq!(applied, total);
        assert!(dm.gather().approx_eq(&m, 0.0));
        // A drained plan applies nothing further.
        assert_eq!(plan.apply_all(&mut dm), 0);
    }

    #[test]
    fn transfer_summary_matches_dist_transfer_plan() {
        let (from, to) = dists();
        let plan = RedistributionPlan::build(&from, &to, NB, NB);
        assert_eq!(
            plan.transfer_summary(),
            redistribution::transfer_plan(&from, &to, NB)
        );
    }

    #[test]
    fn identical_distributions_need_no_moves() {
        let (from, _) = dists();
        let plan = RedistributionPlan::build(&from, &from, NB, NB);
        assert!(plan.is_empty());
        assert!(plan.is_done());
    }
}
