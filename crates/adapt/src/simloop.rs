//! Deterministic closed-loop experiments: static vs adaptive execution
//! under a cycle-time drift profile.
//!
//! The scenario replays `iters` kernel iterations while the true
//! cycle-times follow a [`DriftProfile`]. Two strategies run over the
//! identical trace:
//!
//! * **static** — the initial plan is kept for the whole run (the
//!   paper's one-shot load balancing);
//! * **adaptive** — a [`Controller`] watches per-iteration telemetry and
//!   rebalances when its amortized cost/benefit analysis says so; every
//!   redistribution's cost is charged to the adaptive makespan.
//!
//! Everything is deterministic — the profile is a pure function of the
//! iteration index and telemetry is noiseless — so the experiments are
//! exactly reproducible.

use crate::controller::{Action, Controller, ControllerConfig};
use crate::plan::ActivePlan;
use crate::telemetry::IterationSample;
use hetgrid_sim::DriftProfile;

/// A closed-loop experiment definition.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Base cycle-times of the pool, by processor id.
    pub base_times: Vec<f64>,
    /// Grid rows.
    pub p: usize,
    /// Grid columns.
    pub q: usize,
    /// Row panel size in blocks.
    pub bp: usize,
    /// Column panel size in blocks.
    pub bq: usize,
    /// Matrix order in blocks.
    pub nb: usize,
    /// Number of kernel iterations.
    pub iters: usize,
    /// The drift the pool undergoes.
    pub profile: DriftProfile,
    /// Controller tuning.
    pub config: ControllerConfig,
}

/// Per-iteration record of a scenario run.
#[derive(Clone, Debug)]
pub struct IterOutcome {
    /// Iteration index.
    pub iter: usize,
    /// True cycle-times at this iteration, by processor id.
    pub true_times: Vec<f64>,
    /// Cost of this iteration under the static plan.
    pub static_cost: f64,
    /// Cost of this iteration under the adaptive plan in force.
    pub adaptive_cost: f64,
    /// Whether the controller rebalanced after this iteration.
    pub rebalanced: bool,
}

/// Aggregate result of a scenario run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Total compute makespan of the static strategy.
    pub static_makespan: f64,
    /// Total makespan of the adaptive strategy, *including* every
    /// redistribution bill.
    pub adaptive_makespan: f64,
    /// Number of rebalances the controller performed.
    pub rebalances: usize,
    /// Total redistribution cost charged to the adaptive strategy.
    pub redistribution_cost: f64,
    /// Total number of blocks moved across all rebalances.
    pub blocks_moved: usize,
    /// The per-iteration trace.
    pub history: Vec<IterOutcome>,
}

impl Outcome {
    /// `static_makespan / adaptive_makespan` — above 1.0 means adapting
    /// paid off.
    pub fn speedup(&self) -> f64 {
        if self.adaptive_makespan > 0.0 {
            self.static_makespan / self.adaptive_makespan
        } else {
            1.0
        }
    }
}

/// Runs the scenario and returns both strategies' outcomes.
///
/// # Panics
/// Panics on inconsistent scenario dimensions (delegated to the plan and
/// profile constructors).
pub fn run_scenario(sc: &Scenario) -> Outcome {
    let static_plan = ActivePlan::solve(
        &sc.base_times,
        sc.p,
        sc.q,
        sc.bp,
        sc.bq,
        sc.config.policy.method,
    );
    let mut controller =
        Controller::new(&sc.base_times, sc.p, sc.q, sc.bp, sc.bq, sc.nb, sc.config);

    let mut static_makespan = 0.0;
    let mut adaptive_makespan = 0.0;
    let mut redistribution_cost = 0.0;
    let mut blocks_moved = 0;
    let mut history = Vec::with_capacity(sc.iters);

    for iter in 0..sc.iters {
        let truth = sc.profile.times_at(&sc.base_times, iter);
        // Both strategies execute this iteration with the plans they
        // entered it with; the controller reacts to its telemetry only
        // afterwards.
        let static_cost = static_plan.per_iteration_cost(&truth, sc.nb);
        let adaptive_cost = controller.plan().per_iteration_cost(&truth, sc.nb);
        static_makespan += static_cost;
        adaptive_makespan += adaptive_cost;

        let sample =
            IterationSample::from_true_times(iter, &controller.plan().solution.arrangement, &truth);
        let remaining = sc.iters - iter - 1;
        let rebalanced = match controller.observe(&sample, remaining) {
            Action::Rebalanced { decision, .. } => {
                adaptive_makespan += decision.redistribution_cost;
                redistribution_cost += decision.redistribution_cost;
                blocks_moved += decision.blocks_moved;
                true
            }
            Action::Continue | Action::Evaluated(_) => false,
        };
        history.push(IterOutcome {
            iter,
            true_times: truth,
            static_cost,
            adaptive_cost,
            rebalanced,
        });
    }

    Outcome {
        static_makespan,
        adaptive_makespan,
        rebalances: controller.rebalances(),
        redistribution_cost,
        blocks_moved,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(profile: DriftProfile) -> Scenario {
        Scenario {
            base_times: vec![1.0, 1.0, 1.0, 1.0],
            p: 2,
            q: 2,
            bp: 4,
            bq: 4,
            nb: 16,
            iters: 60,
            profile,
            config: ControllerConfig::default(),
        }
    }

    #[test]
    fn stationary_pool_is_left_alone() {
        let out = run_scenario(&scenario(DriftProfile::Stationary));
        assert_eq!(out.rebalances, 0);
        assert_eq!(out.redistribution_cost, 0.0);
        assert_eq!(out.adaptive_makespan, out.static_makespan);
        assert_eq!(out.speedup(), 1.0);
    }

    #[test]
    fn step_drift_is_beaten_by_adapting() {
        let out = run_scenario(&scenario(DriftProfile::Step {
            at: 5,
            factors: vec![6.0, 1.0, 1.0, 1.0],
        }));
        assert!(out.rebalances >= 1);
        assert!(
            out.adaptive_makespan < out.static_makespan,
            "adaptive {} !< static {}",
            out.adaptive_makespan,
            out.static_makespan
        );
        assert!(out.speedup() > 1.0);
        // The trace is internally consistent.
        let hist_static: f64 = out.history.iter().map(|h| h.static_cost).sum();
        let hist_adapt: f64 = out.history.iter().map(|h| h.adaptive_cost).sum();
        assert!((hist_static - out.static_makespan).abs() < 1e-9);
        assert!((hist_adapt + out.redistribution_cost - out.adaptive_makespan).abs() < 1e-9);
        assert_eq!(
            out.history.iter().filter(|h| h.rebalanced).count(),
            out.rebalances
        );
    }

    #[test]
    fn ramp_drift_is_tracked() {
        let out = run_scenario(&scenario(DriftProfile::Ramp {
            from: 5,
            to: 25,
            factors: vec![5.0, 1.0, 1.0, 1.0],
        }));
        assert!(out.rebalances >= 1);
        assert!(out.adaptive_makespan < out.static_makespan);
    }

    #[test]
    fn runs_are_deterministic() {
        let sc = scenario(DriftProfile::Step {
            at: 5,
            factors: vec![6.0, 1.0, 1.0, 1.0],
        });
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        assert_eq!(a.static_makespan, b.static_makespan);
        assert_eq!(a.adaptive_makespan, b.adaptive_makespan);
        assert_eq!(a.rebalances, b.rebalances);
    }
}
