//! The plan under execution: a solved arrangement plus its panel
//! distribution, with the analytic per-iteration cost model the decision
//! policy prices plans with.

use hetgrid_core::{Method, Problem, Solution};
use hetgrid_dist::{BlockDist, PanelDist, PanelOrdering};

/// A solved load-balancing plan: the arrangement (which processor sits
/// where, at what planned cycle-time) and the panel distribution derived
/// from its shares.
#[derive(Clone, Debug)]
pub struct ActivePlan {
    /// The solver output the plan was built from.
    pub solution: Solution,
    /// The panel distribution of matrix blocks over the grid.
    pub dist: PanelDist,
    /// Row panel size used to discretize the row shares.
    pub bp: usize,
    /// Column panel size used to discretize the column shares.
    pub bq: usize,
}

impl ActivePlan {
    /// Solves for the given per-processor cycle-times (indexed by
    /// physical processor id) and discretizes the shares into `bp x bq`
    /// interleaved panels.
    ///
    /// # Panics
    /// Panics if `times.len() != p * q` or the panel sizes are zero.
    pub fn solve(times: &[f64], p: usize, q: usize, bp: usize, bq: usize, method: Method) -> Self {
        assert_eq!(times.len(), p * q, "ActivePlan: times/grid size mismatch");
        let solution = Problem::new(times.to_vec())
            .grid(p, q)
            .method(method)
            .solve();
        let dist = PanelDist::from_allocation(
            &solution.arrangement,
            &solution.alloc,
            bp,
            bq,
            PanelOrdering::Interleaved,
        );
        ActivePlan {
            solution,
            dist,
            bp,
            bq,
        }
    }

    /// Grid shape `(p, q)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.solution.arrangement.p(), self.solution.arrangement.q())
    }

    /// The cycle-times the plan was solved for, re-keyed by physical
    /// processor id (inverting the arrangement's permutation) — the
    /// drift detector's reference vector.
    pub fn planned_times(&self) -> Vec<f64> {
        let arr = &self.solution.arrangement;
        let mut times = vec![0.0; arr.len()];
        for i in 0..arr.p() {
            for j in 0..arr.q() {
                times[arr.proc(i, j)] = arr.time(i, j);
            }
        }
        times
    }

    /// Analytic zero-communication cost of one kernel iteration (one
    /// `nb`-step outer-product sweep) under the given *true* cycle-times,
    /// indexed by processor id: `nb * max_ij t_proc(i,j) * owned_ij`.
    ///
    /// Evaluating the *current* plan under *fresh* times prices staleness;
    /// evaluating a candidate plan under the same times prices the
    /// benefit of rebalancing — the two sides of the policy's comparison.
    ///
    /// # Panics
    /// Panics if `times_by_proc` does not cover the grid.
    pub fn per_iteration_cost(&self, times_by_proc: &[f64], nb: usize) -> f64 {
        let arr = &self.solution.arrangement;
        assert_eq!(
            times_by_proc.len(),
            arr.len(),
            "ActivePlan: times/grid size mismatch"
        );
        let owned = self.dist.owned_counts(nb, nb);
        let mut step: f64 = 0.0;
        for i in 0..arr.p() {
            for j in 0..arr.q() {
                step = step.max(times_by_proc[arr.proc(i, j)] * owned[i][j] as f64);
            }
        }
        nb as f64 * step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planned_times_invert_the_permutation() {
        let times = vec![4.0, 1.0, 2.0, 3.0];
        let plan = ActivePlan::solve(&times, 2, 2, 4, 4, Method::Heuristic);
        assert_eq!(plan.planned_times(), times);
    }

    #[test]
    fn homogeneous_cost_matches_even_split() {
        // 2x2 homogeneous grid, nb divisible: every processor owns
        // nb^2 / 4 blocks, so one iteration costs nb * nb^2/4.
        let nb = 8;
        let plan = ActivePlan::solve(&[1.0; 4], 2, 2, 2, 2, Method::Heuristic);
        let cost = plan.per_iteration_cost(&[1.0; 4], nb);
        assert_eq!(cost, nb as f64 * (nb * nb / 4) as f64);
    }

    #[test]
    fn stale_plan_costs_more_under_drift() {
        let base = vec![1.0, 1.0, 1.0, 1.0];
        let drifted = vec![5.0, 1.0, 1.0, 1.0];
        let stale = ActivePlan::solve(&base, 2, 2, 4, 4, Method::Heuristic);
        let fresh = ActivePlan::solve(&drifted, 2, 2, 4, 4, Method::Heuristic);
        let nb = 16;
        let stale_cost = stale.per_iteration_cost(&drifted, nb);
        let fresh_cost = fresh.per_iteration_cost(&drifted, nb);
        assert!(
            fresh_cost < stale_cost,
            "fresh {} !< stale {}",
            fresh_cost,
            stale_cost
        );
    }
}
