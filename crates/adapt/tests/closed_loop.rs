//! Acceptance tests for the closed adaptive loop: deterministic
//! simulation shows adaptive execution beating the static plan under
//! drift, touching nothing when the pool is stationary, and keeping live
//! distributed data intact across redistributions.

use hetgrid_adapt::{
    redistribute, run_scenario, Action, Controller, ControllerConfig, IterationSample, Scenario,
};
use hetgrid_exec::DistributedMatrix;
use hetgrid_linalg::Matrix;
use hetgrid_sim::DriftProfile;
use rand::prelude::*;

fn scenario(profile: DriftProfile) -> Scenario {
    Scenario {
        base_times: vec![1.0, 1.0, 1.0, 1.0],
        p: 2,
        q: 2,
        bp: 4,
        bq: 4,
        nb: 16,
        iters: 60,
        profile,
        config: ControllerConfig::default(),
    }
}

#[test]
fn adaptive_beats_static_under_step_drift() {
    let out = run_scenario(&scenario(DriftProfile::Step {
        at: 5,
        factors: vec![6.0, 1.0, 1.0, 1.0],
    }));
    assert!(out.rebalances >= 1, "controller never rebalanced");
    assert!(
        out.adaptive_makespan < out.static_makespan,
        "adaptive {} did not beat static {} (redistribution bill {})",
        out.adaptive_makespan,
        out.static_makespan,
        out.redistribution_cost
    );
    assert!(out.speedup() > 1.1, "speedup only {:.3}", out.speedup());
}

#[test]
fn stationary_pool_sees_zero_redistributions() {
    let out = run_scenario(&scenario(DriftProfile::Stationary));
    assert_eq!(out.rebalances, 0);
    assert_eq!(out.blocks_moved, 0);
    assert_eq!(out.redistribution_cost, 0.0);
    assert_eq!(out.adaptive_makespan, out.static_makespan);
}

#[test]
fn heterogeneous_stationary_pool_is_also_left_alone() {
    // A pool that is *already* heterogeneous but stable: the initial
    // plan is correct, so perfect telemetry must never look like drift.
    let mut sc = scenario(DriftProfile::Stationary);
    sc.base_times = vec![1.0, 2.0, 3.0, 6.0];
    let out = run_scenario(&sc);
    assert_eq!(out.rebalances, 0);
    assert_eq!(out.adaptive_makespan, out.static_makespan);
}

#[test]
fn brief_periodic_spikes_do_not_cause_churn() {
    // A one-iteration load spike is smoothed by the EWMA to well below
    // the drift threshold: transients must not trigger redistribution.
    let out = run_scenario(&scenario(DriftProfile::PeriodicSpike {
        period: 8,
        width: 1,
        factors: vec![2.0, 1.0, 1.0, 1.0],
    }));
    assert_eq!(out.rebalances, 0, "smoothing failed to absorb transients");
}

/// A random but fully seeded scenario: grid shape, base cycle-times and
/// drift profile all drawn from `seed`.
fn random_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let grids = [(2, 2), (2, 3)];
    let (p, q) = grids[rng.gen_range(0..grids.len())];
    let base_times: Vec<f64> = (0..p * q).map(|_| rng.gen_range(0.5..4.0)).collect();
    let factors: Vec<f64> = (0..p * q)
        .map(|_| {
            if rng.gen_bool(0.5) {
                1.0
            } else {
                rng.gen_range(1.5..6.0)
            }
        })
        .collect();
    let profile = match rng.gen_range(0..4u32) {
        0 => DriftProfile::Stationary,
        1 => DriftProfile::Step {
            at: rng.gen_range(2..10),
            factors,
        },
        2 => {
            let from = rng.gen_range(2..6usize);
            DriftProfile::Ramp {
                from,
                to: from + rng.gen_range(4..12usize),
                factors,
            }
        }
        _ => {
            let period = rng.gen_range(6..12);
            DriftProfile::PeriodicSpike {
                period,
                width: rng.gen_range(1..=period / 2),
                factors,
            }
        }
    };
    Scenario {
        base_times,
        p,
        q,
        bp: 4,
        bq: 4,
        nb: 16,
        iters: 40,
        profile,
        config: ControllerConfig::default(),
    }
}

#[test]
fn same_seed_replays_identical_decisions_and_plan() {
    // The whole closed loop — estimator, drift detector, amortized
    // decision, plan re-solve — must be a pure function of the scenario.
    // Bitwise equality, not approximate: any hidden nondeterminism
    // (iteration order over a hash map, time-dependent tuning) would
    // break exact replay of harness failures.
    for seed in 0..24u64 {
        let sc = random_scenario(seed);
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        assert_eq!(a.rebalances, b.rebalances, "seed {seed}");
        assert_eq!(a.blocks_moved, b.blocks_moved, "seed {seed}");
        assert_eq!(a.static_makespan.to_bits(), b.static_makespan.to_bits());
        assert_eq!(a.adaptive_makespan.to_bits(), b.adaptive_makespan.to_bits());
        assert_eq!(
            a.redistribution_cost.to_bits(),
            b.redistribution_cost.to_bits()
        );
        assert_eq!(a.history.len(), b.history.len());
        for (ha, hb) in a.history.iter().zip(&b.history) {
            assert_eq!(ha.rebalanced, hb.rebalanced, "seed {seed} iter {}", ha.iter);
            assert_eq!(ha.adaptive_cost.to_bits(), hb.adaptive_cost.to_bits());
            assert_eq!(ha.true_times, hb.true_times);
        }

        // Same check at the plan level: two controllers fed the same
        // trace end with identical block ownership.
        let drive = |sc: &Scenario| {
            let mut c = Controller::new(&sc.base_times, sc.p, sc.q, sc.bp, sc.bq, sc.nb, sc.config);
            for iter in 0..sc.iters {
                let truth = sc.profile.times_at(&sc.base_times, iter);
                let sample =
                    IterationSample::from_true_times(iter, &c.plan().solution.arrangement, &truth);
                c.observe(&sample, sc.iters - iter - 1);
            }
            let owners: Vec<(usize, usize)> = (0..sc.nb)
                .flat_map(|bi| (0..sc.nb).map(move |bj| (bi, bj)).collect::<Vec<_>>())
                .map(|(bi, bj)| hetgrid_dist::BlockDist::owner(c.dist(), bi, bj))
                .collect();
            (c.rebalances(), owners)
        };
        assert_eq!(
            drive(&sc),
            drive(&sc),
            "final plan diverged for seed {seed}"
        );
    }
}

#[test]
fn live_data_survives_closed_loop_redistributions() {
    // Drive a controller manually and actuate every rebalance against a
    // real distributed matrix, as the pipeline session does.
    let nb = 16;
    let r = 2;
    let base = [1.0; 4];
    let mut controller = Controller::new(&base, 2, 2, 4, 4, nb, ControllerConfig::default());
    let m = Matrix::from_fn(nb * r, nb * r, |i, j| (i * 7 + j) as f64);
    let mut dm = DistributedMatrix::scatter(&m, controller.dist(), nb, r);

    let profile = DriftProfile::Step {
        at: 3,
        factors: vec![6.0, 1.0, 1.0, 1.0],
    };
    let iters = 40;
    let mut moves_applied = 0;
    for iter in 0..iters {
        let truth = profile.times_at(&base, iter);
        let sample =
            IterationSample::from_true_times(iter, &controller.plan().solution.arrangement, &truth);
        if let Action::Rebalanced { decision, old_dist } =
            controller.observe(&sample, iters - iter - 1)
        {
            let moved = redistribute(&mut dm, &old_dist, controller.dist());
            assert_eq!(moved, decision.blocks_moved);
            moves_applied += moved;
        }
    }
    assert!(controller.rebalances() >= 1);
    assert!(moves_applied > 0);
    // Every block ended up where the final distribution says it lives,
    // and the matrix content is untouched.
    let final_dist = controller.dist();
    for bi in 0..nb {
        for bj in 0..nb {
            let (i, j) = hetgrid_dist::BlockDist::owner(final_dist, bi, bj);
            assert!(
                dm.store(i, j).contains_key(&(bi, bj)),
                "block ({}, {}) not at its owner",
                bi,
                bj
            );
        }
    }
    assert!(dm.gather().approx_eq(&m, 0.0));
}
