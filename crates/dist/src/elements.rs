//! Element-level indexing on top of a block distribution — the
//! ScaLAPACK-descriptor view: map a global matrix element `(i, j)` to
//! its owner and its position in the owner's local storage, given the
//! block size `r` of the `CYCLIC(r)`-style layout.

use crate::traits::BlockDist;

/// Element-level view of a block distribution with `r x r` blocks.
///
/// Local storage is assumed packed: local block `(li, lj)` (as computed
/// by [`BlockDist::local_index`]) starts at local element
/// `(li * r, lj * r)`.
pub struct ElementMap<'a> {
    dist: &'a dyn BlockDist,
    r: usize,
}

impl<'a> ElementMap<'a> {
    /// Creates the view.
    ///
    /// # Panics
    /// Panics if `r == 0`.
    pub fn new(dist: &'a dyn BlockDist, r: usize) -> Self {
        assert!(r > 0, "ElementMap: block size must be positive");
        ElementMap { dist, r }
    }

    /// Block size `r`.
    pub fn block_size(&self) -> usize {
        self.r
    }

    /// Owner grid position of global element `(i, j)`.
    pub fn owner(&self, i: usize, j: usize) -> (usize, usize) {
        self.dist.owner(i / self.r, j / self.r)
    }

    /// Owner and local element coordinates of global element `(i, j)`.
    pub fn locate(&self, i: usize, j: usize) -> ((usize, usize), (usize, usize)) {
        let (bi, bj) = (i / self.r, j / self.r);
        let owner = self.dist.owner(bi, bj);
        let (li, lj) = self.dist.local_index(bi, bj);
        (owner, (li * self.r + i % self.r, lj * self.r + j % self.r))
    }

    /// Number of elements owned by each processor in an `n x n` matrix
    /// (`n` must be a multiple of `r`).
    ///
    /// # Panics
    /// Panics if `n` is not a multiple of the block size.
    pub fn owned_elements(&self, n: usize) -> Vec<Vec<usize>> {
        assert_eq!(n % self.r, 0, "owned_elements: n must be a multiple of r");
        let nb = n / self.r;
        self.dist
            .owned_counts(nb, nb)
            .into_iter()
            .map(|row| row.into_iter().map(|c| c * self.r * self.r).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cyclic::BlockCyclic;
    use crate::panel::{PanelDist, PanelOrdering};
    use hetgrid_core::{exact, Arrangement};

    #[test]
    fn cyclic_element_owner() {
        let d = BlockCyclic::new(2, 2);
        let m = ElementMap::new(&d, 3);
        // Element (4, 7) is in block (1, 2) -> owner (1, 0).
        assert_eq!(m.owner(4, 7), (1, 0));
        // Element (0, 0) -> owner (0, 0), local (0, 0).
        assert_eq!(m.locate(0, 0), ((0, 0), (0, 0)));
    }

    #[test]
    fn locate_is_consistent_with_block_index() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let sol = exact::solve_arrangement(&arr);
        let d = PanelDist::from_allocation(&arr, &sol.alloc, 4, 3, PanelOrdering::Contiguous);
        let m = ElementMap::new(&d, 2);
        // Within one block, all elements share the owner and tile a
        // contiguous 2x2 local region.
        let (owner, (li0, lj0)) = m.locate(6, 4);
        for di in 0..2 {
            for dj in 0..2 {
                let (o, (li, lj)) = m.locate(6 + di, 4 + dj);
                assert_eq!(o, owner);
                assert_eq!((li, lj), (li0 + di, lj0 + dj));
            }
        }
    }

    #[test]
    fn local_coordinates_are_unique_per_owner() {
        let d = BlockCyclic::new(2, 3);
        let m = ElementMap::new(&d, 2);
        let n = 12;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in 0..n {
                let (owner, local) = m.locate(i, j);
                assert!(seen.insert((owner, local)), "collision at ({}, {})", i, j);
            }
        }
        assert_eq!(seen.len(), n * n);
    }

    #[test]
    fn owned_elements_scale_with_block_area() {
        let d = BlockCyclic::new(2, 2);
        let m = ElementMap::new(&d, 4);
        let counts = m.owned_elements(16);
        let total: usize = counts.iter().flatten().sum();
        assert_eq!(total, 256);
        assert_eq!(counts[0][0], 4 * 16);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn non_multiple_matrix_rejected() {
        let d = BlockCyclic::new(2, 2);
        ElementMap::new(&d, 3).owned_elements(10);
    }
}
