//! The heterogeneous block-cyclic distribution of Kalinov and Lastovetsky
//! (HPCN'99), the relaxed-communication baseline of Section 3.1.2.
//!
//! Each *grid column* distributes the matrix rows among its own `p`
//! processors independently (optimal 1D split by cycle-time), and the
//! matrix columns are distributed among grid columns proportionally to
//! each column's aggregate (harmonic-mean) speed. Load balance is
//! perfect in the limit, but the row splits differ between neighbouring
//! grid columns, so a processor can face *several* west neighbours
//! (Figure 3) — each extra neighbour is an extra horizontal broadcast per
//! step of the kernels.

use crate::traits::BlockDist;
use hetgrid_core::oned::{allocate_1d, equivalent_cycle_time};
use hetgrid_core::Arrangement;

/// Kalinov–Lastovetsky heterogeneous block-cyclic distribution, periodic
/// with a `bp x bq` block period.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KlDist {
    p: usize,
    q: usize,
    /// `row_pattern[gj][k]`: owner grid row of the `k`-th period row in
    /// grid column `gj` (length `bp`, one pattern per grid column).
    row_patterns: Vec<Vec<usize>>,
    /// Owner grid column of each period column (length `bq`).
    col_pattern: Vec<usize>,
}

impl KlDist {
    /// Builds the distribution for an arrangement, with a period of
    /// `bp x bq` blocks.
    ///
    /// Rows: within each grid column `j`, the `bp` period rows are dealt
    /// to its processors by the optimal 1D greedy on cycle-times
    /// `t_{1j}..t_{pj}` (interleaved order, as drawn in Figure 3).
    /// Columns: the `bq` period columns are dealt to grid columns by the
    /// 1D greedy on the equivalent cycle-times `p / sum_i (1/t_ij)`.
    ///
    /// # Panics
    /// Panics if `bp < p` or `bq < q` (someone would own nothing).
    pub fn new(arr: &Arrangement, bp: usize, bq: usize) -> Self {
        let (p, q) = (arr.p(), arr.q());
        assert!(bp >= p, "KlDist: bp must be >= p");
        assert!(bq >= q, "KlDist: bq must be >= q");

        let row_patterns: Vec<Vec<usize>> = (0..q)
            .map(|j| {
                let col_times: Vec<f64> = (0..p).map(|i| arr.time(i, j)).collect();
                let alloc = allocate_1d(&col_times, bp);
                ensure_full_coverage(alloc.order, alloc.counts, p)
            })
            .collect();

        // Equivalent cycle-time of grid column j for a whole matrix
        // column: the column's p processors share the bp rows, so the
        // time per (column of bp blocks) is bp / sum_i(1/t_ij) ~
        // proportional to the harmonic aggregate of the column.
        let col_equiv: Vec<f64> = (0..q)
            .map(|j| {
                let groups: Vec<(f64, usize)> = (0..p).map(|i| (arr.time(i, j), 1)).collect();
                equivalent_cycle_time(&groups)
            })
            .collect();
        let col_alloc = allocate_1d(&col_equiv, bq);
        let col_pattern = ensure_full_coverage(col_alloc.order, col_alloc.counts, q);

        KlDist {
            p,
            q,
            row_patterns,
            col_pattern,
        }
    }

    /// Period height in blocks.
    pub fn bp(&self) -> usize {
        self.row_patterns[0].len()
    }

    /// Period width in blocks.
    pub fn bq(&self) -> usize {
        self.col_pattern.len()
    }

    /// The row pattern used by grid column `gj`.
    pub fn row_pattern(&self, gj: usize) -> &[usize] {
        &self.row_patterns[gj]
    }

    /// The column pattern.
    pub fn col_pattern(&self) -> &[usize] {
        &self.col_pattern
    }

    /// For every processor, the number of *distinct west neighbours*: the
    /// owners of the blocks immediately to the left of its own blocks
    /// (in the periodic pattern). On a strict grid this is 1 everywhere;
    /// Kalinov–Lastovetsky can exceed it (Figure 3: a processor with two
    /// west neighbours takes part in two horizontal broadcasts).
    pub fn west_neighbour_counts(&self) -> Vec<Vec<usize>> {
        let mut sets: Vec<Vec<std::collections::HashSet<(usize, usize)>>> =
            vec![vec![std::collections::HashSet::new(); self.q]; self.p];
        let bq = self.bq();
        let bp = self.bp();
        // One full period, plus wrap-around on the left edge.
        for bi in 0..bp {
            for bj in 0..bq {
                let (i, j) = self.owner(bi, bj);
                let west = self.owner(bi, (bj + bq - 1) % bq);
                if west != (i, j) {
                    sets[i][j].insert(west);
                }
            }
        }
        sets.iter()
            .map(|row| row.iter().map(|s| s.len()).collect())
            .collect()
    }
}

/// Guarantees every owner appears in the pattern (shifting single slots
/// from the most-loaded owner if the greedy starved someone).
fn ensure_full_coverage(
    mut order: Vec<usize>,
    mut counts: Vec<usize>,
    owners: usize,
) -> Vec<usize> {
    loop {
        let Some(starved) = (0..owners).find(|&i| counts[i] == 0) else {
            return order;
        };
        let donor = (0..owners).max_by_key(|&i| counts[i]).expect("non-empty");
        assert!(counts[donor] > 1, "period too small to cover every owner");
        // Replace the last occurrence of the donor with the starved owner.
        let pos = order
            .iter()
            .rposition(|&o| o == donor)
            .expect("donor present");
        order[pos] = starved;
        counts[donor] -= 1;
        counts[starved] += 1;
    }
}

impl BlockDist for KlDist {
    fn grid(&self) -> (usize, usize) {
        (self.p, self.q)
    }

    fn owner(&self, bi: usize, bj: usize) -> (usize, usize) {
        let gj = self.col_pattern[bj % self.col_pattern.len()];
        let pattern = &self.row_patterns[gj];
        (pattern[bi % pattern.len()], gj)
    }

    fn is_cartesian(&self) -> bool {
        // Owner row depends on bj through the per-column row patterns.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::balance_report;

    fn paper_arr() -> Arrangement {
        Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]])
    }

    /// E3 — Figure 3 / Section 3.1.2 walk-through.
    #[test]
    fn fig3_kl_distribution() {
        let arr = paper_arr();
        // Period: 4 rows (column 1 splits 3:1), and for the rows of
        // column 2 the paper uses 7 (5:2). Use lcm-ish 28 x 61 to hit
        // both exact splits and the 40:21 column split.
        let d = KlDist::new(&arr, 28, 61);
        // Column 1: cycle-times (1, 3) -> 21:7 of 28 rows.
        let c0: usize = d.row_pattern(0).iter().filter(|&&r| r == 0).count();
        assert_eq!(c0, 21);
        // Column 2: cycle-times (2, 5) -> 20:8 of 28 rows.
        let c1: usize = d.row_pattern(1).iter().filter(|&&r| r == 0).count();
        assert_eq!(c1, 20);
        // Columns: equivalent times 3/2 and 20/7 -> 40:21 of 61.
        let cols0 = d.col_pattern().iter().filter(|&&c| c == 0).count();
        assert_eq!(cols0, 40);
    }

    #[test]
    fn kl_not_cartesian_and_extra_neighbours() {
        let arr = paper_arr();
        let d = KlDist::new(&arr, 28, 61);
        assert!(!d.is_cartesian());
        // Some processor has at least two west neighbours (Figure 3's
        // penalty); on a strict grid everyone has exactly one.
        let w = d.west_neighbour_counts();
        let max_w = w.iter().flatten().cloned().max().unwrap();
        assert!(max_w >= 2, "expected an extra west neighbour, got {:?}", w);
    }

    #[test]
    fn kl_balances_better_than_cyclic() {
        let arr = paper_arr();
        let d = KlDist::new(&arr, 28, 61);
        let cyc = crate::cyclic::BlockCyclic::new(2, 2);
        let kl_rep = balance_report(&d, &arr, 56, 61);
        let cyc_rep = balance_report(&cyc, &arr, 56, 61);
        assert!(
            kl_rep.makespan < cyc_rep.makespan,
            "KL {} !< cyclic {}",
            kl_rep.makespan,
            cyc_rep.makespan
        );
        assert!(kl_rep.average_utilization > 0.9);
    }

    #[test]
    fn kl_homogeneous_equals_grid_pattern() {
        let arr = Arrangement::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let d = KlDist::new(&arr, 2, 2);
        // With equal speeds the row patterns agree across columns, so the
        // distribution is effectively Cartesian (though not flagged so).
        for bi in 0..8 {
            for bj in 0..8 {
                let (i, j) = d.owner(bi, bj);
                assert_eq!((i, j), (bi % 2, bj % 2));
            }
        }
        let w = d.west_neighbour_counts();
        assert!(w.iter().flatten().all(|&x| x <= 1));
    }

    #[test]
    fn every_processor_owns_something() {
        let arr = Arrangement::from_rows(&[vec![0.1, 0.9, 0.5], vec![0.7, 0.2, 0.8]]);
        let d = KlDist::new(&arr, 6, 6);
        let counts = d.owned_counts(12, 12);
        for row in &counts {
            for &c in row {
                assert!(c > 0, "a processor owns nothing: {:?}", counts);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bp must be")]
    fn too_small_period_rejected() {
        let arr = paper_arr();
        KlDist::new(&arr, 1, 4);
    }
}
