//! Redistribution analysis: what does it cost to move a matrix from one
//! distribution to another?
//!
//! The paper targets *static* allocations precisely to avoid paying
//! redistribution at run time (Section 2.1); on a multi-user machine the
//! effective speeds drift, so the library-level question is whether the
//! rebalancing gain outweighs the one-off move. These helpers quantify
//! the move.

use crate::traits::BlockDist;
use std::collections::BTreeMap;

/// Number of blocks of an `nb x nb` block matrix whose owner changes
/// between the two distributions.
///
/// # Panics
/// Panics if the grids differ.
pub fn blocks_moved(from: &dyn BlockDist, to: &dyn BlockDist, nb: usize) -> usize {
    assert_eq!(from.grid(), to.grid(), "blocks_moved: grid mismatch");
    let mut moved = 0;
    for bi in 0..nb {
        for bj in 0..nb {
            if from.owner(bi, bj) != to.owner(bi, bj) {
                moved += 1;
            }
        }
    }
    moved
}

/// Per (source, destination) transfer counts for the redistribution —
/// the message plan a real library would execute.
pub fn transfer_plan(
    from: &dyn BlockDist,
    to: &dyn BlockDist,
    nb: usize,
) -> BTreeMap<((usize, usize), (usize, usize)), usize> {
    assert_eq!(from.grid(), to.grid(), "transfer_plan: grid mismatch");
    let mut plan = BTreeMap::new();
    for bi in 0..nb {
        for bj in 0..nb {
            let src = from.owner(bi, bj);
            let dst = to.owner(bi, bj);
            if src != dst {
                *plan.entry((src, dst)).or_insert(0) += 1;
            }
        }
    }
    plan
}

/// Fraction of blocks that move, in `[0, 1]`.
pub fn moved_fraction(from: &dyn BlockDist, to: &dyn BlockDist, nb: usize) -> f64 {
    blocks_moved(from, to, nb) as f64 / (nb * nb) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cyclic::BlockCyclic;
    use crate::panel::{PanelDist, PanelOrdering};
    use hetgrid_core::{exact, Arrangement};

    #[test]
    fn identical_distributions_move_nothing() {
        let d = BlockCyclic::new(2, 2);
        assert_eq!(blocks_moved(&d, &d, 16), 0);
        assert!(transfer_plan(&d, &d, 16).is_empty());
    }

    #[test]
    fn plan_accounts_for_every_moved_block() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let sol = exact::solve_arrangement(&arr);
        let cyc = BlockCyclic::new(2, 2);
        let panel = PanelDist::from_allocation(&arr, &sol.alloc, 4, 3, PanelOrdering::Contiguous);
        let nb = 12;
        let moved = blocks_moved(&cyc, &panel, nb);
        let planned: usize = transfer_plan(&cyc, &panel, nb).values().sum();
        assert_eq!(moved, planned);
        assert!(moved > 0);
        assert!(moved < nb * nb, "not everything should move");
        assert!((moved_fraction(&cyc, &panel, nb) - moved as f64 / 144.0).abs() < 1e-12);
    }

    #[test]
    fn similar_panels_move_less_than_dissimilar() {
        // Rebalancing between two close allocations moves fewer blocks
        // than switching from uniform cyclic.
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let p1 = PanelDist::from_counts(&arr, &[3, 1], &[2, 1], PanelOrdering::Contiguous);
        let p2 = PanelDist::from_counts(&arr, &[2, 1], &[2, 1], PanelOrdering::Contiguous);
        let cyc = BlockCyclic::new(2, 2);
        let nb = 24;
        let close = blocks_moved(&p1, &p2, nb);
        let far = blocks_moved(&cyc, &p1, nb);
        assert!(
            close < far,
            "close rebalance {} !< cyclic switch {}",
            close,
            far
        );
        let _ = sol;
    }

    #[test]
    #[should_panic(expected = "grid mismatch")]
    fn mismatched_grids_rejected() {
        let a = BlockCyclic::new(2, 2);
        let b = BlockCyclic::new(2, 3);
        blocks_moved(&a, &b, 4);
    }
}
