//! The uniform 2D block-cyclic distribution `CYCLIC(r)` used by
//! ScaLAPACK on homogeneous grids (Section 3.1.1) — the baseline whose
//! performance on a heterogeneous grid degrades to the speed of the
//! slowest processor.

use crate::traits::BlockDist;

/// Uniform 2D block-cyclic distribution on a `p x q` grid:
/// block `(bi, bj)` belongs to processor `(bi mod p, bj mod q)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockCyclic {
    p: usize,
    q: usize,
}

impl BlockCyclic {
    /// Creates the distribution for a `p x q` grid.
    ///
    /// # Panics
    /// Panics if `p == 0` or `q == 0`.
    pub fn new(p: usize, q: usize) -> Self {
        assert!(p > 0 && q > 0, "BlockCyclic: empty grid");
        BlockCyclic { p, q }
    }
}

impl BlockDist for BlockCyclic {
    fn grid(&self) -> (usize, usize) {
        (self.p, self.q)
    }

    fn owner(&self, bi: usize, bj: usize) -> (usize, usize) {
        (bi % self.p, bj % self.q)
    }

    fn is_cartesian(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::balance_report;
    use hetgrid_core::Arrangement;

    #[test]
    fn cyclic_ownership() {
        let d = BlockCyclic::new(2, 3);
        assert_eq!(d.owner(0, 0), (0, 0));
        assert_eq!(d.owner(1, 2), (1, 2));
        assert_eq!(d.owner(2, 3), (0, 0));
        assert_eq!(d.owner(5, 7), (1, 1));
    }

    #[test]
    fn even_split_when_divisible() {
        let d = BlockCyclic::new(2, 2);
        let counts = d.owned_counts(4, 4);
        for row in &counts {
            for &c in row {
                assert_eq!(c, 4);
            }
        }
    }

    #[test]
    fn remainder_blocks_go_to_low_indices() {
        let d = BlockCyclic::new(2, 2);
        let counts = d.owned_counts(5, 5);
        assert_eq!(counts[0][0], 9);
        assert_eq!(counts[0][1], 6);
        assert_eq!(counts[1][0], 6);
        assert_eq!(counts[1][1], 4);
    }

    #[test]
    fn local_index_is_cyclic() {
        let d = BlockCyclic::new(2, 2);
        assert_eq!(d.local_index(4, 6), (2, 3));
        assert_eq!(d.local_index(5, 7), (2, 3));
    }

    #[test]
    fn heterogeneous_makespan_dominated_by_slowest() {
        // On [[1,2],[3,6]], uniform cyclic gives everyone the same count;
        // the makespan is the slowest processor's time.
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let d = BlockCyclic::new(2, 2);
        let report = balance_report(&d, &arr, 4, 4);
        assert_eq!(report.makespan, 4.0 * 6.0);
        // Mean utilization = mean(t)/max(t) = (1+2+3+6)/4 / 6 = 0.5.
        assert!((report.average_utilization - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trailing_counts_shrink() {
        let d = BlockCyclic::new(2, 2);
        let t0 = d.trailing_counts(4, 0);
        let t2 = d.trailing_counts(4, 2);
        let sum0: usize = t0.iter().flatten().sum();
        let sum2: usize = t2.iter().flatten().sum();
        assert_eq!(sum0, 16);
        assert_eq!(sum2, 4);
    }
}
