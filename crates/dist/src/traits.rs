//! The common interface of block-to-processor distributions.

/// Maps matrix blocks (in units of `r x r` blocks, as in ScaLAPACK's
/// `CYCLIC(r)`) to processors of a `p x q` grid.
///
/// `(bi, bj)` are global block coordinates; the owner is a grid position
/// `(i, j)` with `0 <= i < p`, `0 <= j < q`.
pub trait BlockDist {
    /// Grid dimensions `(p, q)`.
    fn grid(&self) -> (usize, usize);

    /// Owner of global block `(bi, bj)`.
    fn owner(&self, bi: usize, bj: usize) -> (usize, usize);

    /// `true` if the distribution is a *Cartesian product*: the owner row
    /// depends only on `bi` and the owner column only on `bj`. Cartesian
    /// distributions keep the strict grid communication pattern (each
    /// processor talks to its four direct neighbours only) — the property
    /// the paper insists on (Section 3.1.2). The Kalinov–Lastovetsky
    /// distribution is *not* Cartesian.
    fn is_cartesian(&self) -> bool;

    /// Number of blocks owned by each processor in an `nb_rows x nb_cols`
    /// block matrix, as a `p x q` row-major count table.
    fn owned_counts(&self, nb_rows: usize, nb_cols: usize) -> Vec<Vec<usize>> {
        let (p, q) = self.grid();
        let mut counts = vec![vec![0usize; q]; p];
        for bi in 0..nb_rows {
            for bj in 0..nb_cols {
                let (i, j) = self.owner(bi, bj);
                counts[i][j] += 1;
            }
        }
        counts
    }

    /// Number of *trailing* blocks `(bi, bj)` with `bi >= k`, `bj >= k`
    /// owned by each processor — the work of the rank-`r` update at step
    /// `k` of right-looking LU (Section 3.2.1).
    fn trailing_counts(&self, nb: usize, k: usize) -> Vec<Vec<usize>> {
        let (p, q) = self.grid();
        let mut counts = vec![vec![0usize; q]; p];
        for bi in k..nb {
            for bj in k..nb {
                let (i, j) = self.owner(bi, bj);
                counts[i][j] += 1;
            }
        }
        counts
    }

    /// Local (row, column) index of a block within its owner's storage:
    /// the number of blocks of the same global row/column strip owned
    /// earlier. For Cartesian distributions this is the usual ScaLAPACK
    /// local indexing.
    fn local_index(&self, bi: usize, bj: usize) -> (usize, usize) {
        let (oi, oj) = self.owner(bi, bj);
        let mut li = 0;
        for b in 0..bi {
            if self.owner(b, bj).0 == oi {
                li += 1;
            }
        }
        let mut lj = 0;
        for b in 0..bj {
            if self.owner(bi, b).1 == oj {
                lj += 1;
            }
        }
        (li, lj)
    }
}

/// Statistics about how well a distribution balances a heterogeneous
/// grid.
#[derive(Clone, Debug, PartialEq)]
pub struct BalanceReport {
    /// Per-processor compute time for one sweep over all owned blocks
    /// (`count * t_ij`), row-major.
    pub times: Vec<Vec<f64>>,
    /// The parallel time `max_ij count_ij * t_ij`.
    pub makespan: f64,
    /// Mean utilization `mean(time_ij) / makespan`.
    pub average_utilization: f64,
}

/// Computes the one-sweep balance of `dist` against an arrangement of
/// cycle-times (grid shapes must agree).
///
/// # Panics
/// Panics if the grid shapes differ.
pub fn balance_report(
    dist: &dyn BlockDist,
    arr: &hetgrid_core::Arrangement,
    nb_rows: usize,
    nb_cols: usize,
) -> BalanceReport {
    let (p, q) = dist.grid();
    assert_eq!((p, q), (arr.p(), arr.q()), "balance_report: grid mismatch");
    let counts = dist.owned_counts(nb_rows, nb_cols);
    let mut times = vec![vec![0.0f64; q]; p];
    let mut makespan: f64 = 0.0;
    let mut total = 0.0;
    for i in 0..p {
        for j in 0..q {
            let t = counts[i][j] as f64 * arr.time(i, j);
            times[i][j] = t;
            makespan = makespan.max(t);
            total += t;
        }
    }
    let average_utilization = if makespan > 0.0 {
        total / (p as f64 * q as f64 * makespan)
    } else {
        1.0
    };
    BalanceReport {
        times,
        makespan,
        average_utilization,
    }
}
