//! # hetgrid-dist
//!
//! Block-to-processor data distributions for dense linear algebra on 2D
//! processor grids, as compared in the paper (IPPS 2000):
//!
//! * [`BlockCyclic`] — the uniform ScaLAPACK `CYCLIC(r)` distribution
//!   (homogeneous baseline; on a heterogeneous grid it runs at the speed
//!   of the slowest processor);
//! * [`PanelDist`] — the paper's heterogeneous block-panel-cyclic
//!   distribution: `B_p x B_q` panels, `rows[i] x cols[j]` blocks per
//!   processor per panel, strict grid communication pattern, optional 1D
//!   interleaved ordering for LU/QR (Figure 4's `ABAABA`);
//! * [`KlDist`] — Kalinov–Lastovetsky's heterogeneous block-cyclic
//!   distribution (perfect balance, relaxed communication pattern with
//!   extra west neighbours, Figure 3).
//!
//! All distributions implement [`BlockDist`]; [`balance_report`] measures
//! how well each balances a heterogeneous [`hetgrid_core::Arrangement`].

#![warn(missing_docs)]
// Grid code indexes `owned[i][j]`-style tables with `for i in 0..p`
// loops and passes several aggregated message maps around; the clippy
// style suggestions (iterator rewrites, type aliases, argument structs)
// would obscure the 2D-grid idiom the paper's algorithms are written in.
#![allow(
    clippy::needless_range_loop,
    clippy::type_complexity,
    clippy::too_many_arguments
)]

pub mod cyclic;
pub mod elements;
pub mod kl;
pub mod panel;
pub mod redistribution;
pub mod traits;

pub use cyclic::BlockCyclic;
pub use elements::ElementMap;
pub use kl::KlDist;
pub use panel::{PanelDist, PanelOrdering};
pub use traits::{balance_report, BalanceReport, BlockDist};
