//! The paper's heterogeneous block-panel-cyclic distribution
//! (Sections 3.1.2 and 3.2.2).
//!
//! A *block panel* is a rectangle of `B_p x B_q` blocks tiled cyclically
//! over the matrix. Within a panel, grid row `i` owns `rows[i]` of the
//! `B_p` panel rows and grid column `j` owns `cols[j]` of the `B_q` panel
//! columns, so processor `(i, j)` gets `rows[i] * cols[j]` blocks per
//! panel while the communication pattern stays a strict grid (each
//! processor has exactly one west and one north neighbour).
//!
//! For matrix multiplication the order of panel rows/columns within the
//! panel is irrelevant; for LU/QR the *column* order matters because the
//! elimination consumes columns left to right — the 1D dealing order
//! (`ABAABA`, Figure 4) keeps every suffix of the panel balanced.

use crate::traits::BlockDist;
use hetgrid_core::objective::Allocation;
use hetgrid_core::rounding::integer_allocation;
use hetgrid_core::Arrangement;

/// How panel rows / columns are ordered within a panel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PanelOrdering {
    /// Grid row `i`'s panel rows are contiguous (as drawn in Figures 2
    /// and 4 for the rows).
    Contiguous,
    /// Panel rows/columns are dealt by the optimal 1D greedy order
    /// (Section 3.2.2's `ABAABA` for the columns) so every prefix and
    /// suffix stays balanced — what LU/QR needs.
    Interleaved,
    /// Rows contiguous, columns interleaved — exactly the layout drawn
    /// in Figure 4 of the paper.
    ColumnsInterleaved,
    /// Like [`PanelOrdering::Interleaved`] but with the dealing orders
    /// *reversed* so every suffix of a period is balanced — the correct
    /// variant for right-looking LU/QR, which consume rows and columns
    /// from the front and work on the trailing set. Coincides with
    /// `Interleaved` when the greedy pattern is a palindrome (as in the
    /// paper's `ABAABA` example).
    SuffixInterleaved,
}

/// The heterogeneous block-panel-cyclic distribution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanelDist {
    p: usize,
    q: usize,
    /// Owner grid row of each of the `B_p` panel rows.
    row_pattern: Vec<usize>,
    /// Owner grid column of each of the `B_q` panel columns.
    col_pattern: Vec<usize>,
}

impl PanelDist {
    /// Builds a panel distribution from per-row / per-column block counts
    /// and an ordering policy.
    ///
    /// `rows[i]` panel rows go to grid row `i` (so `B_p = sum rows`), and
    /// `cols[j]` panel columns go to grid column `j` (`B_q = sum cols`).
    /// With [`PanelOrdering::Interleaved`], the within-panel order is the
    /// 1D greedy dealing order for processors whose cycle-time is the
    /// *equivalent* aggregated time of each grid row (resp. column) —
    /// which requires the arrangement.
    ///
    /// # Panics
    /// Panics if counts are empty, contain zeros, or (for `Interleaved`)
    /// the arrangement shape disagrees with the counts.
    pub fn from_counts(
        arr: &Arrangement,
        rows: &[usize],
        cols: &[usize],
        ordering: PanelOrdering,
    ) -> Self {
        assert_eq!(rows.len(), arr.p(), "PanelDist: rows length mismatch");
        assert_eq!(cols.len(), arr.q(), "PanelDist: cols length mismatch");
        assert!(
            rows.iter().all(|&x| x > 0) && cols.iter().all(|&x| x > 0),
            "PanelDist: every grid row/column needs at least one panel row/column"
        );
        let contiguous = |counts: &[usize]| {
            let mut v = Vec::with_capacity(counts.iter().sum());
            for (i, &n) in counts.iter().enumerate() {
                v.extend(std::iter::repeat_n(i, n));
            }
            v
        };
        // Aggregate each grid row into an equivalent processor: within
        // one panel row, grid row i performs B_q blocks spread over its
        // q processors at their own speeds, so its equivalent time per
        // panel row is 1 / sum_j(cols_j / t_ij); symmetrically for the
        // grid columns (Section 3.2.2's aggregation).
        let row_equiv = |arr: &Arrangement| -> Vec<f64> {
            (0..arr.p())
                .map(|i| {
                    let rate: f64 = (0..arr.q()).map(|j| cols[j] as f64 / arr.time(i, j)).sum();
                    1.0 / rate
                })
                .collect()
        };
        let col_equiv = |arr: &Arrangement| -> Vec<f64> {
            (0..arr.q())
                .map(|j| {
                    let rate: f64 = (0..arr.p()).map(|i| rows[i] as f64 / arr.time(i, j)).sum();
                    1.0 / rate
                })
                .collect()
        };
        let (row_pattern, col_pattern) = match ordering {
            PanelOrdering::Contiguous => (contiguous(rows), contiguous(cols)),
            PanelOrdering::Interleaved => (
                dealt_pattern(&row_equiv(arr), rows),
                dealt_pattern(&col_equiv(arr), cols),
            ),
            PanelOrdering::ColumnsInterleaved => {
                (contiguous(rows), dealt_pattern(&col_equiv(arr), cols))
            }
            PanelOrdering::SuffixInterleaved => {
                let mut rp = dealt_pattern(&row_equiv(arr), rows);
                let mut cp = dealt_pattern(&col_equiv(arr), cols);
                rp.reverse();
                cp.reverse();
                (rp, cp)
            }
        };
        PanelDist {
            p: arr.p(),
            q: arr.q(),
            row_pattern,
            col_pattern,
        }
    }

    /// Builds the distribution straight from an arrangement and rational
    /// shares: rounds the shares to integer counts for a `bp x bq` panel
    /// (preserving the sums), then applies the ordering.
    pub fn from_allocation(
        arr: &Arrangement,
        alloc: &Allocation,
        bp: usize,
        bq: usize,
        ordering: PanelOrdering,
    ) -> Self {
        let (rows, cols) = integer_allocation(arr, alloc, bp, bq);
        Self::from_counts(arr, &rows, &cols, ordering)
    }

    /// Panel height `B_p` in blocks.
    pub fn bp(&self) -> usize {
        self.row_pattern.len()
    }

    /// Panel width `B_q` in blocks.
    pub fn bq(&self) -> usize {
        self.col_pattern.len()
    }

    /// The owner grid row of each panel row.
    pub fn row_pattern(&self) -> &[usize] {
        &self.row_pattern
    }

    /// The owner grid column of each panel column.
    pub fn col_pattern(&self) -> &[usize] {
        &self.col_pattern
    }

    /// Per-panel block counts `rows[i] * cols[j]` as a `p x q` table.
    pub fn per_panel_counts(&self) -> Vec<Vec<usize>> {
        let mut rows = vec![0usize; self.p];
        for &i in &self.row_pattern {
            rows[i] += 1;
        }
        let mut cols = vec![0usize; self.q];
        for &j in &self.col_pattern {
            cols[j] += 1;
        }
        rows.iter()
            .map(|&r| cols.iter().map(|&c| r * c).collect())
            .collect()
    }
}

/// Deals `counts[i]` slots to each owner `i`, in the optimal 1D greedy
/// order for the given equivalent cycle-times, preserving the exact
/// target counts (the greedy is capacity-constrained).
fn dealt_pattern(equiv_times: &[f64], counts: &[usize]) -> Vec<usize> {
    let total: usize = counts.iter().sum();
    let mut left = counts.to_vec();
    let mut done = vec![0usize; counts.len()];
    let mut pattern = Vec::with_capacity(total);
    for _ in 0..total {
        // Next slot goes to the owner (with remaining capacity) whose
        // completion time after taking it is smallest.
        let mut best = usize::MAX;
        let mut best_finish = f64::INFINITY;
        for i in 0..counts.len() {
            if left[i] == 0 {
                continue;
            }
            let finish = (done[i] + 1) as f64 * equiv_times[i];
            if finish < best_finish
                || (finish == best_finish
                    && best != usize::MAX
                    && equiv_times[i] < equiv_times[best])
            {
                best = i;
                best_finish = finish;
            }
        }
        debug_assert!(best != usize::MAX);
        left[best] -= 1;
        done[best] += 1;
        pattern.push(best);
    }
    pattern
}

impl BlockDist for PanelDist {
    fn grid(&self) -> (usize, usize) {
        (self.p, self.q)
    }

    fn owner(&self, bi: usize, bj: usize) -> (usize, usize) {
        (
            self.row_pattern[bi % self.row_pattern.len()],
            self.col_pattern[bj % self.col_pattern.len()],
        )
    }

    fn is_cartesian(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::balance_report;
    use hetgrid_core::exact;

    fn fig1_arr() -> Arrangement {
        Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]])
    }

    /// E1 — Figures 1 and 2: the 4x3 panel on the rank-1 grid.
    #[test]
    fn fig1_fig2_panel() {
        let arr = fig1_arr();
        let sol = exact::solve_arrangement(&arr);
        let d = PanelDist::from_allocation(&arr, &sol.alloc, 4, 3, PanelOrdering::Contiguous);
        assert_eq!(d.bp(), 4);
        assert_eq!(d.bq(), 3);
        // Rows: 3 panel rows to grid row 0, 1 to grid row 1.
        assert_eq!(d.row_pattern(), &[0, 0, 0, 1]);
        // Columns: 2 to grid column 0, 1 to grid column 1.
        assert_eq!(d.col_pattern(), &[0, 0, 1]);
        // Per-panel counts: P11 six, P12 three, P21 two, P22 one —
        // inversely proportional to cycle-times 1, 2, 3, 6.
        assert_eq!(d.per_panel_counts(), vec![vec![6, 3], vec![2, 1]]);
        // Perfect balance: everyone takes exactly 6 time units per panel.
        let report = balance_report(&d, &arr, 4, 3);
        for row in &report.times {
            for &t in row {
                assert!((t - 6.0).abs() < 1e-12);
            }
        }
        assert!((report.average_utilization - 1.0).abs() < 1e-12);
    }

    /// Figure 2's 10x10 block matrix: periodic tiling of the 4x3 panel.
    #[test]
    fn fig2_periodic_tiling() {
        let arr = fig1_arr();
        let sol = exact::solve_arrangement(&arr);
        let d = PanelDist::from_allocation(&arr, &sol.alloc, 4, 3, PanelOrdering::Contiguous);
        // Figure 2 shows rows 0-2 owned by grid row 0, row 3 by grid row
        // 1, repeating; columns 0-1 by grid col 0, column 2 by col 1.
        let expected_row = [0, 0, 0, 1, 0, 0, 0, 1, 0, 0];
        let expected_col = [0, 0, 1, 0, 0, 1, 0, 0, 1, 0];
        for bi in 0..10 {
            for bj in 0..10 {
                assert_eq!(
                    d.owner(bi, bj),
                    (expected_row[bi], expected_col[bj]),
                    "block ({}, {})",
                    bi,
                    bj
                );
            }
        }
    }

    /// E4 — Figure 4: LU panel, Bp = 8, Bq = 6, grid `[[1,2],[3,5]]`.
    #[test]
    fn fig4_lu_panel_with_interleaving() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let d =
            PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::ColumnsInterleaved);
        // Counts: rows (6, 2), columns (4, 2).
        assert_eq!(d.per_panel_counts(), vec![vec![24, 12], vec![8, 4]]);
        // Column pattern must be the ABAABA dealing of Section 3.2.2.
        assert_eq!(d.col_pattern(), &[0, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn contiguous_vs_interleaved_same_counts() {
        let arr = Arrangement::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        let sol = exact::solve_arrangement(&arr);
        let a = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Contiguous);
        let b = PanelDist::from_allocation(&arr, &sol.alloc, 8, 6, PanelOrdering::Interleaved);
        assert_eq!(a.per_panel_counts(), b.per_panel_counts());
        assert_eq!(a.owned_counts(24, 18), b.owned_counts(24, 18));
    }

    #[test]
    fn homogeneous_panel_reduces_to_cyclic() {
        // With equal speeds and B_p = p, B_q = q, the panel distribution
        // is exactly the uniform block-cyclic one.
        let arr = Arrangement::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let d = PanelDist::from_counts(&arr, &[1, 1], &[1, 1], PanelOrdering::Interleaved);
        let cyc = crate::cyclic::BlockCyclic::new(2, 2);
        for bi in 0..6 {
            for bj in 0..6 {
                assert_eq!(d.owner(bi, bj), cyc.owner(bi, bj));
            }
        }
    }

    #[test]
    fn cartesian_property_holds() {
        let arr = fig1_arr();
        let sol = exact::solve_arrangement(&arr);
        let d = PanelDist::from_allocation(&arr, &sol.alloc, 4, 3, PanelOrdering::Contiguous);
        assert!(d.is_cartesian());
        // Owner row must not depend on bj; owner col not on bi.
        for bi in 0..12 {
            let r = d.owner(bi, 0).0;
            for bj in 0..12 {
                assert_eq!(d.owner(bi, bj).0, r);
            }
        }
    }

    #[test]
    fn local_indices_are_dense() {
        let arr = fig1_arr();
        let sol = exact::solve_arrangement(&arr);
        let d = PanelDist::from_allocation(&arr, &sol.alloc, 4, 3, PanelOrdering::Contiguous);
        // Collect the local indices of every block owned by (0,0) within
        // an 8x6 block matrix; they must tile a dense rectangle.
        let mut seen = std::collections::HashSet::new();
        let mut max_li = 0;
        let mut max_lj = 0;
        for bi in 0..8 {
            for bj in 0..6 {
                if d.owner(bi, bj) == (0, 0) {
                    let (li, lj) = d.local_index(bi, bj);
                    assert!(seen.insert((li, lj)), "duplicate local index");
                    max_li = max_li.max(li);
                    max_lj = max_lj.max(lj);
                }
            }
        }
        assert_eq!(seen.len(), (max_li + 1) * (max_lj + 1));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_count_rejected() {
        let arr = fig1_arr();
        PanelDist::from_counts(&arr, &[4, 0], &[2, 1], PanelOrdering::Contiguous);
    }
}
