//! Property-based tests for the redistribution accounting: block-move
//! counts, moved fractions, and transfer plans over random pairs of
//! panel distributions on the same grid.

use hetgrid_core::sorted_row_major;
use hetgrid_dist::redistribution::{blocks_moved, moved_fraction, transfer_plan};
use hetgrid_dist::{BlockCyclic, BlockDist, PanelDist, PanelOrdering};
use proptest::prelude::*;

fn times_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05f64..1.0, n)
}

/// A random 2x3 panel distribution: per-row and per-column panel counts
/// drawn freely, with an arrangement derived from random cycle-times.
fn panel_strategy() -> impl Strategy<Value = PanelDist> {
    const ORDERINGS: [PanelOrdering; 3] = [
        PanelOrdering::Interleaved,
        PanelOrdering::Contiguous,
        PanelOrdering::ColumnsInterleaved,
    ];
    (
        times_strategy(6),
        prop::collection::vec(1usize..5, 2),
        prop::collection::vec(1usize..5, 3),
        0usize..3,
    )
        .prop_map(|(times, rows, cols, ord)| {
            let arr = sorted_row_major(&times, 2, 3);
            PanelDist::from_counts(&arr, &rows, &cols, ORDERINGS[ord])
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn moved_fraction_is_a_fraction(
        a in panel_strategy(),
        b in panel_strategy(),
        nb in 1usize..40,
    ) {
        let f = moved_fraction(&a, &b, nb);
        prop_assert!((0.0..=1.0).contains(&f), "fraction {} out of range", f);
        // The fraction is exactly the move count over the block count.
        let expected = blocks_moved(&a, &b, nb) as f64 / (nb * nb) as f64;
        prop_assert!((f - expected).abs() < 1e-12);
    }

    #[test]
    fn blocks_moved_is_symmetric(
        a in panel_strategy(),
        b in panel_strategy(),
        nb in 1usize..40,
    ) {
        // Moving data from a to b relocates exactly the blocks whose
        // owner differs — the same set in either direction.
        prop_assert_eq!(blocks_moved(&a, &b, nb), blocks_moved(&b, &a, nb));
    }

    #[test]
    fn self_redistribution_is_free(a in panel_strategy(), nb in 1usize..40) {
        prop_assert_eq!(blocks_moved(&a, &a, nb), 0);
        prop_assert_eq!(moved_fraction(&a, &a, nb), 0.0);
        prop_assert!(transfer_plan(&a, &a, nb).is_empty());
    }

    #[test]
    fn transfer_plan_accounts_for_every_moved_block(
        a in panel_strategy(),
        b in panel_strategy(),
        nb in 1usize..40,
    ) {
        let plan = transfer_plan(&a, &b, nb);
        // The plan's per-edge counts sum to exactly the moved blocks.
        let total: usize = plan.values().sum();
        prop_assert_eq!(total, blocks_moved(&a, &b, nb));
        // No self-edges, no empty entries, and every edge matches an
        // actual ownership change of some block.
        for (&(src, dst), &count) in &plan {
            prop_assert!(src != dst, "self-edge {:?}", src);
            prop_assert!(count > 0, "empty edge {:?} -> {:?}", src, dst);
        }
        // Reconstruct the plan block by block and compare.
        let mut rebuilt = std::collections::BTreeMap::new();
        for bi in 0..nb {
            for bj in 0..nb {
                let src = a.owner(bi, bj);
                let dst = b.owner(bi, bj);
                if src != dst {
                    *rebuilt.entry((src, dst)).or_insert(0usize) += 1;
                }
            }
        }
        prop_assert_eq!(plan, rebuilt);
    }

    #[test]
    fn panel_vs_cyclic_moves_are_consistent(
        a in panel_strategy(),
        nb in 1usize..40,
    ) {
        // Mixed descriptor types share the accounting: a panel dist vs
        // the uniform block-cyclic baseline on the same 2x3 grid.
        let cyclic = BlockCyclic::new(2, 3);
        let moved = blocks_moved(&a, &cyclic, nb);
        prop_assert_eq!(moved, blocks_moved(&cyclic, &a, nb));
        let total: usize = transfer_plan(&a, &cyclic, nb).values().sum();
        prop_assert_eq!(total, moved);
        prop_assert!(moved <= nb * nb);
    }
}
