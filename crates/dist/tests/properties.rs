//! Property-based tests for the distribution descriptors.

use hetgrid_core::{alternating, sorted_row_major};
use hetgrid_dist::{balance_report, BlockCyclic, BlockDist, KlDist, PanelDist, PanelOrdering};
use proptest::prelude::*;

fn times_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05f64..1.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn panel_is_periodic(times in times_strategy(6), bp in 2usize..10, bq in 3usize..10) {
        let arr = sorted_row_major(&times, 2, 3);
        let alt = alternating::optimize(&arr, 10_000);
        let d = PanelDist::from_allocation(&arr, &alt.alloc, bp, bq, PanelOrdering::Interleaved);
        for bi in 0..d.bp() * 2 {
            for bj in 0..d.bq() * 2 {
                prop_assert_eq!(d.owner(bi, bj), d.owner(bi + d.bp(), bj));
                prop_assert_eq!(d.owner(bi, bj), d.owner(bi, bj + d.bq()));
            }
        }
    }

    #[test]
    fn panel_counts_match_patterns(times in times_strategy(6), bp in 2usize..10, bq in 3usize..10) {
        let arr = sorted_row_major(&times, 2, 3);
        let alt = alternating::optimize(&arr, 10_000);
        let d = PanelDist::from_allocation(&arr, &alt.alloc, bp, bq, PanelOrdering::Contiguous);
        // per_panel_counts equals owned_counts over exactly one panel.
        prop_assert_eq!(d.per_panel_counts(), d.owned_counts(d.bp(), d.bq()));
        // Every processor owns at least one block per panel.
        prop_assert!(d.per_panel_counts().iter().flatten().all(|&c| c > 0));
    }

    #[test]
    fn panel_orderings_agree_on_counts(times in times_strategy(4), bp in 2usize..8, bq in 2usize..8) {
        let arr = sorted_row_major(&times, 2, 2);
        let alt = alternating::optimize(&arr, 10_000);
        let a = PanelDist::from_allocation(&arr, &alt.alloc, bp, bq, PanelOrdering::Contiguous);
        let b = PanelDist::from_allocation(&arr, &alt.alloc, bp, bq, PanelOrdering::Interleaved);
        let c = PanelDist::from_allocation(&arr, &alt.alloc, bp, bq, PanelOrdering::ColumnsInterleaved);
        prop_assert_eq!(a.per_panel_counts(), b.per_panel_counts());
        prop_assert_eq!(a.per_panel_counts(), c.per_panel_counts());
    }

    #[test]
    fn kl_column_structure(times in times_strategy(6), bp in 2usize..12, bq in 3usize..12) {
        let arr = sorted_row_major(&times, 2, 3);
        let d = KlDist::new(&arr, bp.max(2), bq.max(3));
        // The owner's grid column is fully determined by bj.
        for bj in 0..d.bq() * 2 {
            let col = d.owner(0, bj).1;
            for bi in 0..d.bp() * 2 {
                prop_assert_eq!(d.owner(bi, bj).1, col);
            }
        }
        // Every processor owns something in a full period.
        let counts = d.owned_counts(d.bp(), d.bq() * 3);
        prop_assert!(counts.iter().flatten().all(|&c| c > 0));
    }

    #[test]
    fn kl_balances_at_least_as_well_as_cyclic(times in times_strategy(4)) {
        let arr = sorted_row_major(&times, 2, 2);
        let d = KlDist::new(&arr, 16, 16);
        let cyc = BlockCyclic::new(2, 2);
        let nb = 32;
        let kl_rep = balance_report(&d, &arr, nb, nb);
        let cyc_rep = balance_report(&cyc, &arr, nb, nb);
        prop_assert!(kl_rep.makespan <= cyc_rep.makespan * 1.05,
            "KL {} worse than cyclic {}", kl_rep.makespan, cyc_rep.makespan);
    }

    #[test]
    fn balance_report_utilization_in_unit_interval(times in times_strategy(4), nb in 4usize..40) {
        let arr = sorted_row_major(&times, 2, 2);
        let cyc = BlockCyclic::new(2, 2);
        let rep = balance_report(&cyc, &arr, nb, nb);
        prop_assert!(rep.average_utilization > 0.0);
        prop_assert!(rep.average_utilization <= 1.0 + 1e-12);
        // Makespan is the max of the per-processor times.
        let max = rep.times.iter().flatten().cloned().fold(0.0f64, f64::max);
        prop_assert!((rep.makespan - max).abs() < 1e-12);
    }

    #[test]
    fn owned_counts_partition_the_matrix(times in times_strategy(6), nb in 2usize..30) {
        let arr = sorted_row_major(&times, 2, 3);
        let alt = alternating::optimize(&arr, 10_000);
        let dists: Vec<Box<dyn BlockDist>> = vec![
            Box::new(BlockCyclic::new(2, 3)),
            Box::new(PanelDist::from_allocation(&arr, &alt.alloc, 4, 6, PanelOrdering::Interleaved)),
            Box::new(KlDist::new(&arr, 4, 6)),
        ];
        for d in &dists {
            let total: usize = d.owned_counts(nb, nb).iter().flatten().sum();
            prop_assert_eq!(total, nb * nb);
        }
    }

    #[test]
    fn local_index_is_injective_per_owner(times in times_strategy(4), bp in 2usize..6, bq in 2usize..6) {
        let arr = sorted_row_major(&times, 2, 2);
        let alt = alternating::optimize(&arr, 10_000);
        let d = PanelDist::from_allocation(&arr, &alt.alloc, bp, bq, PanelOrdering::Interleaved);
        let nb = d.bp().max(d.bq()) * 2;
        let mut seen = std::collections::HashSet::new();
        for bi in 0..nb {
            for bj in 0..nb {
                let owner = d.owner(bi, bj);
                let local = d.local_index(bi, bj);
                prop_assert!(seen.insert((owner, local)), "duplicate local index");
            }
        }
    }

    #[test]
    fn trailing_counts_monotone(times in times_strategy(4), nb in 3usize..20) {
        let arr = sorted_row_major(&times, 2, 2);
        let alt = alternating::optimize(&arr, 10_000);
        let d = PanelDist::from_allocation(&arr, &alt.alloc, 4, 4, PanelOrdering::Interleaved);
        let mut prev_total = usize::MAX;
        for k in 0..nb {
            let total: usize = d.trailing_counts(nb, k).iter().flatten().sum();
            prop_assert_eq!(total, (nb - k) * (nb - k));
            prop_assert!(total <= prev_total);
            prev_total = total;
        }
    }
}
