//! # hetgrid-par
//!
//! A small work-stealing thread pool for the workspace's CPU hot paths
//! (exact-solver arrangement fan-out, metaheuristic restarts, GEMM row
//! panels). The build environment is offline, so — like `shims/rand` and
//! `exec::channel` — this is a self-contained `std`-only implementation
//! of the subset of `rayon`'s surface hetgrid actually needs:
//!
//! * [`ThreadPool::scope`] — spawn borrowing closures and wait for all
//!   of them before returning (panics are propagated);
//! * [`ThreadPool::parallel_map`] — map a `Vec` through a `Sync` closure
//!   with one task per item, preserving order;
//! * [`global`] — a lazily-created process-wide pool sized from
//!   `HETGRID_THREADS` or `std::thread::available_parallelism`.
//!
//! Scheduling: each worker owns a deque; it pops its own work LIFO (hot
//! caches) and steals FIFO from the other workers when empty. Threads
//! that *wait* on a scope also steal and run queued tasks instead of
//! blocking, so nested scopes (a task that itself opens a scope) cannot
//! deadlock even on a single-worker pool.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// One deque per worker; submissions round-robin across them.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Generation counter + shutdown flag guarded by one mutex so
    /// sleeping workers never miss a submission.
    gen: Mutex<(u64, bool)>,
    cv: Condvar,
    next: AtomicUsize,
    shutdown: AtomicBool,
    /// Cross-queue steals (obs `par.steals`). Handle resolved once at
    /// pool construction; each steal is one relaxed atomic increment.
    steals: hetgrid_obs::Counter,
    /// High-water queue depth (obs `par.queue.depth`).
    depth: hetgrid_obs::Gauge,
}

impl Shared {
    /// Pops from the worker's own queue (LIFO) or steals from another
    /// queue (FIFO). `home` is `usize::MAX` for non-worker threads.
    fn grab(&self, home: usize) -> Option<Job> {
        if home < self.queues.len() {
            if let Some(job) = self.queues[home].lock().expect("pool poisoned").pop_back() {
                return Some(job);
            }
        }
        let n = self.queues.len();
        let start = if home < n { home + 1 } else { 0 };
        for off in 0..n {
            let q = (start + off) % n;
            if q == home {
                continue;
            }
            if let Some(job) = self.queues[q].lock().expect("pool poisoned").pop_front() {
                self.steals.inc();
                return Some(job);
            }
        }
        None
    }

    fn push(&self, job: Job) {
        let q = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        let len = {
            let mut queue = self.queues[q].lock().expect("pool poisoned");
            queue.push_back(job);
            queue.len()
        };
        self.depth.record_max(len as f64);
        let mut g = self.gen.lock().expect("pool poisoned");
        g.0 = g.0.wrapping_add(1);
        drop(g);
        self.cv.notify_all();
    }
}

/// A fixed-size work-stealing thread pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            gen: Mutex::new((0, false)),
            cv: Condvar::new(),
            next: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            steals: hetgrid_obs::metrics().counter("par.steals"),
            depth: hetgrid_obs::metrics().gauge("par.queue.depth"),
        });
        let handles = (0..threads)
            .map(|idx| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("hetgrid-par-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.queues.len()
    }

    /// Runs `f` with a [`Scope`] that can spawn borrowing tasks; returns
    /// once every spawned task has finished. If any task panicked, the
    /// first panic is re-raised here (after all tasks completed, so no
    /// borrow outlives its data).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env, '_>) -> R,
    {
        let state = Arc::new(ScopeState {
            sync: Mutex::new(ScopeSync {
                pending: 0,
                panic: None,
            }),
            cv: Condvar::new(),
        });
        let scope = Scope {
            pool: self,
            state: state.clone(),
            _env: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));

        // Wait for all spawned tasks, stealing pool work while we wait so
        // nested scopes make progress even on a one-worker pool.
        loop {
            while let Some(job) = self.shared.grab(usize::MAX) {
                job();
            }
            let guard = state.sync.lock().expect("scope poisoned");
            if guard.pending == 0 {
                break;
            }
            // Timeout so a task enqueued after `grab` failed is re-stolen.
            let _ = state
                .cv
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("scope poisoned");
        }
        let panic = state.sync.lock().expect("scope poisoned").panic.take();
        match (result, panic) {
            (Ok(r), None) => r,
            (Err(p), _) | (_, Some(p)) => resume_unwind(p),
        }
    }

    /// Maps every item of `items` through `f` on the pool, preserving
    /// order. Panics in `f` are propagated.
    pub fn parallel_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        {
            let f = &f;
            let slot_ptr = SendPtr(slots.as_mut_ptr());
            self.scope(|s| {
                for (i, item) in items.into_iter().enumerate() {
                    s.spawn(move || {
                        // Capture the whole wrapper, not its raw field
                        // (edition-2021 closures capture fields disjointly).
                        let slot_ptr = slot_ptr;
                        let value = f(item);
                        // SAFETY: each task writes exactly one distinct slot,
                        // and the scope guarantees completion before `slots`
                        // is read or dropped.
                        unsafe { *slot_ptr.0.add(i) = Some(value) };
                    });
                }
            });
        }
        slots
            .into_iter()
            .map(|r| r.expect("parallel_map: task did not run"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let mut g = self.shared.gen.lock().expect("pool poisoned");
            g.1 = true;
        }
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, idx: usize) {
    loop {
        // Read the generation *before* scanning so a submission racing
        // with a failed scan is observed as a changed generation.
        let seen = shared.gen.lock().expect("pool poisoned").0;
        while let Some(job) = shared.grab(idx) {
            job();
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let mut g = shared.gen.lock().expect("pool poisoned");
        while g.0 == seen && !g.1 {
            g = shared.cv.wait(g).expect("pool poisoned");
        }
        if g.1 {
            return;
        }
    }
}

struct ScopeSync {
    pending: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct ScopeState {
    sync: Mutex<ScopeSync>,
    cv: Condvar,
}

/// Spawning handle passed to the closure of [`ThreadPool::scope`].
pub struct Scope<'env, 'pool> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`: tasks may borrow data living at least as
    /// long as the scope call.
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env, '_> {
    /// Spawns `task` on the pool. The task may borrow from `'env`; the
    /// scope waits for it before returning.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.sync.lock().expect("scope poisoned").pending += 1;
        let state = self.state.clone();
        let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(task));
            let mut guard = state.sync.lock().expect("scope poisoned");
            if let Err(p) = result {
                guard.panic.get_or_insert(p);
            }
            guard.pending -= 1;
            drop(guard);
            state.cv.notify_all();
        });
        // SAFETY: `scope` does not return before `pending` drops to zero,
        // so the boxed closure (and everything it borrows from `'env`)
        // outlives its execution; extending the lifetime to 'static for
        // storage in the queue is therefore sound. This is the same
        // contract crossbeam/rayon scopes rely on.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(
                wrapped,
            )
        };
        self.pool.shared.push(job);
    }
}

/// Raw-pointer wrapper that asserts cross-thread transferability for
/// writes to disjoint slots.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

/// The process-wide pool. Sized from `HETGRID_THREADS` when set (and
/// >= 1), otherwise from [`std::thread::available_parallelism`].
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = std::env::var("HETGRID_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        ThreadPool::new(threads)
    })
}

/// [`ThreadPool::parallel_map`] on the [`global`] pool.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    global().parallel_map(items, f)
}

/// [`ThreadPool::scope`] on the [`global`] pool.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env, '_>) -> R,
{
    global().scope(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_map_preserves_order() {
        let pool = ThreadPool::new(4);
        let out = pool.parallel_map((0..100).collect(), |x: u64| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn scope_spawn_borrows_locals() {
        let pool = ThreadPool::new(3);
        let data: Vec<u64> = (0..64).collect();
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(7) {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 64 * 63 / 2);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // One worker: the inner scope's task can only run because the
        // outer task (occupying the worker) steals while waiting.
        let pool = ThreadPool::new(1);
        let out = pool.parallel_map(vec![1u64, 2, 3], |x| {
            let inner = global().parallel_map(vec![x, x + 10], |y| y * 2);
            inner.iter().sum::<u64>()
        });
        assert_eq!(out, vec![2 + 22, 4 + 24, 6 + 26]);
    }

    #[test]
    fn panic_propagates_after_all_tasks_finish() {
        let pool = ThreadPool::new(2);
        let ran = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..8 {
                    let ran = &ran;
                    s.spawn(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate");
        assert_eq!(ran.load(Ordering::Relaxed), 7, "other tasks still ran");
    }

    #[test]
    fn global_pool_is_usable() {
        assert!(global().threads() >= 1);
        let out = parallel_map(vec![1, 2, 3], |x: u32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn pool_publishes_scheduler_metrics() {
        let pool = ThreadPool::new(2);
        let out = pool.parallel_map((0..64).collect(), |x: u64| x + 1);
        assert_eq!(out.len(), 64);
        let snap = hetgrid_obs::metrics().snapshot();
        // 64 pushes round-robined over 2 queues: some queue reached
        // depth >= 1, and the series exist from pool construction on.
        assert!(snap.gauge("par.queue.depth") >= 1.0);
        assert!(snap.counters.contains_key("par.steals"));
    }

    #[test]
    fn empty_map_is_fine() {
        let pool = ThreadPool::new(2);
        let out: Vec<u32> = pool.parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }
}
